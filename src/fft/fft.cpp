#include "fft/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/parallel.hpp"

namespace tac::fft {
namespace {

/// Bit-reversal permutation for an array of length n = 2^k.
void bit_reverse(std::span<Complex> a) {
  const std::size_t n = a.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
}

}  // namespace

void fft_1d(std::span<Complex> a, bool inverse) {
  const std::size_t n = a.size();
  if (n == 0) return;
  if (!is_pow2(n))
    throw std::invalid_argument("fft_1d: length must be a power of two");
  bit_reverse(a);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? 2.0 : -2.0) * std::numbers::pi /
                       static_cast<double>(len);
    const Complex wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = a[i + k];
        const Complex v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& x : a) x *= inv_n;
  }
}

void fft_3d(Array3D<Complex>& data, bool inverse) {
  const Dims3 d = data.dims();
  if (!is_pow2(d.nx) || !is_pow2(d.ny) || !is_pow2(d.nz))
    throw std::invalid_argument("fft_3d: extents must be powers of two");

  // Along x: contiguous rows.
  parallel_for(0, d.ny * d.nz, [&](std::size_t row) {
    const std::size_t y = row % d.ny;
    const std::size_t z = row / d.ny;
    fft_1d(std::span<Complex>(&data(0, y, z), d.nx), inverse);
  });

  // Along y and z: gather strided lines into a scratch buffer.
  parallel_for(0, d.nx * d.nz, [&](std::size_t line) {
    const std::size_t x = line % d.nx;
    const std::size_t z = line / d.nx;
    std::vector<Complex> buf(d.ny);
    for (std::size_t y = 0; y < d.ny; ++y) buf[y] = data(x, y, z);
    fft_1d(buf, inverse);
    for (std::size_t y = 0; y < d.ny; ++y) data(x, y, z) = buf[y];
  });

  parallel_for(0, d.nx * d.ny, [&](std::size_t line) {
    const std::size_t x = line % d.nx;
    const std::size_t y = line / d.nx;
    std::vector<Complex> buf(d.nz);
    for (std::size_t z = 0; z < d.nz; ++z) buf[z] = data(x, y, z);
    fft_1d(buf, inverse);
    for (std::size_t z = 0; z < d.nz; ++z) data(x, y, z) = buf[z];
  });
}

Array3D<Complex> fft_3d_real(const Array3D<double>& field) {
  Array3D<Complex> out(field.dims());
  for (std::size_t i = 0; i < field.size(); ++i)
    out[i] = Complex(field[i], 0.0);
  fft_3d(out, /*inverse=*/false);
  return out;
}

}  // namespace tac::fft
