#ifndef TAC_FFT_FFT_HPP
#define TAC_FFT_FFT_HPP

/// \file fft.hpp
/// \brief Iterative radix-2 FFT with 3D transforms.
///
/// Substrate for two consumers: the Gaussian-random-field generator in
/// simnyx (inverse transform of spectrally-shaped noise) and the matter
/// power spectrum analysis (forward transform of the density contrast).
/// Grid extents must be powers of two — every grid in this reproduction is.

#include <complex>
#include <span>
#include <vector>

#include "common/array3d.hpp"
#include "common/dims.hpp"

namespace tac::fft {

using Complex = std::complex<double>;

/// True if n is a power of two (and nonzero).
[[nodiscard]] constexpr bool is_pow2(std::size_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

/// In-place forward (`inverse = false`) or inverse (`inverse = true`)
/// transform. The inverse includes the 1/n normalization, so
/// ifft(fft(x)) == x. Length must be a power of two.
void fft_1d(std::span<Complex> data, bool inverse);

/// 3D transform applied axis by axis. All extents must be powers of two.
void fft_3d(Array3D<Complex>& data, bool inverse);

/// Convenience: forward transform of a real field.
[[nodiscard]] Array3D<Complex> fft_3d_real(const Array3D<double>& field);

}  // namespace tac::fft

#endif  // TAC_FFT_FFT_HPP
