#include "core/container.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

#include "amr/amr_io.hpp"
#include "common/crc32.hpp"
#include "common/telemetry.hpp"
#include "core/backend.hpp"
#include "lossless/codec.hpp"

namespace tac::core {
namespace {
constexpr std::uint32_t kMagic = 0x43434154;  // "TACC"

// magic + version + method — the fixed prefix every container starts with.
constexpr std::size_t kHeaderPrefixBytes =
    sizeof(std::uint32_t) + 2 * sizeof(std::uint8_t);

std::string hex32(std::uint32_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s = "0x";
  for (int shift = 28; shift >= 0; shift -= 4)
    s.push_back(digits[(v >> shift) & 0xFu]);
  return s;
}

struct HeaderPrefix {
  Method method;
  std::uint8_t version;
};

/// Decodes the fixed header prefix with descriptive errors: wrong magic,
/// unsupported version and unregistered method tags each say what was
/// found, and short buffers never read past the span.
HeaderPrefix read_header_prefix(ByteReader& r) {
  if (r.remaining() < kHeaderPrefixBytes)
    throw std::runtime_error(
        "container: truncated header (" + std::to_string(r.remaining()) +
        " bytes, need at least " + std::to_string(kHeaderPrefixBytes) + ")");
  if (r.get<std::uint32_t>() != kMagic)
    throw std::runtime_error("container: bad magic (not a TAC container)");
  const auto version = r.get<std::uint8_t>();
  if (version < kMinFormatVersion || version > kFormatVersion)
    throw std::runtime_error(
        "container: unsupported format version " + std::to_string(version) +
        " (this build reads versions " + std::to_string(kMinFormatVersion) +
        ".." + std::to_string(kFormatVersion) + ")");
  const auto tag = r.get<std::uint8_t>();
  if (find_backend(static_cast<Method>(tag)) == nullptr)
    throw std::runtime_error(
        "container: unknown method tag " + std::to_string(tag) +
        " (no registered compressor backend)");
  return {static_cast<Method>(tag), version};
}

}  // namespace

const char* to_string(Method m) {
  switch (m) {
    case Method::kTac: return "TAC";
    case Method::kOneD: return "1D";
    case Method::kZMesh: return "zMesh";
    case Method::kUpsample3D: return "3D";
    case Method::kAuto: return "auto";
  }
  return "?";
}

const char* to_string(Strategy s) {
  switch (s) {
    case Strategy::kNaST: return "NaST";
    case Strategy::kOpST: return "OpST";
    case Strategy::kAKDTree: return "AKDTree";
    case Strategy::kGSP: return "GSP";
    case Strategy::kZF: return "ZF";
  }
  return "?";
}

void PayloadIndexBuilder::begin_payload() {
  if (w_ == nullptr)
    throw std::logic_error("PayloadIndexBuilder: not attached to a writer");
  if (open_begin_ != kNone)
    throw std::logic_error(
        "PayloadIndexBuilder: begin_payload with a payload still open");
  if (sealed_ >= count_)
    throw std::logic_error(
        "PayloadIndexBuilder: more payloads than the " +
        std::to_string(count_) + " reserved index entries");
  open_begin_ = w_->size();
}

void PayloadIndexBuilder::end_payload() { end_payload(method_); }

void PayloadIndexBuilder::end_payload(Method chosen) {
  if (open_begin_ == kNone)
    throw std::logic_error(
        "PayloadIndexBuilder: end_payload without begin_payload");
  const std::size_t end = w_->size();
  const std::span<const std::uint8_t> written(w_->buffer());
  PayloadEntry e;
  e.offset = open_begin_;
  e.length = end - open_begin_;
  e.crc32 = crc32(written.subspan(open_begin_, end - open_begin_));
  e.profile = static_cast<std::uint8_t>(profile_);
  e.selector = static_cast<std::uint8_t>(chosen);
  patch_payload_entry_v4(*w_, entries_pos_ + sealed_ * kPayloadEntryV4Bytes,
                         e);
  ++sealed_;
  TAC_COUNTER_ADD("container.payloads_written", 1);
  TAC_COUNTER_ADD("container.payload_bytes_written", e.length);
  open_begin_ = kNone;
}

void PayloadIndexBuilder::finish() const {
  if (open_begin_ != kNone)
    throw std::logic_error("PayloadIndexBuilder: unsealed payload at finish");
  if (sealed_ != count_)
    throw std::logic_error(
        "PayloadIndexBuilder: sealed " + std::to_string(sealed_) + " of " +
        std::to_string(count_) + " reserved payloads");
}

PayloadIndexBuilder write_common_header(ByteWriter& w, Method method,
                                        const amr::AmrDataset& ds,
                                        std::size_t n_payloads,
                                        lossless::CodecProfile profile) {
  TAC_SPAN("container.header_write");
  w.put<std::uint32_t>(kMagic);
  w.put<std::uint8_t>(kFormatVersion);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(method));
  w.put_string(ds.field_name());
  w.put_varint(static_cast<std::uint64_t>(ds.refinement_ratio()));
  w.put_varint(ds.num_levels());
  for (std::size_t l = 0; l < ds.num_levels(); ++l) {
    const auto& lv = ds.level(l);
    w.put_varint(lv.dims().nx);
    w.put_varint(lv.dims().ny);
    w.put_varint(lv.dims().nz);
    const auto packed = amr::pack_mask(lv.mask.span());
    w.put_blob(lossless::compress(packed, profile));
  }
  w.put_varint(n_payloads);
  const std::size_t entries_pos =
      w.reserve(n_payloads * kPayloadEntryV4Bytes);
  return PayloadIndexBuilder(w, entries_pos, n_payloads, profile, method);
}

CommonHeader read_common_header(ByteReader& r) {
  TAC_SPAN("container.header_read");
  CommonHeader h;
  const HeaderPrefix prefix = read_header_prefix(r);
  h.method = prefix.method;
  h.version = prefix.version;
  const std::string field = r.get_string();
  const int ratio = static_cast<int>(r.get_varint());
  const std::size_t nlevels = static_cast<std::size_t>(r.get_varint());
  std::vector<amr::AmrLevel> levels;
  levels.reserve(nlevels);
  for (std::size_t l = 0; l < nlevels; ++l) {
    Dims3 d;
    d.nx = static_cast<std::size_t>(r.get_varint());
    d.ny = static_cast<std::size_t>(r.get_varint());
    d.nz = static_cast<std::size_t>(r.get_varint());
    amr::AmrLevel lv(d);
    const auto packed = lossless::decompress(r.get_blob());
    const auto mask = amr::unpack_mask(packed, d.volume());
    std::copy(mask.begin(), mask.end(), lv.mask.data());
    levels.push_back(std::move(lv));
  }
  h.skeleton = amr::AmrDataset(field, std::move(levels), ratio);
  h.index_offset = r.position();
  if (h.version >= 2) {
    const std::size_t entry_bytes = h.version >= 4   ? kPayloadEntryV4Bytes
                                    : h.version >= 3 ? kPayloadEntryV3Bytes
                                                     : kPayloadEntryBytes;
    const std::size_t n = static_cast<std::size_t>(r.get_varint());
    if (n > r.remaining() / entry_bytes)
      throw std::runtime_error(
          "container: payload index claims " + std::to_string(n) +
          " entries but only " + std::to_string(r.remaining()) +
          " bytes remain");
    h.index.entries.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const PayloadEntry e = h.version >= 4   ? read_payload_entry_v4(r)
                             : h.version >= 3 ? read_payload_entry_v3(r)
                                              : read_payload_entry(r);
      if (h.version >= 3 &&
          e.profile > static_cast<std::uint8_t>(lossless::CodecProfile::kFast))
        throw lossless::ProfileError(
            "container: payload " + std::to_string(i) +
            " declares unknown codec profile byte " +
            std::to_string(e.profile));
      if (h.version >= 4 && e.selector != kSelectorFixed &&
          find_backend(static_cast<Method>(e.selector)) == nullptr)
        throw SelectorError(
            "container: payload " + std::to_string(i) +
            " declares unknown selector byte " + std::to_string(e.selector) +
            " (no registered compressor backend)");
      h.index.entries.push_back(e);
    }
  }
  h.payload_offset = r.position();
  return h;
}

std::optional<lossless::CodecProfile> payload_profile(
    const CommonHeader& header, std::size_t i) {
  if (header.version < 3 || i >= header.index.entries.size())
    return std::nullopt;
  return static_cast<lossless::CodecProfile>(header.index.entries[i].profile);
}

std::optional<Method> payload_method(const CommonHeader& header,
                                     std::size_t i) {
  if (header.version < 4 || i >= header.index.entries.size())
    return std::nullopt;
  const std::uint8_t selector = header.index.entries[i].selector;
  if (selector == kSelectorFixed) return std::nullopt;
  return static_cast<Method>(selector);
}

Method peek_method(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  return read_header_prefix(r).method;
}

bool is_container(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < sizeof(std::uint32_t)) return false;
  std::uint32_t magic;
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  return magic == kMagic;
}

void verify_payload(std::span<const std::uint8_t> container,
                    const PayloadIndex& index, std::size_t i) {
  const PayloadEntry& e = index.entries.at(i);
  if (e.offset > container.size() ||
      e.length > container.size() - e.offset)
    throw std::runtime_error(
        "container: payload " + std::to_string(i) +
        " index entry [offset " + std::to_string(e.offset) + ", length " +
        std::to_string(e.length) + "] exceeds the " +
        std::to_string(container.size()) + "-byte container");
  TAC_SPAN_BYTES("container.crc_verify", e.length);
  TAC_COUNTER_ADD("container.crc_bytes_verified", e.length);
  const std::uint32_t actual = crc32(container.subspan(
      static_cast<std::size_t>(e.offset), static_cast<std::size_t>(e.length)));
  if (actual != e.crc32) {
    TAC_COUNTER_ADD("container.checksum_failures", 1);
    throw ChecksumError("container: payload " + std::to_string(i) +
                        " checksum mismatch (stored " + hex32(e.crc32) +
                        ", computed " + hex32(actual) + ")");
  }
}

void verify_payloads(std::span<const std::uint8_t> container,
                     const PayloadIndex& index) {
  for (std::size_t i = 0; i < index.entries.size(); ++i)
    verify_payload(container, index, i);
}

std::optional<ByteReader> indexed_level_reader(
    std::span<const std::uint8_t> container, const CommonHeader& header,
    std::size_t level) {
  if (header.index.entries.size() != header.skeleton.num_levels())
    return std::nullopt;
  if (level >= header.skeleton.num_levels())
    throw std::out_of_range(
        "decompress_level: level " + std::to_string(level) +
        " out of range (container has " +
        std::to_string(header.skeleton.num_levels()) + " levels)");
  verify_payload(container, header.index, level);
  const PayloadEntry& e = header.index.entries[level];
  return ByteReader(container.subspan(static_cast<std::size_t>(e.offset),
                                      static_cast<std::size_t>(e.length)));
}

}  // namespace tac::core
