#include "core/container.hpp"

#include <stdexcept>
#include <string>

#include "amr/amr_io.hpp"
#include "core/backend.hpp"
#include "lossless/codec.hpp"

namespace tac::core {
namespace {
constexpr std::uint32_t kMagic = 0x43434154;  // "TACC"

// magic + version + method — the fixed prefix every container starts with.
constexpr std::size_t kHeaderPrefixBytes =
    sizeof(std::uint32_t) + 2 * sizeof(std::uint8_t);

/// Decodes the fixed header prefix with descriptive errors: wrong magic,
/// unsupported version and unregistered method tags each say what was
/// found, and short buffers never read past the span.
Method read_header_prefix(ByteReader& r) {
  if (r.remaining() < kHeaderPrefixBytes)
    throw std::runtime_error(
        "container: truncated header (" + std::to_string(r.remaining()) +
        " bytes, need at least " + std::to_string(kHeaderPrefixBytes) + ")");
  if (r.get<std::uint32_t>() != kMagic)
    throw std::runtime_error("container: bad magic (not a TAC container)");
  const auto version = r.get<std::uint8_t>();
  if (version != kFormatVersion)
    throw std::runtime_error(
        "container: unsupported format version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kFormatVersion) + ")");
  const auto tag = r.get<std::uint8_t>();
  if (find_backend(static_cast<Method>(tag)) == nullptr)
    throw std::runtime_error(
        "container: unknown method tag " + std::to_string(tag) +
        " (no registered compressor backend)");
  return static_cast<Method>(tag);
}

}  // namespace

const char* to_string(Method m) {
  switch (m) {
    case Method::kTac: return "TAC";
    case Method::kOneD: return "1D";
    case Method::kZMesh: return "zMesh";
    case Method::kUpsample3D: return "3D";
  }
  return "?";
}

const char* to_string(Strategy s) {
  switch (s) {
    case Strategy::kNaST: return "NaST";
    case Strategy::kOpST: return "OpST";
    case Strategy::kAKDTree: return "AKDTree";
    case Strategy::kGSP: return "GSP";
    case Strategy::kZF: return "ZF";
  }
  return "?";
}

void write_common_header(ByteWriter& w, Method method,
                         const amr::AmrDataset& ds) {
  w.put<std::uint32_t>(kMagic);
  w.put<std::uint8_t>(kFormatVersion);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(method));
  w.put_string(ds.field_name());
  w.put_varint(static_cast<std::uint64_t>(ds.refinement_ratio()));
  w.put_varint(ds.num_levels());
  for (std::size_t l = 0; l < ds.num_levels(); ++l) {
    const auto& lv = ds.level(l);
    w.put_varint(lv.dims().nx);
    w.put_varint(lv.dims().ny);
    w.put_varint(lv.dims().nz);
    const auto packed = amr::pack_mask(lv.mask.span());
    w.put_blob(lossless::compress(packed));
  }
}

CommonHeader read_common_header(ByteReader& r) {
  CommonHeader h;
  h.method = read_header_prefix(r);
  const std::string field = r.get_string();
  const int ratio = static_cast<int>(r.get_varint());
  const std::size_t nlevels = static_cast<std::size_t>(r.get_varint());
  std::vector<amr::AmrLevel> levels;
  levels.reserve(nlevels);
  for (std::size_t l = 0; l < nlevels; ++l) {
    Dims3 d;
    d.nx = static_cast<std::size_t>(r.get_varint());
    d.ny = static_cast<std::size_t>(r.get_varint());
    d.nz = static_cast<std::size_t>(r.get_varint());
    amr::AmrLevel lv(d);
    const auto packed = lossless::decompress(r.get_blob());
    const auto mask = amr::unpack_mask(packed, d.volume());
    std::copy(mask.begin(), mask.end(), lv.mask.data());
    levels.push_back(std::move(lv));
  }
  h.skeleton = amr::AmrDataset(field, std::move(levels), ratio);
  return h;
}

Method peek_method(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  return read_header_prefix(r);
}

}  // namespace tac::core
