#ifndef TAC_CORE_GSP_HPP
#define TAC_CORE_GSP_HPP

/// \file gsp.hpp
/// \brief Ghost-shell padding for high-density levels (paper §3.3).
///
/// Instead of removing the few empty regions of a dense level, GSP fills
/// each empty unit block that touches data with the average of its
/// non-empty face neighbours' boundary-slice values. Zeros would mislead
/// the Lorenzo predictor at every boundary (the paper's Figure 12a); the
/// diffused ghost values keep the field locally smooth. Padded values are
/// discarded on decompression — the losslessly-stored mask identifies them.

#include "amr/dataset.hpp"
#include "common/array3d.hpp"
#include "core/block_grid.hpp"

namespace tac::core {

/// Returns a full-grid copy of the level with ghost-shell padding applied
/// to empty unit blocks adjacent to non-empty ones. Empty blocks with no
/// non-empty neighbour stay zero.
[[nodiscard]] Array3D<double> gsp_pad(const amr::AmrLevel& level,
                                      const BlockGrid& grid,
                                      const Array3D<std::uint8_t>& occupancy);

/// Zero filling (ZF baseline of Figure 12): the raw level grid, empty
/// cells left at zero.
[[nodiscard]] Array3D<double> zf_pad(const amr::AmrLevel& level);

}  // namespace tac::core

#endif  // TAC_CORE_GSP_HPP
