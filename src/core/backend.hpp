#ifndef TAC_CORE_BACKEND_HPP
#define TAC_CORE_BACKEND_HPP

/// \file backend.hpp
/// \brief The pluggable compression-backend interface and its registry.
///
/// Every compression method — TAC itself and the §4.1 baselines today,
/// MGARD-style or TAC+ tree-partitioning backends tomorrow — implements
/// CompressorBackend and registers under its Method tag. Containers are
/// self-describing: `decompress_any` reads the common header and hands the
/// payload to whichever backend owns the tag, so adding a method never
/// touches existing call sites.
///
/// Contract: `compress` writes the common outer header (via
/// `write_common_header` with this backend's tag) followed by a payload
/// only this backend can read; `decompress` receives the reader positioned
/// at that payload plus the structural skeleton decoded from the header,
/// and must fill every level's data. Backends must be stateless and
/// thread-safe — the snapshot codec compresses fields concurrently through
/// one shared instance.

#include <memory>
#include <span>
#include <vector>

#include "common/bytes.hpp"
#include "core/tac.hpp"

namespace tac::core {

/// One level encoded standalone by a backend — the unit the auto-selector
/// stitches mixed-method containers out of (see core/selector.hpp).
struct LevelPayload {
  std::vector<std::uint8_t> bytes;
  LevelReport report;
};

class CompressorBackend {
 public:
  virtual ~CompressorBackend() = default;

  /// The container tag this backend owns.
  [[nodiscard]] virtual Method method() const = 0;

  /// Human-readable name (diagnostics, tooling).
  [[nodiscard]] virtual const char* name() const = 0;

  /// Compresses a dataset into a self-describing container. Baseline
  /// backends read only `cfg.sz`; TAC-family backends use the full config.
  [[nodiscard]] virtual CompressedAmr compress(const amr::AmrDataset& ds,
                                               const TacConfig& cfg) const = 0;

  /// Decodes this backend's payload into the skeleton (structure decoded
  /// from the common header, data arrays zeroed) and returns the filled
  /// dataset. `r` is positioned immediately after the common header (and,
  /// for v2+ containers, after the payload index). `header` supplies the
  /// payload index — in particular `payload_profile(header, i)`, the codec
  /// profile each payload's lossless streams must decode under. Callers
  /// may have moved the skeleton out of `header`, so backends must not
  /// touch `header.skeleton` — use the `skeleton` parameter.
  [[nodiscard]] virtual amr::AmrDataset decompress(
      ByteReader& r, amr::AmrDataset skeleton,
      const CommonHeader& header) const = 0;

  /// Decodes only `level` of the container into a standalone AmrLevel.
  /// `header` must be the result of read_common_header over `container`.
  ///
  /// The base implementation verifies every indexed payload, decodes the
  /// whole container and keeps the requested level — correct for any
  /// backend, O(dataset). Backends that store one payload per level (TAC,
  /// 1D) override it to verify and visit only that level's indexed bytes,
  /// making partial decompression O(level). Backends whose single payload
  /// interleaves all levels (zMesh, 3D) cannot do better than the
  /// fallback and simply inherit it.
  [[nodiscard]] virtual amr::AmrLevel decompress_level(
      std::span<const std::uint8_t> container, const CommonHeader& header,
      std::size_t level) const;

  /// True when this backend can encode and decode a single level as a
  /// standalone payload (the `auto` pseudo-backend only considers such
  /// backends as candidates). Backends whose single payload interleaves
  /// all levels (zMesh, 3D) return the default false.
  [[nodiscard]] virtual bool supports_level_payloads() const { return false; }

  /// Encodes one level as a standalone payload: exactly the bytes this
  /// backend would write between begin_payload()/end_payload() for `lv`
  /// when it is level `level` of a dataset compressed under `cfg` — so a
  /// container stitched from such payloads (selector byte = this backend's
  /// tag) decodes through decompress_level_payload(). Only called when
  /// supports_level_payloads() is true; the default throws.
  [[nodiscard]] virtual LevelPayload compress_level_payload(
      const amr::AmrLevel& lv, std::size_t level, const TacConfig& cfg) const;

  /// Decodes one payload produced by compress_level_payload() into the
  /// skeleton level `lv` (mask set, data zeroed). `r` spans exactly the
  /// payload bytes; `profile` is the codec profile recorded in its index
  /// entry. Only called when supports_level_payloads() is true; the
  /// default throws.
  virtual void decompress_level_payload(ByteReader& r, amr::AmrLevel& lv,
                                        lossless::CodecProfile profile) const;
};

/// Registers a backend under its Method tag. Throws std::invalid_argument
/// on a duplicate tag or a null backend. Thread-safe.
void register_backend(std::unique_ptr<CompressorBackend> backend);

/// The backend owning `m`. Throws std::runtime_error with the offending
/// tag value when nothing is registered. Thread-safe.
[[nodiscard]] const CompressorBackend& backend_for(Method m);

/// Like backend_for, but returns nullptr instead of throwing.
[[nodiscard]] const CompressorBackend* find_backend(Method m) noexcept;

/// Tags with a registered backend, ascending.
[[nodiscard]] std::vector<Method> registered_methods();

namespace detail {
// Built-in backend factories (defined next to each method's
// implementation); the registry installs them on first use.
[[nodiscard]] std::unique_ptr<CompressorBackend> make_tac_backend();
[[nodiscard]] std::unique_ptr<CompressorBackend> make_oned_backend();
[[nodiscard]] std::unique_ptr<CompressorBackend> make_zmesh_backend();
[[nodiscard]] std::unique_ptr<CompressorBackend> make_upsample3d_backend();
[[nodiscard]] std::unique_ptr<CompressorBackend> make_auto_backend();
}  // namespace detail

}  // namespace tac::core

#endif  // TAC_CORE_BACKEND_HPP
