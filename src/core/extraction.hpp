#ifndef TAC_CORE_EXTRACTION_HPP
#define TAC_CORE_EXTRACTION_HPP

/// \file extraction.hpp
/// \brief The three sparse extraction algorithms (NaST, OpST, AKDTree) and
/// the gather/scatter between level grids and compression buffers.
///
/// Every extractor consumes the unit-block occupancy of a level and
/// returns a set of disjoint rectangular sub-blocks that exactly covers
/// the non-empty unit blocks. Sub-blocks of equal extents are then merged
/// into one buffer ("4D array") and compressed as a batch.

#include <span>
#include <vector>

#include "amr/dataset.hpp"
#include "common/arena.hpp"
#include "common/array3d.hpp"
#include "core/block_grid.hpp"

namespace tac::core {

/// Naive sparse tensor (paper §3.1, NaST): every non-empty unit block is
/// its own 1x1x1 sub-block.
[[nodiscard]] std::vector<SubBlock> nast_extract(
    const Array3D<std::uint8_t>& occupancy);

/// Optimized sparse tensor (paper §3.1, OpST / Algorithm 1): dynamic
/// programming computes, per unit block, the side of the largest full cube
/// ending there; cubes are extracted greedily from the bottom-right-rear
/// corner with maxSide-bounded partial recomputation of the DP table.
[[nodiscard]] std::vector<SubBlock> opst_extract(
    const Array3D<std::uint8_t>& occupancy);

/// Adaptive k-d tree (paper §3.2, AKDTree / Algorithm 2): recursive
/// splitting cube -> flat -> slim, choosing the axis that maximizes the
/// occupancy difference between the two children; leaves are empty or full.
/// Counts come from a summed-area table (O(1) per node), which plays the
/// role of the paper's reuse-counts-every-three-levels optimization.
[[nodiscard]] std::vector<SubBlock> akdtree_extract(
    const Array3D<std::uint8_t>& occupancy);

/// Equal-extent sub-blocks merged into one contiguous buffer.
///
/// `buffer` (members.size() * block_cell_dims.volume() cells) is a view:
/// on the encode path it points into the caller's ArenaScope so the level
/// pipeline reuses scratch instead of heap-allocating per group; on the
/// decode path it views `owned`, which holds the decompressed values.
struct BlockGroup {
  Dims3 block_cell_dims;          ///< extents of one sub-block, in cells
  std::vector<SubBlock> members;  ///< placement metadata
  std::span<double> buffer;
  std::vector<double> owned;      ///< decode-side backing store for buffer
};

/// Gathers sub-block cell data from the level into per-extent groups.
/// Cells past the level boundary (clipped edge blocks) read as 0. Group
/// buffers are allocated from `scratch` and stay valid until it closes.
[[nodiscard]] std::vector<BlockGroup> gather_groups(
    const amr::AmrLevel& level, const BlockGrid& grid,
    const std::vector<SubBlock>& sub_blocks, ArenaScope& scratch);

/// Scatters decompressed group buffers back into the level's data array.
/// Cells past the level boundary are skipped; invalid cells are zeroed
/// afterwards by the caller via the mask.
void scatter_groups(amr::AmrLevel& level, const BlockGrid& grid,
                    const std::vector<BlockGroup>& groups);

/// Validation helper shared by tests: true iff `sub_blocks` are pairwise
/// disjoint, in range, and cover each non-empty unit block exactly once
/// while touching no empty block.
[[nodiscard]] bool covers_exactly(const Array3D<std::uint8_t>& occupancy,
                                  const std::vector<SubBlock>& sub_blocks);

}  // namespace tac::core

#endif  // TAC_CORE_EXTRACTION_HPP
