#ifndef TAC_CORE_BLOCK_GRID_HPP
#define TAC_CORE_BLOCK_GRID_HPP

/// \file block_grid.hpp
/// \brief Unit-block partition of an AMR level grid.
///
/// All three TAC pre-process strategies reason at unit-block granularity:
/// a block is "non-empty" when it contains at least one valid cell. Levels
/// whose extents are not multiples of the block size get clipped edge
/// blocks; extraction buffers zero-fill past the edge and reconstruction
/// skips those cells.

#include <cstdint>

#include "amr/dataset.hpp"
#include "common/array3d.hpp"
#include "common/dims.hpp"

namespace tac::core {

class BlockGrid {
 public:
  BlockGrid(Dims3 cells, std::size_t block_size)
      : cells_(cells),
        block_(block_size),
        blocks_{ceil_div(cells.nx, block_size),
                ceil_div(cells.ny, block_size),
                ceil_div(cells.nz, block_size)} {}

  [[nodiscard]] const Dims3& cell_dims() const { return cells_; }
  [[nodiscard]] std::size_t block_size() const { return block_; }
  [[nodiscard]] const Dims3& block_dims() const { return blocks_; }

  /// Cell box of unit block (bx, by, bz), clipped to the level extents.
  [[nodiscard]] Box3 block_box(std::size_t bx, std::size_t by,
                               std::size_t bz) const {
    return Box3{bx * block_,
                by * block_,
                bz * block_,
                std::min(cells_.nx, (bx + 1) * block_),
                std::min(cells_.ny, (by + 1) * block_),
                std::min(cells_.nz, (bz + 1) * block_)};
  }

 private:
  Dims3 cells_;
  std::size_t block_;
  Dims3 blocks_;
};

/// Per-unit-block occupancy (1 = contains at least one valid cell).
[[nodiscard]] Array3D<std::uint8_t> block_occupancy(const amr::AmrLevel& level,
                                                    const BlockGrid& grid);

/// Fraction of non-empty unit blocks — the density the hybrid filter
/// thresholds (T1/T2) compare against.
[[nodiscard]] double occupancy_density(const Array3D<std::uint8_t>& occ);

/// A rectangular group of unit blocks extracted by a strategy, in
/// unit-block coordinates.
struct SubBlock {
  std::size_t bx = 0, by = 0, bz = 0;  ///< origin block
  std::size_t sx = 1, sy = 1, sz = 1;  ///< extent in blocks

  friend constexpr bool operator==(const SubBlock&, const SubBlock&) = default;
};

}  // namespace tac::core

#endif  // TAC_CORE_BLOCK_GRID_HPP
