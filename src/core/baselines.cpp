#include "core/baselines.hpp"

#include <cmath>
#include <stdexcept>

#include "amr/uniform.hpp"
#include "common/timer.hpp"
#include "sz/sz.hpp"

namespace tac::core {
namespace {

/// Resolves a relative bound against an explicit range, falling back to
/// sz's internal lossless path when the range is degenerate.
sz::SzConfig resolve_against_range(const sz::SzConfig& cfg, double lo,
                                   double hi) {
  if (cfg.mode != sz::ErrorBoundMode::kRelative) return cfg;
  sz::SzConfig out = cfg;
  const double abs_eb = cfg.error_bound * (hi - lo);
  if (abs_eb > 0 && std::isfinite(abs_eb)) {
    out.mode = sz::ErrorBoundMode::kAbsolute;
    out.error_bound = abs_eb;
  }
  return out;
}

std::pair<double, double> dataset_valid_range(const amr::AmrDataset& ds) {
  bool any = false;
  double lo = 0, hi = 0;
  for (std::size_t l = 0; l < ds.num_levels(); ++l) {
    const auto& lv = ds.level(l);
    if (lv.valid_count() == 0) continue;
    const auto [llo, lhi] = lv.valid_range();
    if (!any) {
      lo = llo;
      hi = lhi;
      any = true;
    } else {
      lo = std::min(lo, llo);
      hi = std::max(hi, lhi);
    }
  }
  return {lo, hi};
}

void visit_zmesh(const amr::AmrDataset& ds, std::size_t level, std::size_t x,
                 std::size_t y, std::size_t z, auto&& emit) {
  const amr::AmrLevel& lv = ds.level(level);
  if (lv.mask(x, y, z)) {
    emit(level, x, y, z);
    return;
  }
  if (level == 0) return;  // uncovered finest cell: hole in the partition
  const auto r = static_cast<std::size_t>(ds.refinement_ratio());
  for (std::size_t dz = 0; dz < r; ++dz)
    for (std::size_t dy = 0; dy < r; ++dy)
      for (std::size_t dx = 0; dx < r; ++dx)
        visit_zmesh(ds, level - 1, x * r + dx, y * r + dy, z * r + dz, emit);
}

void zmesh_traverse(const amr::AmrDataset& ds, auto&& emit) {
  if (ds.num_levels() == 0) return;
  const std::size_t coarsest = ds.num_levels() - 1;
  const Dims3 cd = ds.level(coarsest).dims();
  for (std::size_t z = 0; z < cd.nz; ++z)
    for (std::size_t y = 0; y < cd.ny; ++y)
      for (std::size_t x = 0; x < cd.nx; ++x)
        visit_zmesh(ds, coarsest, x, y, z, emit);
}

}  // namespace

std::vector<double> zmesh_gather(const amr::AmrDataset& ds) {
  std::vector<double> out;
  out.reserve(ds.total_valid());
  zmesh_traverse(ds, [&](std::size_t level, std::size_t x, std::size_t y,
                         std::size_t z) {
    out.push_back(ds.level(level).data(x, y, z));
  });
  return out;
}

void zmesh_scatter(amr::AmrDataset& ds, std::span<const double> values) {
  std::size_t i = 0;
  zmesh_traverse(ds, [&](std::size_t level, std::size_t x, std::size_t y,
                         std::size_t z) {
    if (i >= values.size())
      throw std::invalid_argument("zmesh_scatter: too few values");
    ds.level(level).data(x, y, z) = values[i++];
  });
  if (i != values.size())
    throw std::invalid_argument("zmesh_scatter: too many values");
}

CompressedAmr oned_compress(const amr::AmrDataset& ds,
                            const sz::SzConfig& cfg) {
  Timer total;
  ByteWriter w;
  write_common_header(w, Method::kOneD, ds);

  CompressReport report;
  report.method = Method::kOneD;
  report.original_bytes = ds.original_bytes();

  for (std::size_t l = 0; l < ds.num_levels(); ++l) {
    const amr::AmrLevel& lv = ds.level(l);
    LevelReport lr;
    lr.valid_cells = lv.valid_count();
    const auto [lo, hi] = lv.valid_range();
    const sz::SzConfig level_cfg = resolve_against_range(cfg, lo, hi);

    Timer comp;
    const auto values = lv.gather_valid();
    const std::size_t before = w.size();
    if (values.empty()) {
      w.put_blob({});
    } else {
      const auto stream = sz::compress<double>(
          values, Dims3{values.size(), 1, 1}, level_cfg);
      lr.abs_error_bound = sz::peek(stream).abs_error_bound;
      w.put_blob(stream);
    }
    lr.compress_seconds = comp.seconds();
    lr.compressed_bytes = w.size() - before;
    report.levels.push_back(lr);
  }

  CompressedAmr out;
  out.bytes = w.take();
  report.compressed_bytes = out.bytes.size();
  report.seconds = total.seconds();
  out.report = std::move(report);
  return out;
}

CompressedAmr zmesh_compress(const amr::AmrDataset& ds,
                             const sz::SzConfig& cfg) {
  Timer total;
  ByteWriter w;
  write_common_header(w, Method::kZMesh, ds);

  CompressReport report;
  report.method = Method::kZMesh;
  report.original_bytes = ds.original_bytes();

  Timer pre;
  const auto values = zmesh_gather(ds);
  const double pre_secs = pre.seconds();

  const auto [lo, hi] = dataset_valid_range(ds);
  const sz::SzConfig stream_cfg = resolve_against_range(cfg, lo, hi);

  LevelReport lr;  // single interleaved stream: reported as one entry
  lr.valid_cells = values.size();
  lr.preprocess_seconds = pre_secs;
  Timer comp;
  if (values.empty()) {
    w.put_blob({});
  } else {
    const auto stream =
        sz::compress<double>(values, Dims3{values.size(), 1, 1}, stream_cfg);
    lr.abs_error_bound = sz::peek(stream).abs_error_bound;
    w.put_blob(stream);
  }
  lr.compress_seconds = comp.seconds();

  CompressedAmr out;
  out.bytes = w.take();
  lr.compressed_bytes = out.bytes.size();
  report.levels.push_back(lr);
  report.compressed_bytes = out.bytes.size();
  report.seconds = total.seconds();
  out.report = std::move(report);
  return out;
}

CompressedAmr upsample3d_compress(const amr::AmrDataset& ds,
                                  const sz::SzConfig& cfg) {
  Timer total;
  ByteWriter w;
  write_common_header(w, Method::kUpsample3D, ds);

  CompressReport report;
  report.method = Method::kUpsample3D;
  report.original_bytes = ds.original_bytes();

  Timer pre;
  const Array3D<double> uniform = amr::compose_uniform(ds);
  LevelReport lr;
  lr.valid_cells = ds.total_valid();
  lr.preprocess_seconds = pre.seconds();

  const auto [lo, hi] = dataset_valid_range(ds);
  const sz::SzConfig stream_cfg = resolve_against_range(cfg, lo, hi);

  Timer comp;
  const auto stream =
      sz::compress<double>(uniform.span(), uniform.dims(), stream_cfg);
  lr.compress_seconds = comp.seconds();
  lr.abs_error_bound = sz::peek(stream).abs_error_bound;
  w.put_blob(stream);

  CompressedAmr out;
  out.bytes = w.take();
  lr.compressed_bytes = out.bytes.size();
  report.levels.push_back(lr);
  report.compressed_bytes = out.bytes.size();
  report.seconds = total.seconds();
  out.report = std::move(report);
  return out;
}

amr::AmrDataset baselines_decompress(Method method, ByteReader& r,
                                     amr::AmrDataset skeleton) {
  switch (method) {
    case Method::kOneD: {
      for (std::size_t l = 0; l < skeleton.num_levels(); ++l) {
        amr::AmrLevel& lv = skeleton.level(l);
        const auto stream = r.get_blob();
        if (stream.empty()) {
          lv.scatter_valid({});
        } else {
          const auto values = sz::decompress<double>(stream);
          lv.scatter_valid(values);
        }
      }
      return skeleton;
    }
    case Method::kZMesh: {
      const auto stream = r.get_blob();
      if (stream.empty()) return skeleton;
      const auto values = sz::decompress<double>(stream);
      zmesh_scatter(skeleton, values);
      return skeleton;
    }
    case Method::kUpsample3D: {
      const auto stream = r.get_blob();
      const auto flat = sz::decompress<double>(stream);
      const Dims3 fd = skeleton.finest_dims();
      if (flat.size() != fd.volume())
        throw std::runtime_error("3D baseline: payload size mismatch");
      const Array3D<double> uniform(fd, std::vector<double>(flat));
      amr::distribute_uniform(uniform, skeleton);
      return skeleton;
    }
    default:
      throw std::runtime_error("baselines_decompress: not a baseline tag");
  }
}

}  // namespace tac::core
