#include "core/baselines.hpp"

#include <optional>
#include <stdexcept>

#include "amr/uniform.hpp"
#include "common/arena.hpp"
#include "common/parallel.hpp"
#include "common/telemetry.hpp"
#include "common/timer.hpp"
#include "core/backend.hpp"
#include "sz/resolve.hpp"
#include "sz/sz.hpp"

namespace tac::core {
namespace {

std::pair<double, double> dataset_valid_range(const amr::AmrDataset& ds) {
  bool any = false;
  double lo = 0, hi = 0;
  for (std::size_t l = 0; l < ds.num_levels(); ++l) {
    const auto& lv = ds.level(l);
    if (lv.valid_count() == 0) continue;
    const auto [llo, lhi] = lv.valid_range();
    if (!any) {
      lo = llo;
      hi = lhi;
      any = true;
    } else {
      lo = std::min(lo, llo);
      hi = std::max(hi, lhi);
    }
  }
  return {lo, hi};
}

void visit_zmesh(const amr::AmrDataset& ds, std::size_t level, std::size_t x,
                 std::size_t y, std::size_t z, auto&& emit) {
  const amr::AmrLevel& lv = ds.level(level);
  if (lv.mask(x, y, z)) {
    emit(level, x, y, z);
    return;
  }
  if (level == 0) return;  // uncovered finest cell: hole in the partition
  const auto r = static_cast<std::size_t>(ds.refinement_ratio());
  for (std::size_t dz = 0; dz < r; ++dz)
    for (std::size_t dy = 0; dy < r; ++dy)
      for (std::size_t dx = 0; dx < r; ++dx)
        visit_zmesh(ds, level - 1, x * r + dx, y * r + dy, z * r + dz, emit);
}

void zmesh_traverse(const amr::AmrDataset& ds, auto&& emit) {
  if (ds.num_levels() == 0) return;
  const std::size_t coarsest = ds.num_levels() - 1;
  const Dims3 cd = ds.level(coarsest).dims();
  for (std::size_t z = 0; z < cd.nz; ++z)
    for (std::size_t y = 0; y < cd.ny; ++y)
      for (std::size_t x = 0; x < cd.nx; ++x)
        visit_zmesh(ds, coarsest, x, y, z, emit);
}

class OneDBackend final : public CompressorBackend {
 public:
  [[nodiscard]] Method method() const override { return Method::kOneD; }
  [[nodiscard]] const char* name() const override { return "1D"; }

  [[nodiscard]] CompressedAmr compress(const amr::AmrDataset& ds,
                                       const TacConfig& cfg) const override {
    TAC_SPAN("oned.compress");
    Timer total;
    CompressReport report;
    report.method = Method::kOneD;
    report.original_bytes = ds.original_bytes();

    // Per-level 1D streams are independent — run them through the same
    // level pipeline as TAC and serialize in level order.
    std::vector<LevelPayload> levels(ds.num_levels());
    parallel_for(
        0, ds.num_levels(),
        [&](std::size_t l) { levels[l] = encode_level(ds.level(l), cfg); },
        /*grain=*/1);

    ByteWriter w;
    PayloadIndexBuilder index = write_common_header(
        w, Method::kOneD, ds, ds.num_levels(), cfg.sz.profile);
    for (auto& lvl : levels) {
      index.begin_payload();
      w.put_bytes(lvl.bytes);
      index.end_payload();
      report.levels.push_back(lvl.report);
    }
    index.finish();

    CompressedAmr out;
    out.bytes = w.take();
    report.compressed_bytes = out.bytes.size();
    report.seconds = total.seconds();
    out.report = std::move(report);
    return out;
  }

  [[nodiscard]] amr::AmrDataset decompress(
      ByteReader& r, amr::AmrDataset skeleton,
      const CommonHeader& header) const override {
    TAC_SPAN("oned.decompress");
    for (std::size_t l = 0; l < skeleton.num_levels(); ++l)
      decode_level(r, skeleton.level(l), payload_profile(header, l));
    return skeleton;
  }

  /// Native partial decompression: one blob per level, one index entry
  /// per blob, so a single level costs one checksum + one sz decode.
  [[nodiscard]] amr::AmrLevel decompress_level(
      std::span<const std::uint8_t> container, const CommonHeader& header,
      std::size_t level) const override {
    auto r = indexed_level_reader(container, header, level);
    if (!r)  // v1 container (no index): fall back to the full decode.
      return CompressorBackend::decompress_level(container, header, level);
    amr::AmrLevel lv = header.skeleton.level(level);
    decode_level(*r, lv, payload_profile(header, level));
    return lv;
  }

  [[nodiscard]] bool supports_level_payloads() const override { return true; }

  [[nodiscard]] LevelPayload compress_level_payload(
      const amr::AmrLevel& lv, std::size_t /*level*/,
      const TacConfig& cfg) const override {
    return encode_level(lv, cfg);
  }

  void decompress_level_payload(
      ByteReader& r, amr::AmrLevel& lv,
      lossless::CodecProfile profile) const override {
    decode_level(r, lv, profile);
  }

 private:
  /// Encodes one level standalone: the blob written between
  /// begin_payload()/end_payload() by compress(), plus diagnostics. The
  /// 1D bound resolves against this level's own valid range, so the
  /// encoding never depends on sibling levels.
  static LevelPayload encode_level(const amr::AmrLevel& lv,
                                   const TacConfig& cfg) {
    TAC_SPAN("oned.level_encode");
    LevelPayload out;
    out.report.method = Method::kOneD;
    out.report.valid_cells = lv.valid_count();
    const auto [lo, hi] = lv.valid_range();
    const sz::SzConfig level_cfg = sz::resolve_range_bound(cfg.sz, lo, hi);

    Timer comp;
    // Arena-backed gather: the 1D stream is built and compressed before
    // the scope closes, so repeated level encodes reuse the same scratch
    // blocks.
    ArenaScope scratch;
    const auto values = scratch.alloc<double>(lv.valid_count());
    lv.gather_valid_into(values);
    ByteWriter w;
    if (values.empty()) {
      w.put_blob({});
    } else {
      const auto stream = sz::compress<double>(
          values, Dims3{values.size(), 1, 1}, level_cfg);
      out.report.abs_error_bound = sz::peek(stream).abs_error_bound;
      w.put_blob(stream);
    }
    out.report.compress_seconds = comp.seconds();
    out.bytes = w.take();
    out.report.compressed_bytes = out.bytes.size();
    return out;
  }

  static void decode_level(ByteReader& r, amr::AmrLevel& lv,
                           std::optional<lossless::CodecProfile> expected) {
    TAC_SPAN("oned.level_decode");
    const auto stream = r.get_blob();
    if (stream.empty()) {
      lv.scatter_valid({});
    } else {
      const auto values = sz::decompress<double>(stream, expected);
      lv.scatter_valid(values);
    }
  }
};

class ZMeshBackend final : public CompressorBackend {
 public:
  [[nodiscard]] Method method() const override { return Method::kZMesh; }
  [[nodiscard]] const char* name() const override { return "zMesh"; }

  [[nodiscard]] CompressedAmr compress(const amr::AmrDataset& ds,
                                       const TacConfig& cfg) const override {
    TAC_SPAN("zmesh.compress");
    Timer total;
    ByteWriter w;
    // One interleaved stream spanning every level: a single payload (and
    // a single index entry) — partial decompression uses the full-decode
    // fallback for this backend.
    PayloadIndexBuilder index = write_common_header(
        w, Method::kZMesh, ds, /*n_payloads=*/1, cfg.sz.profile);

    CompressReport report;
    report.method = Method::kZMesh;
    report.original_bytes = ds.original_bytes();

    Timer pre;
    const auto values = zmesh_gather(ds);
    const double pre_secs = pre.seconds();

    const auto [lo, hi] = dataset_valid_range(ds);
    const sz::SzConfig stream_cfg = sz::resolve_range_bound(cfg.sz, lo, hi);

    LevelReport lr;  // single interleaved stream: reported as one entry
    lr.valid_cells = values.size();
    lr.preprocess_seconds = pre_secs;
    Timer comp;
    index.begin_payload();
    if (values.empty()) {
      w.put_blob({});
    } else {
      const auto stream = sz::compress<double>(
          values, Dims3{values.size(), 1, 1}, stream_cfg);
      lr.abs_error_bound = sz::peek(stream).abs_error_bound;
      w.put_blob(stream);
    }
    index.end_payload();
    index.finish();
    lr.compress_seconds = comp.seconds();

    CompressedAmr out;
    out.bytes = w.take();
    lr.compressed_bytes = out.bytes.size();
    report.levels.push_back(lr);
    report.compressed_bytes = out.bytes.size();
    report.seconds = total.seconds();
    out.report = std::move(report);
    return out;
  }

  [[nodiscard]] amr::AmrDataset decompress(
      ByteReader& r, amr::AmrDataset skeleton,
      const CommonHeader& header) const override {
    TAC_SPAN("zmesh.decompress");
    const auto stream = r.get_blob();
    if (stream.empty()) return skeleton;
    const auto values =
        sz::decompress<double>(stream, payload_profile(header, 0));
    zmesh_scatter(skeleton, values);
    return skeleton;
  }
};

class Upsample3DBackend final : public CompressorBackend {
 public:
  [[nodiscard]] Method method() const override { return Method::kUpsample3D; }
  [[nodiscard]] const char* name() const override { return "3D"; }

  [[nodiscard]] CompressedAmr compress(const amr::AmrDataset& ds,
                                       const TacConfig& cfg) const override {
    TAC_SPAN("upsample3d.compress");
    Timer total;
    ByteWriter w;
    // Levels merge into one up-sampled uniform grid: a single payload —
    // partial decompression uses the full-decode fallback here too.
    PayloadIndexBuilder index = write_common_header(
        w, Method::kUpsample3D, ds, /*n_payloads=*/1, cfg.sz.profile);

    CompressReport report;
    report.method = Method::kUpsample3D;
    report.original_bytes = ds.original_bytes();

    Timer pre;
    const Array3D<double> uniform = amr::compose_uniform(ds);
    LevelReport lr;
    lr.valid_cells = ds.total_valid();
    lr.preprocess_seconds = pre.seconds();

    const auto [lo, hi] = dataset_valid_range(ds);
    const sz::SzConfig stream_cfg = sz::resolve_range_bound(cfg.sz, lo, hi);

    Timer comp;
    const auto stream =
        sz::compress<double>(uniform.span(), uniform.dims(), stream_cfg);
    lr.compress_seconds = comp.seconds();
    lr.abs_error_bound = sz::peek(stream).abs_error_bound;
    index.begin_payload();
    w.put_blob(stream);
    index.end_payload();
    index.finish();

    CompressedAmr out;
    out.bytes = w.take();
    lr.compressed_bytes = out.bytes.size();
    report.levels.push_back(lr);
    report.compressed_bytes = out.bytes.size();
    report.seconds = total.seconds();
    out.report = std::move(report);
    return out;
  }

  [[nodiscard]] amr::AmrDataset decompress(
      ByteReader& r, amr::AmrDataset skeleton,
      const CommonHeader& header) const override {
    TAC_SPAN("upsample3d.decompress");
    const auto stream = r.get_blob();
    const auto flat =
        sz::decompress<double>(stream, payload_profile(header, 0));
    const Dims3 fd = skeleton.finest_dims();
    if (flat.size() != fd.volume())
      throw std::runtime_error("3D baseline: payload size mismatch");
    const Array3D<double> uniform(fd, std::vector<double>(flat));
    amr::distribute_uniform(uniform, skeleton);
    return skeleton;
  }
};

TacConfig sz_only(const sz::SzConfig& cfg) {
  TacConfig out;
  out.sz = cfg;
  return out;
}

}  // namespace

namespace detail {
std::unique_ptr<CompressorBackend> make_oned_backend() {
  return std::make_unique<OneDBackend>();
}
std::unique_ptr<CompressorBackend> make_zmesh_backend() {
  return std::make_unique<ZMeshBackend>();
}
std::unique_ptr<CompressorBackend> make_upsample3d_backend() {
  return std::make_unique<Upsample3DBackend>();
}
}  // namespace detail

std::vector<double> zmesh_gather(const amr::AmrDataset& ds) {
  std::vector<double> out;
  out.reserve(ds.total_valid());
  zmesh_traverse(ds, [&](std::size_t level, std::size_t x, std::size_t y,
                         std::size_t z) {
    out.push_back(ds.level(level).data(x, y, z));
  });
  return out;
}

void zmesh_scatter(amr::AmrDataset& ds, std::span<const double> values) {
  std::size_t i = 0;
  zmesh_traverse(ds, [&](std::size_t level, std::size_t x, std::size_t y,
                         std::size_t z) {
    if (i >= values.size())
      throw std::invalid_argument("zmesh_scatter: too few values");
    ds.level(level).data(x, y, z) = values[i++];
  });
  if (i != values.size())
    throw std::invalid_argument("zmesh_scatter: too many values");
}

CompressedAmr oned_compress(const amr::AmrDataset& ds,
                            const sz::SzConfig& cfg) {
  return backend_for(Method::kOneD).compress(ds, sz_only(cfg));
}

CompressedAmr zmesh_compress(const amr::AmrDataset& ds,
                             const sz::SzConfig& cfg) {
  return backend_for(Method::kZMesh).compress(ds, sz_only(cfg));
}

CompressedAmr upsample3d_compress(const amr::AmrDataset& ds,
                                  const sz::SzConfig& cfg) {
  return backend_for(Method::kUpsample3D).compress(ds, sz_only(cfg));
}

}  // namespace tac::core
