#ifndef TAC_CORE_SELECTOR_HPP
#define TAC_CORE_SELECTOR_HPP

/// \file selector.hpp
/// \brief Per-level adaptive backend selection — the `auto` pseudo-backend.
///
/// BENCH_tab02.json shows no single method wins every (dataset, error
/// bound) cell: TAC's density-adaptive 3D encode wins dense fields while
/// the 1D baseline wins sparse, near-constant ones. The selector exploits
/// that per level: it trial-compresses a small deterministic sample of
/// each level's occupied unit blocks with every level-capable registered
/// backend (CompressorBackend::supports_level_payloads), scores the
/// trials by a configurable objective (SelectorConfig), and encodes the
/// level with the winner. The chosen method is recorded in the v4 payload
/// index's selector byte, so decoding needs no side channel: each payload
/// dispatches to the backend its entry names.
///
/// Determinism: block sampling is a pure function of (occupancy, level,
/// seed), and the default kRatio objective compares trial byte counts —
/// which are byte-stable across thread counts and SIMD tiers — so the
/// same input and config produce the same per-level choices and a
/// byte-identical container anywhere. The kThroughput/kBalanced
/// objectives trade that reproducibility for wall-time awareness.

#include <vector>

#include "core/backend.hpp"

namespace tac::core {

/// One candidate's trial on the sampled stand-in level.
struct CandidateTrial {
  Method method = Method::kTac;
  std::size_t trial_bytes = 0;  ///< sampled-payload size
  double trial_seconds = 0;     ///< wall time of the trial encode
  double score = 0;             ///< objective value; lower wins
};

/// The verdict for one level: the winning backend plus every trial that
/// competed (diagnostics for `tac_file_tool info`-style tooling and the
/// bench's overhead accounting).
struct SelectionDecision {
  Method winner = Method::kTac;
  std::size_t occupied_blocks = 0;  ///< occupied unit blocks in the level
  std::size_t sampled_blocks = 0;   ///< blocks trial-compressed
  double seconds = 0;               ///< total selection wall time
  std::vector<CandidateTrial> trials;  ///< candidate-tag ascending
};

/// The effective candidate set: `cfg.candidates` (or, when empty, every
/// registered backend) filtered to backends that support per-level
/// payloads, ascending by tag. Throws std::invalid_argument when the
/// filter leaves nothing to choose from.
[[nodiscard]] std::vector<Method> selector_candidates(
    const SelectorConfig& cfg);

/// Picks the backend for `lv` (level index `level` of its dataset) by
/// trial-compressing a sampled stand-in level with each candidate under
/// `cfg`'s error bound. Empty levels skip the trials and deterministically
/// pick the lowest-tag candidate.
[[nodiscard]] SelectionDecision select_for_level(const amr::AmrLevel& lv,
                                                 std::size_t level,
                                                 const TacConfig& cfg);

}  // namespace tac::core

#endif  // TAC_CORE_SELECTOR_HPP
