#include "core/adaptive.hpp"

#include <stdexcept>

#include "core/backend.hpp"
#include "core/block_grid.hpp"

namespace tac::core {

Method adaptive_select(const amr::AmrDataset& ds, const TacConfig& cfg) {
  if (ds.num_levels() == 0)
    throw std::invalid_argument("adaptive_select: empty dataset");
  const amr::AmrLevel& finest = ds.level(0);
  const BlockGrid grid(finest.dims(), cfg.block_size);
  const double density = occupancy_density(block_occupancy(finest, grid));
  return density >= cfg.t2 ? Method::kUpsample3D : Method::kTac;
}

CompressedAmr adaptive_compress(const amr::AmrDataset& ds,
                                const TacConfig& cfg) {
  return backend_for(adaptive_select(ds, cfg)).compress(ds, cfg);
}

std::vector<double> ratio_error_bounds(double finest_eb,
                                       double fine_to_coarse,
                                       std::size_t num_levels) {
  if (!(finest_eb > 0) || !(fine_to_coarse > 0))
    throw std::invalid_argument("ratio_error_bounds: bounds must be > 0");
  std::vector<double> out(num_levels);
  double eb = finest_eb;
  for (std::size_t l = 0; l < num_levels; ++l) {
    out[l] = eb;
    eb /= fine_to_coarse;
  }
  return out;
}

}  // namespace tac::core
