#include "core/selector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "common/parallel.hpp"
#include "common/telemetry.hpp"
#include "common/timer.hpp"
#include "core/block_grid.hpp"

namespace tac::core {
namespace {

/// Coordinates of one occupied unit block.
struct BlockCoord {
  std::size_t bx, by, bz;
};

/// splitmix64 — a tiny, well-mixed hash used to derive the per-level
/// sampling phase from (seed, level). Deterministic by construction.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Occupied unit blocks in raster order (x fastest) — a stable enumeration
/// the stride sampler indexes into.
std::vector<BlockCoord> occupied_blocks(const Array3D<std::uint8_t>& occ,
                                        const Dims3& bd) {
  std::vector<BlockCoord> out;
  for (std::size_t bz = 0; bz < bd.nz; ++bz)
    for (std::size_t by = 0; by < bd.ny; ++by)
      for (std::size_t bx = 0; bx < bd.nx; ++bx)
        if (occ(bx, by, bz)) out.push_back({bx, by, bz});
  return out;
}

/// Evenly strided sample of `want` blocks with a hashed phase offset, so
/// different levels (and seeds) probe different blocks but the same
/// (input, seed) always probes the same ones.
std::vector<BlockCoord> sample_blocks(const std::vector<BlockCoord>& occ,
                                      std::size_t want, std::size_t level,
                                      std::uint64_t seed) {
  if (want >= occ.size()) return occ;
  const std::size_t stride = occ.size() / want;
  const std::size_t phase =
      static_cast<std::size_t>(splitmix64(seed ^ level) % stride);
  std::vector<BlockCoord> out;
  out.reserve(want);
  for (std::size_t i = 0; i < want; ++i) out.push_back(occ[phase + i * stride]);
  return out;
}

/// Builds the stand-in level the candidates trial-compress: the sampled
/// unit blocks stacked along z into a (bs, bs, bs * n) grid, each block's
/// (possibly edge-clipped) cells copied into its slot's corner with the
/// real mask. The stand-in preserves intra-block structure — what the 3D
/// predictor and the 1D stream actually see — at a fraction of the
/// level's volume.
amr::AmrLevel build_sample_level(const amr::AmrLevel& lv,
                                 const BlockGrid& grid,
                                 const std::vector<BlockCoord>& blocks) {
  const std::size_t bs = grid.block_size();
  amr::AmrLevel sample(Dims3{bs, bs, bs * blocks.size()});
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const Box3 box = grid.block_box(blocks[i].bx, blocks[i].by, blocks[i].bz);
    const std::size_t z_base = i * bs;
    for (std::size_t z = box.z0; z < box.z1; ++z)
      for (std::size_t y = box.y0; y < box.y1; ++y)
        for (std::size_t x = box.x0; x < box.x1; ++x) {
          if (!lv.mask(x, y, z)) continue;
          const std::size_t sx = x - box.x0;
          const std::size_t sy = y - box.y0;
          const std::size_t sz_ = z_base + (z - box.z0);
          sample.data(sx, sy, sz_) = lv.data(x, y, z);
          sample.mask(sx, sy, sz_) = 1;
        }
  }
  return sample;
}

/// Scores the trials in place per the objective. kRatio compares raw byte
/// counts (deterministic); the time-based objectives normalize each term
/// by the best candidate's value so the blend weight is scale-free.
void score_trials(std::vector<CandidateTrial>& trials,
                  const SelectorConfig& cfg) {
  switch (cfg.objective) {
    case SelectorObjective::kRatio:
      for (auto& t : trials) t.score = static_cast<double>(t.trial_bytes);
      return;
    case SelectorObjective::kThroughput:
      for (auto& t : trials) t.score = t.trial_seconds;
      return;
    case SelectorObjective::kBalanced: {
      double best_bytes = trials.front().trial_bytes;
      double best_secs = trials.front().trial_seconds;
      for (const auto& t : trials) {
        best_bytes = std::min(best_bytes, static_cast<double>(t.trial_bytes));
        best_secs = std::min(best_secs, t.trial_seconds);
      }
      if (best_bytes <= 0) best_bytes = 1;
      if (best_secs <= 0) best_secs = 1e-9;
      const double w = std::clamp(cfg.balance, 0.0, 1.0);
      for (auto& t : trials)
        t.score = w * (static_cast<double>(t.trial_bytes) / best_bytes) +
                  (1.0 - w) * (t.trial_seconds / best_secs);
      return;
    }
  }
  throw std::invalid_argument("selector: unknown objective");
}

}  // namespace

std::vector<Method> selector_candidates(const SelectorConfig& cfg) {
  std::vector<Method> pool =
      cfg.candidates.empty() ? registered_methods() : cfg.candidates;
  std::sort(pool.begin(), pool.end());
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
  std::vector<Method> out;
  for (Method m : pool) {
    const CompressorBackend* b = find_backend(m);
    if (b != nullptr && b->supports_level_payloads()) out.push_back(m);
  }
  if (out.empty())
    throw std::invalid_argument(
        "selector: no candidate backend supports per-level payloads");
  return out;
}

SelectionDecision select_for_level(const amr::AmrLevel& lv, std::size_t level,
                                   const TacConfig& cfg) {
  TAC_SPAN("selector.select_level");
  Timer total;
  const std::vector<Method> candidates = selector_candidates(cfg.selector);

  SelectionDecision d;
  const BlockGrid grid(lv.dims(), cfg.block_size);
  const auto occ = block_occupancy(lv, grid);
  const auto occupied = occupied_blocks(occ, grid.block_dims());
  d.occupied_blocks = occupied.size();

  if (occupied.empty()) {  // empty level: nothing to probe, lowest tag wins
    d.winner = candidates.front();
    d.seconds = total.seconds();
    return d;
  }

  const double frac = std::clamp(cfg.selector.sample_fraction, 0.0, 1.0);
  std::size_t want = static_cast<std::size_t>(
      std::llround(frac * static_cast<double>(occupied.size())));
  want = std::max(want, std::max<std::size_t>(cfg.selector.min_sample_blocks,
                                              1));
  want = std::min(want, occupied.size());
  const auto sampled =
      sample_blocks(occupied, want, level, cfg.selector.seed);
  d.sampled_blocks = sampled.size();
  const amr::AmrLevel sample = build_sample_level(lv, grid, sampled);

  // The stacked sample is artificially dense (every block it contains is
  // occupied), which would bias TAC's density filter toward GSP. Pin the
  // trial to the strategy the REAL level's density selects, so the trial
  // measures what the final encode would actually do.
  TacConfig trial_cfg = cfg;
  if (!trial_cfg.force_strategy)
    trial_cfg.force_strategy =
        select_strategy(occupancy_density(occ), cfg.t1, cfg.t2);

  d.trials.reserve(candidates.size());
  TAC_COUNTER_ADD("selector.sampled_blocks", sampled.size());
  for (Method m : candidates) {
    CandidateTrial t;
    t.method = m;
    TAC_SPAN_NAMED(trial_span, "selector.trial");
    Timer encode;
    const LevelPayload p =
        backend_for(m).compress_level_payload(sample, level, trial_cfg);
    t.trial_seconds = encode.seconds();
    t.trial_bytes = p.bytes.size();
    trial_span.set_bytes(p.bytes.size());
    d.trials.push_back(t);
  }
  TAC_COUNTER_ADD("selector.trials", d.trials.size());
  score_trials(d.trials, cfg.selector);

  // Strict less-than over tag-ascending trials: ties deterministically go
  // to the lowest method tag.
  d.winner = d.trials.front().method;
  double best = d.trials.front().score;
  for (const auto& t : d.trials)
    if (t.score < best) {
      best = t.score;
      d.winner = t.method;
    }
  TAC_COUNTER_ADD("selector.trials_won", 1);
  TAC_COUNTER_ADD("selector.trials_lost", d.trials.size() - 1);
  d.seconds = total.seconds();
  return d;
}

namespace {

/// The `auto` pseudo-backend: per level, run the selection trial, encode
/// with the winner, and stamp the winner's tag into the v4 selector byte.
/// Decoding dispatches every payload to the backend its index entry
/// names, so mixed-method containers round-trip through the ordinary
/// decompress_any / decompress_level entry points.
class AutoBackend final : public CompressorBackend {
 public:
  [[nodiscard]] Method method() const override { return Method::kAuto; }
  [[nodiscard]] const char* name() const override { return "auto"; }

  [[nodiscard]] CompressedAmr compress(const amr::AmrDataset& ds,
                                       const TacConfig& cfg) const override {
    if (ds.num_levels() == 0)
      throw std::invalid_argument("auto: empty dataset");
    if (!cfg.level_error_bounds.empty() &&
        cfg.level_error_bounds.size() != ds.num_levels())
      throw std::invalid_argument(
          "auto: level_error_bounds has " +
          std::to_string(cfg.level_error_bounds.size()) +
          " entries but the dataset has " + std::to_string(ds.num_levels()) +
          " levels (need one bound per level, finest first)");
    if (cfg.block_size == 0)
      throw std::invalid_argument("auto: block_size must be > 0");
    (void)selector_candidates(cfg.selector);  // validate before any work

    TAC_SPAN("auto.compress");
    Timer total;
    CompressReport report;
    report.method = Method::kAuto;
    report.original_bytes = ds.original_bytes();

    // Same level pipeline as TAC: select + encode each level concurrently
    // into private chunks, merge in level order. With the default kRatio
    // objective the winners — and therefore the container bytes — are
    // identical at any thread count.
    struct LevelOutput {
      Method winner = Method::kTac;
      LevelPayload payload;
    };
    std::vector<LevelOutput> levels(ds.num_levels());
    parallel_for(
        0, ds.num_levels(),
        [&](std::size_t l) {
          const SelectionDecision d = select_for_level(ds.level(l), l, cfg);
          LevelOutput& out = levels[l];
          out.winner = d.winner;
          out.payload =
              backend_for(d.winner).compress_level_payload(ds.level(l), l, cfg);
          out.payload.report.method = d.winner;
          out.payload.report.selection_seconds = d.seconds;
        },
        /*grain=*/1);

    ByteWriter w;
    PayloadIndexBuilder index = write_common_header(
        w, Method::kAuto, ds, ds.num_levels(), cfg.sz.profile);
    for (auto& lvl : levels) {
      index.begin_payload();
      w.put_bytes(lvl.payload.bytes);
      index.end_payload(lvl.winner);
      report.levels.push_back(lvl.payload.report);
    }
    index.finish();

    CompressedAmr out;
    out.bytes = w.take();
    report.compressed_bytes = out.bytes.size();
    report.seconds = total.seconds();
    out.report = std::move(report);
    return out;
  }

  [[nodiscard]] amr::AmrDataset decompress(
      ByteReader& r, amr::AmrDataset skeleton,
      const CommonHeader& header) const override {
    for (std::size_t l = 0; l < skeleton.num_levels(); ++l)
      owner_of(header, l).decompress_level_payload(
          r, skeleton.level(l), required_profile(header, l));
    return skeleton;
  }

  /// Native partial decompression: one payload per level, dispatched to
  /// the backend its selector byte names.
  [[nodiscard]] amr::AmrLevel decompress_level(
      std::span<const std::uint8_t> container, const CommonHeader& header,
      std::size_t level) const override {
    auto r = indexed_level_reader(container, header, level);
    if (!r)  // index doesn't map to levels: corrupt/hand-rolled container
      return CompressorBackend::decompress_level(container, header, level);
    amr::AmrLevel lv = header.skeleton.level(level);
    owner_of(header, level).decompress_level_payload(
        *r, lv, required_profile(header, level));
    return lv;
  }

 private:
  /// The backend a payload's selector byte names. Auto containers always
  /// stamp concrete winners, so a missing selector means the container
  /// was not produced by this library's auto writer.
  static const CompressorBackend& owner_of(const CommonHeader& header,
                                           std::size_t l) {
    const std::optional<Method> m = payload_method(header, l);
    if (!m)
      throw std::runtime_error(
          "auto: payload " + std::to_string(l) +
          " carries no recorded selector (container predates format v4 "
          "or was not written by the auto backend)");
    return backend_for(*m);
  }

  static lossless::CodecProfile required_profile(const CommonHeader& header,
                                                 std::size_t l) {
    const auto p = payload_profile(header, l);
    if (!p)
      throw std::runtime_error(
          "auto: payload " + std::to_string(l) +
          " carries no codec-profile byte (container predates format v3)");
    return *p;
  }
};

}  // namespace

namespace detail {
std::unique_ptr<CompressorBackend> make_auto_backend() {
  return std::make_unique<AutoBackend>();
}
}  // namespace detail

}  // namespace tac::core
