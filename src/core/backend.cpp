#include "core/backend.hpp"

#include <array>
#include <mutex>
#include <stdexcept>
#include <string>

namespace tac::core {

amr::AmrLevel CompressorBackend::decompress_level(
    std::span<const std::uint8_t> container, const CommonHeader& header,
    std::size_t level) const {
  if (level >= header.skeleton.num_levels())
    throw std::out_of_range(
        "decompress_level: level " + std::to_string(level) +
        " out of range (container has " +
        std::to_string(header.skeleton.num_levels()) + " levels)");
  // Full-decode fallback: every payload is read, so verify them all.
  verify_payloads(container, header.index);
  ByteReader r(container);
  r.seek(header.payload_offset);
  amr::AmrDataset full = decompress(r, header.skeleton, header);
  return std::move(full.level(level));
}

LevelPayload CompressorBackend::compress_level_payload(
    const amr::AmrLevel&, std::size_t, const TacConfig&) const {
  throw std::logic_error(std::string(name()) +
                         " backend does not support per-level payloads");
}

void CompressorBackend::decompress_level_payload(
    ByteReader&, amr::AmrLevel&, lossless::CodecProfile) const {
  throw std::logic_error(std::string(name()) +
                         " backend does not support per-level payloads");
}

namespace {

/// Method is a uint8_t tag, so a flat array covers the whole key space.
struct Registry {
  std::array<std::unique_ptr<CompressorBackend>, 256> slots;
  std::mutex mutex;
};

Registry& registry() {
  // The built-ins are installed on first access rather than via static
  // registrar objects: a static library would silently drop unreferenced
  // registration TUs, and this keeps the registry usable during static
  // initialization of client code.
  static Registry r;
  static const bool installed = [] {
    for (auto make :
         {detail::make_tac_backend, detail::make_oned_backend,
          detail::make_zmesh_backend, detail::make_upsample3d_backend,
          detail::make_auto_backend}) {
      auto backend = make();
      r.slots[static_cast<std::uint8_t>(backend->method())] =
          std::move(backend);
    }
    return true;
  }();
  (void)installed;
  return r;
}

}  // namespace

void register_backend(std::unique_ptr<CompressorBackend> backend) {
  if (!backend)
    throw std::invalid_argument("register_backend: null backend");
  Registry& r = registry();
  const auto tag = static_cast<std::uint8_t>(backend->method());
  const std::lock_guard<std::mutex> lock(r.mutex);
  if (r.slots[tag])
    throw std::invalid_argument(
        std::string("register_backend: method tag ") + std::to_string(tag) +
        " already registered to \"" + r.slots[tag]->name() + "\"");
  r.slots[tag] = std::move(backend);
}

const CompressorBackend* find_backend(Method m) noexcept {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  return r.slots[static_cast<std::uint8_t>(m)].get();
}

const CompressorBackend& backend_for(Method m) {
  if (const CompressorBackend* b = find_backend(m)) return *b;
  throw std::runtime_error(
      "no compressor backend registered for method tag " +
      std::to_string(static_cast<unsigned>(m)));
}

std::vector<Method> registered_methods() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<Method> out;
  for (std::size_t tag = 0; tag < r.slots.size(); ++tag)
    if (r.slots[tag]) out.push_back(static_cast<Method>(tag));
  return out;
}

}  // namespace tac::core
