#include "core/extraction.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <tuple>

#include "common/parallel.hpp"

namespace tac::core {

std::vector<SubBlock> nast_extract(const Array3D<std::uint8_t>& occupancy) {
  const Dims3 d = occupancy.dims();
  std::vector<SubBlock> out;
  for (std::size_t z = 0; z < d.nz; ++z)
    for (std::size_t y = 0; y < d.ny; ++y)
      for (std::size_t x = 0; x < d.nx; ++x)
        if (occupancy(x, y, z)) out.push_back({x, y, z, 1, 1, 1});
  return out;
}

namespace {

/// BS(x,y,z): side of the largest full cube whose far corner (maximum
/// index corner) is unit block (x,y,z). Zero for empty blocks.
std::int32_t dp_value(const Array3D<std::uint8_t>& occ,
                      const Array3D<std::int32_t>& bs, std::size_t x,
                      std::size_t y, std::size_t z) {
  if (!occ(x, y, z)) return 0;
  if (x == 0 || y == 0 || z == 0) return 1;
  const std::int32_t m = std::min(
      {bs(x - 1, y, z), bs(x, y - 1, z), bs(x, y, z - 1), bs(x - 1, y - 1, z),
       bs(x, y - 1, z - 1), bs(x - 1, y, z - 1), bs(x - 1, y - 1, z - 1)});
  return m + 1;
}

}  // namespace

std::vector<SubBlock> opst_extract(const Array3D<std::uint8_t>& occupancy) {
  Array3D<std::uint8_t> occ = occupancy;  // consumed during extraction
  const Dims3 d = occ.dims();
  Array3D<std::int32_t> bs(d, 0);

  std::int32_t max_side = 0;
  for (std::size_t z = 0; z < d.nz; ++z)
    for (std::size_t y = 0; y < d.ny; ++y)
      for (std::size_t x = 0; x < d.nx; ++x) {
        const std::int32_t v = dp_value(occ, bs, x, y, z);
        bs(x, y, z) = v;
        max_side = std::max(max_side, v);
      }

  std::vector<SubBlock> out;
  // Reverse raster sweep: every occupied block still standing when visited
  // is the far corner of its largest full cube; extract it, then repair the
  // DP table in the maxSide-bounded window the extraction can influence.
  for (std::size_t z = d.nz; z-- > 0;)
    for (std::size_t y = d.ny; y-- > 0;)
      for (std::size_t x = d.nx; x-- > 0;) {
        const std::int32_t s32 = bs(x, y, z);
        if (s32 <= 0) continue;
        const auto s = static_cast<std::size_t>(s32);
        const std::size_t ox = x + 1 - s, oy = y + 1 - s, oz = z + 1 - s;
        out.push_back({ox, oy, oz, s, s, s});
        for (std::size_t k = oz; k <= z; ++k)
          for (std::size_t j = oy; j <= y; ++j)
            for (std::size_t i = ox; i <= x; ++i) {
              occ(i, j, k) = 0;
              bs(i, j, k) = 0;
            }
        // Partial update: only blocks whose largest cube could reach into
        // the extracted region are affected. BS never grows after an
        // extraction, so the initial maxSide bounds the reach for good.
        const auto reach = static_cast<std::size_t>(max_side) - 1;
        const std::size_t ix1 = std::min(d.nx - 1, x + reach);
        const std::size_t iy1 = std::min(d.ny - 1, y + reach);
        const std::size_t iz1 = std::min(d.nz - 1, z + reach);
        for (std::size_t k = oz; k <= iz1; ++k)
          for (std::size_t j = oy; j <= iy1; ++j)
            for (std::size_t i = ox; i <= ix1; ++i)
              bs(i, j, k) = dp_value(occ, bs, i, j, k);
      }
  return out;
}

namespace {

/// 3D summed-area table over occupancy: O(1) count of any block box.
class Sat {
 public:
  explicit Sat(const Array3D<std::uint8_t>& occ)
      : d_(occ.dims()),
        sums_({d_.nx + 1, d_.ny + 1, d_.nz + 1}, 0) {
    for (std::size_t z = 0; z < d_.nz; ++z)
      for (std::size_t y = 0; y < d_.ny; ++y)
        for (std::size_t x = 0; x < d_.nx; ++x)
          sums_(x + 1, y + 1, z + 1) =
              static_cast<std::uint64_t>(occ(x, y, z)) +
              sums_(x, y + 1, z + 1) + sums_(x + 1, y, z + 1) +
              sums_(x + 1, y + 1, z) - sums_(x, y, z + 1) -
              sums_(x, y + 1, z) - sums_(x + 1, y, z) + sums_(x, y, z);
  }

  [[nodiscard]] std::uint64_t count(const Box3& b) const {
    return sums_(b.x1, b.y1, b.z1) - sums_(b.x0, b.y1, b.z1) -
           sums_(b.x1, b.y0, b.z1) - sums_(b.x1, b.y1, b.z0) +
           sums_(b.x0, b.y0, b.z1) + sums_(b.x0, b.y1, b.z0) +
           sums_(b.x1, b.y0, b.z0) - sums_(b.x0, b.y0, b.z0);
  }

 private:
  Dims3 d_;
  Array3D<std::uint64_t> sums_;
};

/// Splits `box` at the midpoint of `axis` (0=x, 1=y, 2=z).
std::pair<Box3, Box3> split_box(const Box3& box, int axis) {
  Box3 a = box, b = box;
  switch (axis) {
    case 0: {
      const std::size_t mid = box.x0 + (box.x1 - box.x0) / 2;
      a.x1 = mid;
      b.x0 = mid;
      break;
    }
    case 1: {
      const std::size_t mid = box.y0 + (box.y1 - box.y0) / 2;
      a.y1 = mid;
      b.y0 = mid;
      break;
    }
    default: {
      const std::size_t mid = box.z0 + (box.z1 - box.z0) / 2;
      a.z1 = mid;
      b.z0 = mid;
      break;
    }
  }
  return {a, b};
}

void akd_recurse(const Sat& sat, const Box3& box,
                 std::vector<SubBlock>& out) {
  const std::uint64_t c = sat.count(box);
  if (c == 0) return;  // empty leaf
  if (c == box.volume()) {
    out.push_back({box.x0, box.y0, box.z0, box.x1 - box.x0, box.y1 - box.y0,
                   box.z1 - box.z0});
    return;  // full leaf
  }
  // Mixed node: split along one of the longest axes, choosing the one that
  // maximizes the occupancy imbalance between the children (the paper's
  // maxDiff criterion, cycling cube -> flat -> slim shapes).
  const Dims3 ext = box.extents();
  const std::size_t m = std::max({ext.nx, ext.ny, ext.nz});
  int best_axis = -1;
  std::int64_t best_diff = -1;
  const std::size_t axis_ext[3] = {ext.nx, ext.ny, ext.nz};
  for (int axis = 0; axis < 3; ++axis) {
    if (axis_ext[axis] != m || m < 2) continue;
    const auto [a, b] = split_box(box, axis);
    const auto diff = std::abs(static_cast<std::int64_t>(sat.count(a)) -
                               static_cast<std::int64_t>(sat.count(b)));
    if (diff > best_diff) {
      best_diff = diff;
      best_axis = axis;
    }
  }
  if (best_axis < 0)
    throw std::logic_error("akdtree: mixed node with no splittable axis");
  const auto [a, b] = split_box(box, best_axis);
  akd_recurse(sat, a, out);
  akd_recurse(sat, b, out);
}

}  // namespace

std::vector<SubBlock> akdtree_extract(const Array3D<std::uint8_t>& occupancy) {
  const Dims3 d = occupancy.dims();
  std::vector<SubBlock> out;
  if (d.volume() == 0) return out;
  const Sat sat(occupancy);
  akd_recurse(sat, Box3{0, 0, 0, d.nx, d.ny, d.nz}, out);
  return out;
}

std::vector<BlockGroup> gather_groups(const amr::AmrLevel& level,
                                      const BlockGrid& grid,
                                      const std::vector<SubBlock>& sub_blocks,
                                      ArenaScope& scratch) {
  const std::size_t B = grid.block_size();
  const Dims3 cells = grid.cell_dims();

  std::map<std::tuple<std::size_t, std::size_t, std::size_t>, std::size_t>
      group_of;
  std::vector<BlockGroup> groups;
  for (const SubBlock& sb : sub_blocks) {
    const auto key = std::make_tuple(sb.sx, sb.sy, sb.sz);
    const auto [it, inserted] = group_of.try_emplace(key, groups.size());
    if (inserted) {
      BlockGroup g;
      g.block_cell_dims = {sb.sx * B, sb.sy * B, sb.sz * B};
      groups.push_back(std::move(g));
    }
    groups[it->second].members.push_back(sb);
  }

  for (BlockGroup& g : groups) {
    const std::size_t vol = g.block_cell_dims.volume();
    g.buffer = scratch.alloc_zero<double>(vol * g.members.size());
    parallel_for(0, g.members.size(), [&](std::size_t mi) {
      const SubBlock& sb = g.members[mi];
      double* dst = g.buffer.data() + mi * vol;
      const Dims3 bd = g.block_cell_dims;
      const std::size_t cx = sb.bx * B, cy = sb.by * B, cz = sb.bz * B;
      for (std::size_t z = 0; z < bd.nz; ++z) {
        if (cz + z >= cells.nz) continue;  // clipped edge: stays 0
        for (std::size_t y = 0; y < bd.ny; ++y) {
          if (cy + y >= cells.ny) continue;
          for (std::size_t x = 0; x < bd.nx; ++x) {
            if (cx + x >= cells.nx) continue;
            dst[bd.index(x, y, z)] = level.data(cx + x, cy + y, cz + z);
          }
        }
      }
    }, /*grain=*/1);
  }
  return groups;
}

void scatter_groups(amr::AmrLevel& level, const BlockGrid& grid,
                    const std::vector<BlockGroup>& groups) {
  const std::size_t B = grid.block_size();
  const Dims3 cells = grid.cell_dims();
  for (const BlockGroup& g : groups) {
    const std::size_t vol = g.block_cell_dims.volume();
    if (g.buffer.size() != vol * g.members.size())
      throw std::invalid_argument("scatter_groups: buffer size mismatch");
    parallel_for(0, g.members.size(), [&](std::size_t mi) {
      const SubBlock& sb = g.members[mi];
      const double* src = g.buffer.data() + mi * vol;
      const Dims3 bd = g.block_cell_dims;
      const std::size_t cx = sb.bx * B, cy = sb.by * B, cz = sb.bz * B;
      for (std::size_t z = 0; z < bd.nz; ++z) {
        if (cz + z >= cells.nz) continue;
        for (std::size_t y = 0; y < bd.ny; ++y) {
          if (cy + y >= cells.ny) continue;
          for (std::size_t x = 0; x < bd.nx; ++x) {
            if (cx + x >= cells.nx) continue;
            level.data(cx + x, cy + y, cz + z) = src[bd.index(x, y, z)];
          }
        }
      }
    }, /*grain=*/1);
  }
}

bool covers_exactly(const Array3D<std::uint8_t>& occupancy,
                    const std::vector<SubBlock>& sub_blocks) {
  const Dims3 d = occupancy.dims();
  Array3D<std::uint8_t> painted(d, 0);
  for (const SubBlock& sb : sub_blocks) {
    if (sb.bx + sb.sx > d.nx || sb.by + sb.sy > d.ny || sb.bz + sb.sz > d.nz)
      return false;  // out of range
    for (std::size_t z = sb.bz; z < sb.bz + sb.sz; ++z)
      for (std::size_t y = sb.by; y < sb.by + sb.sy; ++y)
        for (std::size_t x = sb.bx; x < sb.bx + sb.sx; ++x) {
          if (painted(x, y, z)) return false;  // overlap
          if (!occupancy(x, y, z)) return false;  // covers an empty block
          painted(x, y, z) = 1;
        }
  }
  for (std::size_t i = 0; i < d.volume(); ++i)
    if (occupancy[i] && !painted[i]) return false;  // missed a block
  return true;
}

}  // namespace tac::core
