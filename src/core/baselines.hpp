#ifndef TAC_CORE_BASELINES_HPP
#define TAC_CORE_BASELINES_HPP

/// \file baselines.hpp
/// \brief The paper's three comparison baselines (§4.1).
///
/// (1) naive 1D: each level's valid cells as one 1D stream;
/// (2) zMesh: a single 1D stream in level-interleaved traversal order —
///     for tree-structured AMR this walks the coarsest grid in raster
///     order and descends into refined children, which is how zMesh maps
///     points at the same geometric location next to each other
///     (Figure 16a); and
/// (3) the 3D baseline: up-sample every coarse level to the finest
///     resolution and compress the merged uniform grid in 3D.
///
/// Each baseline is a registered CompressorBackend (see core/backend.hpp);
/// the functions below are convenience wrappers over the registry.

#include "amr/dataset.hpp"
#include "common/bytes.hpp"
#include "core/tac.hpp"
#include "sz/config.hpp"

namespace tac::core {

/// Naive 1D baseline. Relative bounds resolve per level.
[[nodiscard]] CompressedAmr oned_compress(const amr::AmrDataset& ds,
                                          const sz::SzConfig& cfg);

/// zMesh baseline. Relative bounds resolve against the dataset-wide range
/// (the single stream spans all levels).
[[nodiscard]] CompressedAmr zmesh_compress(const amr::AmrDataset& ds,
                                           const sz::SzConfig& cfg);

/// 3D up-sampling baseline.
[[nodiscard]] CompressedAmr upsample3d_compress(const amr::AmrDataset& ds,
                                                const sz::SzConfig& cfg);

/// The zMesh traversal order as gather/scatter (exposed for tests and the
/// ordering-smoothness experiment of Figure 16).
[[nodiscard]] std::vector<double> zmesh_gather(const amr::AmrDataset& ds);
void zmesh_scatter(amr::AmrDataset& ds, std::span<const double> values);

}  // namespace tac::core

#endif  // TAC_CORE_BASELINES_HPP
