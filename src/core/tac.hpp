#ifndef TAC_CORE_TAC_HPP
#define TAC_CORE_TAC_HPP

/// \file tac.hpp
/// \brief TAC: level-wise 3D error-bounded compression of AMR data with
/// density-adaptive pre-processing (the paper's primary contribution).
///
/// Per level, a density filter picks the pre-process strategy
/// (§3.4):   density < T1 -> OpST,   T1 <= density < T2 -> AKDTree,
/// density >= T2 -> GSP;  the processed data then goes through the
/// SZ-style 3D compressor. Level-wise compression also permits per-level
/// error bounds (§4.5, the adaptive-error-bound analyses).

#include <optional>
#include <span>
#include <vector>

#include "amr/dataset.hpp"
#include "core/container.hpp"
#include "sz/config.hpp"

namespace tac::core {

struct TacConfig {
  /// Error bound applied to every level unless level_error_bounds is set.
  /// Relative bounds resolve against each level's valid-value range.
  sz::SzConfig sz{};
  /// Optional per-level absolute error bounds, finest first (the adaptive
  /// error bound mechanism). When non-empty, must have one entry per level.
  std::vector<double> level_error_bounds;
  /// Unit block side in cells.
  std::size_t block_size = 8;
  /// Density thresholds of the hybrid filter (fractions of non-empty unit
  /// blocks). Paper values: T1 = 50%, T2 = 60%.
  double t1 = 0.50;
  double t2 = 0.60;
  /// Overrides the density filter for every level (strategy experiments).
  std::optional<Strategy> force_strategy;
};

/// Per-level compression diagnostics.
struct LevelReport {
  Strategy strategy = Strategy::kOpST;
  double block_density = 0;      ///< non-empty unit-block fraction
  double abs_error_bound = 0;    ///< bound actually applied
  std::size_t valid_cells = 0;
  std::size_t compressed_bytes = 0;
  std::size_t n_sub_blocks = 0;  ///< extraction output (0 for GSP/ZF)
  std::size_t n_groups = 0;      ///< batched streams (1 for GSP/ZF)
  double preprocess_seconds = 0;
  double compress_seconds = 0;
};

struct CompressReport {
  Method method = Method::kTac;
  std::vector<LevelReport> levels;
  std::size_t original_bytes = 0;    ///< valid cells * sizeof(double)
  std::size_t compressed_bytes = 0;  ///< container size
  double seconds = 0;                ///< wall time incl. pre-processing
};

struct CompressedAmr {
  std::vector<std::uint8_t> bytes;
  CompressReport report;
};

/// Picks the strategy for one level density per the hybrid filter.
[[nodiscard]] Strategy select_strategy(double block_density, double t1,
                                       double t2);

/// Compresses a dataset with TAC (wrapper over the registered TAC
/// backend; see core/backend.hpp). Independent levels and per-group
/// sub-block streams compress concurrently, and the container is
/// byte-identical at any thread count.
[[nodiscard]] CompressedAmr tac_compress(const amr::AmrDataset& ds,
                                         const TacConfig& cfg);

/// Decompresses any container produced by this library: reads the common
/// header and dispatches to whichever CompressorBackend is registered for
/// the method tag. Unknown tags and truncated buffers raise descriptive
/// std::runtime_errors; v2 payload corruption raises ChecksumError.
[[nodiscard]] amr::AmrDataset decompress_any(
    std::span<const std::uint8_t> bytes);

/// Decompresses a single level of a container — the random-access path the
/// v2 payload index exists for. For per-level backends (TAC, 1D) only the
/// requested level's payload bytes are checksummed and decoded (O(level),
/// not O(dataset)); interleaved backends (zMesh, 3D) fall back to a full
/// decode. The result is byte-identical to `decompress_any(bytes).level(k)`.
[[nodiscard]] amr::AmrLevel decompress_level(
    std::span<const std::uint8_t> bytes, std::size_t level);

}  // namespace tac::core

#endif  // TAC_CORE_TAC_HPP
