#ifndef TAC_CORE_TAC_HPP
#define TAC_CORE_TAC_HPP

/// \file tac.hpp
/// \brief TAC: level-wise 3D error-bounded compression of AMR data with
/// density-adaptive pre-processing (the paper's primary contribution).
///
/// Per level, a density filter picks the pre-process strategy
/// (§3.4):   density < T1 -> OpST,   T1 <= density < T2 -> AKDTree,
/// density >= T2 -> GSP;  the processed data then goes through the
/// SZ-style 3D compressor. Level-wise compression also permits per-level
/// error bounds (§4.5, the adaptive-error-bound analyses).

#include <optional>
#include <span>
#include <vector>

#include "amr/dataset.hpp"
#include "core/container.hpp"
#include "sz/config.hpp"

namespace tac::core {

/// What the auto-selector optimizes when ranking candidate backends.
enum class SelectorObjective : std::uint8_t {
  /// Minimize trial compressed bytes — fully deterministic (trial sizes
  /// are byte-stable across thread counts and SIMD tiers), the default.
  kRatio = 0,
  /// Minimize trial encode wall time. Machine- and load-dependent: the
  /// per-level choices (and therefore the container bytes) may differ
  /// between runs.
  kThroughput = 1,
  /// Blend of both, each normalized by the best candidate's value;
  /// `SelectorConfig::balance` weights the ratio term. Inherits the
  /// throughput term's nondeterminism.
  kBalanced = 2,
};

/// Knobs of the per-level adaptive backend selector (core/selector.hpp),
/// consumed by the `auto` pseudo-backend.
struct SelectorConfig {
  /// Fraction of a level's occupied unit blocks trial-compressed per
  /// candidate. The default keeps total selection overhead under ~10% of
  /// compression time with the two built-in level-capable candidates.
  double sample_fraction = 0.025;
  /// Trial at least this many blocks (clamped to the occupied count) so
  /// tiny levels still get a meaningful sample.
  std::size_t min_sample_blocks = 4;
  /// Seed of the deterministic block-sampling sequence. Same input +
  /// same seed -> same samples -> same per-level choices (kRatio).
  std::uint64_t seed = 0;
  SelectorObjective objective = SelectorObjective::kRatio;
  /// kBalanced only: weight of the ratio term in [0, 1].
  double balance = 0.5;
  /// Restrict the candidate set (empty = every registered backend that
  /// supports per-level payloads). Methods without level support are
  /// ignored; an empty effective set is an error.
  std::vector<Method> candidates;
};

struct TacConfig {
  /// Error bound applied to every level unless level_error_bounds is set.
  /// Relative bounds resolve against each level's valid-value range.
  sz::SzConfig sz{};
  /// Optional per-level absolute error bounds, finest first (the adaptive
  /// error bound mechanism). When non-empty, must have one entry per level.
  std::vector<double> level_error_bounds;
  /// Unit block side in cells.
  std::size_t block_size = 8;
  /// Density thresholds of the hybrid filter (fractions of non-empty unit
  /// blocks). Paper values: T1 = 50%, T2 = 60%.
  double t1 = 0.50;
  double t2 = 0.60;
  /// Overrides the density filter for every level (strategy experiments).
  std::optional<Strategy> force_strategy;
  /// Auto-selector knobs; only read when compressing with Method::kAuto.
  SelectorConfig selector;
};

/// Per-level compression diagnostics.
struct LevelReport {
  Strategy strategy = Strategy::kOpST;
  Method method = Method::kTac;  ///< backend that encoded this level
  double block_density = 0;      ///< non-empty unit-block fraction
  double abs_error_bound = 0;    ///< bound actually applied
  std::size_t valid_cells = 0;
  std::size_t compressed_bytes = 0;
  std::size_t n_sub_blocks = 0;  ///< extraction output (0 for GSP/ZF)
  std::size_t n_groups = 0;      ///< batched streams (1 for GSP/ZF)
  double preprocess_seconds = 0;
  double compress_seconds = 0;
  double selection_seconds = 0;  ///< auto-selector trial time (0 if fixed)
};

struct CompressReport {
  Method method = Method::kTac;
  std::vector<LevelReport> levels;
  std::size_t original_bytes = 0;    ///< valid cells * sizeof(double)
  std::size_t compressed_bytes = 0;  ///< container size
  double seconds = 0;                ///< wall time incl. pre-processing
};

struct CompressedAmr {
  std::vector<std::uint8_t> bytes;
  CompressReport report;
};

/// Picks the strategy for one level density per the hybrid filter.
[[nodiscard]] Strategy select_strategy(double block_density, double t1,
                                       double t2);

/// Compresses a dataset with TAC (wrapper over the registered TAC
/// backend; see core/backend.hpp). Independent levels and per-group
/// sub-block streams compress concurrently, and the container is
/// byte-identical at any thread count.
[[nodiscard]] CompressedAmr tac_compress(const amr::AmrDataset& ds,
                                         const TacConfig& cfg);

/// Decompresses any container produced by this library: reads the common
/// header and dispatches to whichever CompressorBackend is registered for
/// the method tag. Unknown tags and truncated buffers raise descriptive
/// std::runtime_errors; v2 payload corruption raises ChecksumError.
[[nodiscard]] amr::AmrDataset decompress_any(
    std::span<const std::uint8_t> bytes);

/// Decompresses a single level of a container — the random-access path the
/// v2 payload index exists for. For per-level backends (TAC, 1D) only the
/// requested level's payload bytes are checksummed and decoded (O(level),
/// not O(dataset)); interleaved backends (zMesh, 3D) fall back to a full
/// decode. The result is byte-identical to `decompress_any(bytes).level(k)`.
[[nodiscard]] amr::AmrLevel decompress_level(
    std::span<const std::uint8_t> bytes, std::size_t level);

}  // namespace tac::core

#endif  // TAC_CORE_TAC_HPP
