#include "core/tac.hpp"

#include <optional>
#include <stdexcept>
#include <string>

#include "common/parallel.hpp"
#include "common/telemetry.hpp"
#include "common/timer.hpp"
#include "core/backend.hpp"
#include "core/extraction.hpp"
#include "core/gsp.hpp"
#include "sz/resolve.hpp"
#include "sz/sz.hpp"

namespace tac::core {
namespace {

/// Resolves the absolute bound for one level. Relative bounds use the
/// level's valid-value range so every stream of the level shares one
/// bound (a per-group range would silently vary the bound inside a level).
sz::SzConfig resolve_level_config(const TacConfig& cfg, std::size_t level,
                                  const amr::AmrLevel& lv) {
  if (!cfg.level_error_bounds.empty()) {
    sz::SzConfig out = cfg.sz;
    out.mode = sz::ErrorBoundMode::kAbsolute;
    out.error_bound = cfg.level_error_bounds.at(level);
    return out;
  }
  if (cfg.sz.mode == sz::ErrorBoundMode::kRelative) {
    const auto [lo, hi] = lv.valid_range();
    return sz::resolve_range_bound(cfg.sz, lo, hi);
  }
  return cfg.sz;
}

void serialize_groups(ByteWriter& w, const std::vector<BlockGroup>& groups,
                      const std::vector<std::vector<std::uint8_t>>& streams) {
  w.put_varint(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const BlockGroup& grp = groups[g];
    w.put_varint(grp.members.front().sx);
    w.put_varint(grp.members.front().sy);
    w.put_varint(grp.members.front().sz);
    w.put_varint(grp.members.size());
    for (const SubBlock& sb : grp.members) {
      w.put_varint(sb.bx);
      w.put_varint(sb.by);
      w.put_varint(sb.bz);
    }
    w.put_blob(streams[g]);
  }
}

struct DecodedGroups {
  std::vector<BlockGroup> groups;  ///< buffers filled from the streams
};

DecodedGroups deserialize_groups(
    ByteReader& r, std::size_t block_size,
    std::optional<lossless::CodecProfile> expected) {
  DecodedGroups out;
  const std::size_t ngroups = static_cast<std::size_t>(r.get_varint());
  out.groups.reserve(ngroups);
  for (std::size_t g = 0; g < ngroups; ++g) {
    BlockGroup grp;
    const std::size_t sx = static_cast<std::size_t>(r.get_varint());
    const std::size_t sy = static_cast<std::size_t>(r.get_varint());
    const std::size_t sz_ = static_cast<std::size_t>(r.get_varint());
    grp.block_cell_dims = {sx * block_size, sy * block_size,
                           sz_ * block_size};
    const std::size_t nmembers = static_cast<std::size_t>(r.get_varint());
    grp.members.reserve(nmembers);
    for (std::size_t m = 0; m < nmembers; ++m) {
      SubBlock sb;
      sb.bx = static_cast<std::size_t>(r.get_varint());
      sb.by = static_cast<std::size_t>(r.get_varint());
      sb.bz = static_cast<std::size_t>(r.get_varint());
      sb.sx = sx;
      sb.sy = sy;
      sb.sz = sz_;
      grp.members.push_back(sb);
    }
    const auto stream = r.get_blob();
    grp.owned = sz::decompress<double>(stream, expected);
    grp.buffer = grp.owned;
    const std::size_t expect = grp.block_cell_dims.volume() * nmembers;
    if (grp.buffer.size() != expect)
      throw std::runtime_error("tac: group payload size mismatch");
    out.groups.push_back(std::move(grp));
  }
  return out;
}

/// Zeroes every invalid cell — padded or residual values inside extracted
/// blocks must not leak into the reconstructed level.
void apply_mask(amr::AmrLevel& lv) {
  for (std::size_t i = 0; i < lv.data.size(); ++i)
    if (!lv.mask[i]) lv.data[i] = 0.0;
}

/// Decodes one level's payload (strategy tag, block size, streams) into
/// `lv`, whose mask is already filled from the header. Shared by the full
/// decode and the indexed single-level path. `expected` is the codec
/// profile the container's index declares for this payload (nullopt for
/// pre-v3 containers → lenient decode).
void decode_tac_level(ByteReader& r, amr::AmrLevel& lv,
                      std::optional<lossless::CodecProfile> expected) {
  TAC_SPAN("tac.level_decode");
  const auto strategy = static_cast<Strategy>(r.get<std::uint8_t>());
  const std::size_t block_size = static_cast<std::size_t>(r.get_varint());
  if (block_size == 0)
    throw std::runtime_error("tac: corrupt level payload (block size 0)");
  const BlockGrid grid(lv.dims(), block_size);
  switch (strategy) {
    case Strategy::kNaST:
    case Strategy::kOpST:
    case Strategy::kAKDTree: {
      const DecodedGroups dg = deserialize_groups(r, block_size, expected);
      scatter_groups(lv, grid, dg.groups);
      break;
    }
    case Strategy::kGSP:
    case Strategy::kZF: {
      const auto stream = r.get_blob();
      auto grid_data = sz::decompress<double>(stream, expected);
      if (grid_data.size() != lv.dims().volume())
        throw std::runtime_error("tac: level payload size mismatch");
      lv.data = Array3D<double>(lv.dims(), std::move(grid_data));
      break;
    }
    default:
      throw std::runtime_error("tac: unknown strategy tag");
  }
  apply_mask(lv);
}

/// Encodes one level standalone (strategy tag, block size, streams) —
/// the container chunk plus diagnostics. Levels are independent, so the
/// pipeline produces these concurrently and concatenates the chunks in
/// level order — byte-identical to a serial run at any thread count.
/// Taking the level (not the dataset) lets the auto-selector trial-encode
/// sampled stand-in levels through the same code path.
LevelPayload compress_level(const amr::AmrLevel& lv, std::size_t level,
                            const TacConfig& cfg) {
  TAC_SPAN("tac.level_compress");
  LevelPayload out;
  LevelReport& lr = out.report;
  lr.method = Method::kTac;
  lr.valid_cells = lv.valid_count();

  Timer pre;
  const BlockGrid grid(lv.dims(), cfg.block_size);
  const auto occ = block_occupancy(lv, grid);
  lr.block_density = occupancy_density(occ);
  lr.strategy = cfg.force_strategy.value_or(
      select_strategy(lr.block_density, cfg.t1, cfg.t2));

  const sz::SzConfig level_cfg = resolve_level_config(cfg, level, lv);

  ByteWriter w;
  w.put<std::uint8_t>(static_cast<std::uint8_t>(lr.strategy));
  w.put_varint(cfg.block_size);

  const std::size_t bytes_before = w.size();
  switch (lr.strategy) {
    case Strategy::kNaST:
    case Strategy::kOpST:
    case Strategy::kAKDTree: {
      std::vector<SubBlock> subs;
      {
        TAC_SPAN("tac.extract");
        if (lr.strategy == Strategy::kNaST)
          subs = nast_extract(occ);
        else if (lr.strategy == Strategy::kOpST)
          subs = opst_extract(occ);
        else
          subs = akdtree_extract(occ);
      }
      // Arena-backed group buffers: gathered, compressed and serialized
      // before the scope closes, so a steady-state level pipeline reuses
      // the same retained blocks instead of heap-allocating per group.
      ArenaScope scratch;
      auto groups = [&] {
        TAC_SPAN("tac.gather_groups");
        return gather_groups(lv, grid, subs, scratch);
      }();
      lr.preprocess_seconds = pre.seconds();
      lr.n_sub_blocks = subs.size();
      lr.n_groups = groups.size();

      Timer comp;
      // The per-extent group streams are independent: compress them
      // concurrently, then serialize in group order so the container
      // stays deterministic.
      std::vector<std::vector<std::uint8_t>> streams(groups.size());
      parallel_for(
          0, groups.size(),
          [&](std::size_t g) {
            streams[g] = sz::compress<double>(groups[g].buffer,
                                              groups[g].block_cell_dims,
                                              level_cfg,
                                              groups[g].members.size());
          },
          /*grain=*/1);
      if (!streams.empty())
        lr.abs_error_bound = sz::peek(streams.back()).abs_error_bound;
      lr.compress_seconds = comp.seconds();
      serialize_groups(w, groups, streams);
      break;
    }
    case Strategy::kGSP:
    case Strategy::kZF: {
      const Array3D<double> padded = lr.strategy == Strategy::kGSP
                                         ? gsp_pad(lv, grid, occ)
                                         : zf_pad(lv);
      lr.preprocess_seconds = pre.seconds();
      lr.n_groups = 1;

      Timer comp;
      const auto stream =
          sz::compress<double>(padded.span(), padded.dims(), level_cfg);
      lr.compress_seconds = comp.seconds();
      lr.abs_error_bound = sz::peek(stream).abs_error_bound;
      w.put_blob(stream);
      break;
    }
  }
  lr.compressed_bytes = w.size() - bytes_before;
  out.bytes = w.take();
  return out;
}

class TacBackend final : public CompressorBackend {
 public:
  [[nodiscard]] Method method() const override { return Method::kTac; }
  [[nodiscard]] const char* name() const override { return "TAC"; }

  [[nodiscard]] CompressedAmr compress(const amr::AmrDataset& ds,
                                       const TacConfig& cfg) const override {
    if (ds.num_levels() == 0)
      throw std::invalid_argument("tac_compress: empty dataset");
    if (!cfg.level_error_bounds.empty() &&
        cfg.level_error_bounds.size() != ds.num_levels())
      throw std::invalid_argument(
          "tac_compress: level_error_bounds has " +
          std::to_string(cfg.level_error_bounds.size()) +
          " entries but the dataset has " + std::to_string(ds.num_levels()) +
          " levels (need one bound per level, finest first)");
    if (cfg.block_size == 0)
      throw std::invalid_argument("tac_compress: block_size must be > 0");

    TAC_SPAN("tac.compress");
    Timer total;
    CompressReport report;
    report.method = Method::kTac;
    report.original_bytes = ds.original_bytes();

    // Level pipeline: levels are compressed concurrently into private
    // chunks and merged in level order, so the container and the report
    // are stable regardless of the worker count.
    std::vector<LevelPayload> levels(ds.num_levels());
    parallel_for(
        0, ds.num_levels(),
        [&](std::size_t l) { levels[l] = compress_level(ds.level(l), l, cfg); },
        /*grain=*/1);

    ByteWriter w;
    PayloadIndexBuilder index = write_common_header(
        w, Method::kTac, ds, ds.num_levels(), cfg.sz.profile);
    for (auto& lvl : levels) {
      index.begin_payload();
      w.put_bytes(lvl.bytes);
      index.end_payload();
      report.levels.push_back(lvl.report);
    }
    index.finish();

    CompressedAmr out;
    out.bytes = w.take();
    report.compressed_bytes = out.bytes.size();
    report.seconds = total.seconds();
    out.report = std::move(report);
    return out;
  }

  [[nodiscard]] amr::AmrDataset decompress(
      ByteReader& r, amr::AmrDataset skeleton,
      const CommonHeader& header) const override {
    for (std::size_t l = 0; l < skeleton.num_levels(); ++l)
      decode_tac_level(r, skeleton.level(l), payload_profile(header, l));
    return skeleton;
  }

  /// Native partial decompression: level payloads are written one per
  /// index entry, so only that entry's bytes are checksummed and decoded.
  [[nodiscard]] amr::AmrLevel decompress_level(
      std::span<const std::uint8_t> container, const CommonHeader& header,
      std::size_t level) const override {
    auto r = indexed_level_reader(container, header, level);
    if (!r)  // v1 container (no index): fall back to the full decode.
      return CompressorBackend::decompress_level(container, header, level);
    amr::AmrLevel lv = header.skeleton.level(level);
    decode_tac_level(*r, lv, payload_profile(header, level));
    return lv;
  }

  [[nodiscard]] bool supports_level_payloads() const override { return true; }

  [[nodiscard]] LevelPayload compress_level_payload(
      const amr::AmrLevel& lv, std::size_t level,
      const TacConfig& cfg) const override {
    return compress_level(lv, level, cfg);
  }

  void decompress_level_payload(
      ByteReader& r, amr::AmrLevel& lv,
      lossless::CodecProfile profile) const override {
    decode_tac_level(r, lv, profile);
  }
};

}  // namespace

namespace detail {
std::unique_ptr<CompressorBackend> make_tac_backend() {
  return std::make_unique<TacBackend>();
}
}  // namespace detail

Strategy select_strategy(double block_density, double t1, double t2) {
  if (block_density < t1) return Strategy::kOpST;
  if (block_density < t2) return Strategy::kAKDTree;
  return Strategy::kGSP;
}

CompressedAmr tac_compress(const amr::AmrDataset& ds, const TacConfig& cfg) {
  return backend_for(Method::kTac).compress(ds, cfg);
}

amr::AmrDataset decompress_any(std::span<const std::uint8_t> bytes) {
  TAC_SPAN_BYTES("core.decompress_any", bytes.size());
  ByteReader r(bytes);
  CommonHeader h = read_common_header(r);
  // v2+: every payload is about to be read — catch corruption up front as
  // a checksum error rather than a decoder misparse. No-op for v1.
  verify_payloads(bytes, h.index);
  // The header (still valid: only the skeleton is moved from) carries the
  // per-payload codec profiles the backend dispatches on.
  return backend_for(h.method).decompress(r, std::move(h.skeleton), h);
}

amr::AmrLevel decompress_level(std::span<const std::uint8_t> bytes,
                               std::size_t level) {
  ByteReader r(bytes);
  const CommonHeader h = read_common_header(r);
  return backend_for(h.method).decompress_level(bytes, h, level);
}

}  // namespace tac::core
