#ifndef TAC_CORE_CONTAINER_HPP
#define TAC_CORE_CONTAINER_HPP

/// \file container.hpp
/// \brief Self-describing container for compressed AMR datasets.
///
/// Every compression path (TAC, the 1D/zMesh baselines, the 3D up-sampling
/// baseline) emits the same outer header — method tag, field name,
/// refinement ratio and the losslessly-stored per-level masks (the AMR
/// structure metadata real snapshot formats keep exactly) — followed by a
/// method-specific payload. `decompress_any` dispatches on the tag via the
/// CompressorBackend registry (core/backend.hpp); headers with an unknown
/// tag, a bad magic, an unsupported format version or a truncated buffer
/// are rejected with descriptive errors.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "amr/dataset.hpp"
#include "common/bytes.hpp"

namespace tac::core {

enum class Method : std::uint8_t {
  kTac = 0,         ///< level-wise 3D with density-adaptive pre-processing
  kOneD = 1,        ///< naive 1D baseline: each level as a 1D stream
  kZMesh = 2,       ///< zMesh reordering baseline: interleaved 1D stream
  kUpsample3D = 3,  ///< 3D baseline: up-sample to uniform, one 3D stream
};

enum class Strategy : std::uint8_t {
  kNaST = 0,
  kOpST = 1,
  kAKDTree = 2,
  kGSP = 3,
  kZF = 4,
};

[[nodiscard]] const char* to_string(Method m);
[[nodiscard]] const char* to_string(Strategy s);

/// On-disk container format version. Bumped whenever the serialized layout
/// changes; readers reject containers written by a different version with
/// a descriptive error instead of misparsing them.
inline constexpr std::uint8_t kFormatVersion = 1;

/// Writes the outer header: method, field, ratio and level masks.
void write_common_header(ByteWriter& w, Method method,
                         const amr::AmrDataset& ds);

/// The decoded outer header: a structurally complete dataset whose level
/// data arrays are zero, ready for a method-specific payload to fill.
struct CommonHeader {
  Method method = Method::kTac;
  amr::AmrDataset skeleton;
};

[[nodiscard]] CommonHeader read_common_header(ByteReader& r);

/// Reads only the method tag (cheap sniffing).
[[nodiscard]] Method peek_method(std::span<const std::uint8_t> bytes);

}  // namespace tac::core

#endif  // TAC_CORE_CONTAINER_HPP
