#ifndef TAC_CORE_CONTAINER_HPP
#define TAC_CORE_CONTAINER_HPP

/// \file container.hpp
/// \brief Self-describing container for compressed AMR datasets.
///
/// Every compression path (TAC, the 1D/zMesh baselines, the 3D up-sampling
/// baseline) emits the same outer header — method tag, field name,
/// refinement ratio and the losslessly-stored per-level masks (the AMR
/// structure metadata real snapshot formats keep exactly) — followed by a
/// method-specific payload. `decompress_any` dispatches on the tag via the
/// CompressorBackend registry (core/backend.hpp); headers with an unknown
/// tag, a bad magic, an unsupported format version or a truncated buffer
/// are rejected with descriptive errors.
///
/// Format v2 adds a payload index between the header and the payloads:
/// every payload (one per level for TAC/1D, one for the interleaved
/// zMesh/3D streams) is described by an absolute byte offset, a length and
/// a CRC32 checksum. The index buys random access — `decompress_level`
/// reads one level in O(that level's payload) instead of O(dataset) — and
/// turns any single-byte payload corruption into a ChecksumError instead
/// of a misparse. v1 containers (no index) are still decoded.
///
/// Format v3 widens each index entry by a codec-profile byte
/// (lossless::CodecProfile): the lossless encoder family that produced
/// that payload's byte streams. Readers dispatch the legacy vs fast
/// decode paths on it and reject streams whose method bytes contradict
/// the declared profile. v1/v2 containers carry no profile and decode
/// leniently.
///
/// Format v4 widens each index entry by a selector byte: the Method tag
/// of the backend that produced that payload. Fixed backends stamp their
/// own tag; the `auto` pseudo-backend (core/selector.hpp) records the
/// per-level winner its trial selection picked, and its decoder
/// dispatches each payload to the recorded backend. v1-v3 containers
/// carry no selector and decode leniently as "fixed method" (the header
/// method tag owns every payload). The byte-level layout of every
/// version is specified normatively in docs/FORMAT.md.

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "amr/dataset.hpp"
#include "common/bytes.hpp"
#include "lossless/codec.hpp"

namespace tac::core {

enum class Method : std::uint8_t {
  kTac = 0,         ///< level-wise 3D with density-adaptive pre-processing
  kOneD = 1,        ///< naive 1D baseline: each level as a 1D stream
  kZMesh = 2,       ///< zMesh reordering baseline: interleaved 1D stream
  kUpsample3D = 3,  ///< 3D baseline: up-sample to uniform, one 3D stream
  kAuto = 4,        ///< adaptive selector: per-level winner among the
                    ///< level-capable backends (core/selector.hpp); each
                    ///< payload's backend is recorded in the v4 index
};

enum class Strategy : std::uint8_t {
  kNaST = 0,
  kOpST = 1,
  kAKDTree = 2,
  kGSP = 3,
  kZF = 4,
};

[[nodiscard]] const char* to_string(Method m);
[[nodiscard]] const char* to_string(Strategy s);

/// On-disk container format version. Bumped whenever the serialized layout
/// changes; readers accept [kMinFormatVersion, kFormatVersion] and reject
/// anything newer with a descriptive error instead of misparsing it.
inline constexpr std::uint8_t kFormatVersion = 4;
inline constexpr std::uint8_t kMinFormatVersion = 1;

/// A stored payload checksum failed — the container bytes were damaged
/// after writing (bit rot, truncated copy, transmission error).
class ChecksumError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A v4 selector byte names a method no backend is registered for —
/// either the container was written by a newer method set or the byte
/// was damaged (the index is not CRC-covered).
class SelectorError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Selector byte meaning "no per-payload method recorded": the payload
/// belongs to the backend named by the header's method tag. Reserved so
/// hand-written v4 indexes can stay method-agnostic; every library
/// writer stamps a concrete tag.
inline constexpr std::uint8_t kSelectorFixed = 0xFF;

/// One entry of the v2 payload index. Offsets are absolute from the first
/// container byte, so an entry can be read (and its payload fetched)
/// without parsing anything that precedes it.
struct PayloadEntry {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint32_t crc32 = 0;
  std::uint8_t profile = 0;   ///< lossless::CodecProfile value; only
                              ///< meaningful for v3+ container entries
  std::uint8_t selector = kSelectorFixed;  ///< Method tag of the backend
                                           ///< owning this payload (v4+)
};

/// Serialized size of one v2 index entry (offset u64 + length u64 + crc
/// u32, little-endian, fixed width so entries can be back-patched in
/// place). Still written by the snapshot codec's field index.
inline constexpr std::size_t kPayloadEntryBytes = 20;

/// v3 container entries append the codec-profile byte.
inline constexpr std::size_t kPayloadEntryV3Bytes = kPayloadEntryBytes + 1;

/// v4 container entries append the selector (per-payload method) byte.
inline constexpr std::size_t kPayloadEntryV4Bytes = kPayloadEntryV3Bytes + 1;

/// The single source of truth for the on-disk entry layout — every
/// writer back-patches and every reader parses through these helpers.
inline void patch_payload_entry(ByteWriter& w, std::size_t pos,
                                const PayloadEntry& e) {
  w.patch<std::uint64_t>(pos, e.offset);
  w.patch<std::uint64_t>(pos + 8, e.length);
  w.patch<std::uint32_t>(pos + 16, e.crc32);
}

inline void patch_payload_entry_v3(ByteWriter& w, std::size_t pos,
                                   const PayloadEntry& e) {
  patch_payload_entry(w, pos, e);
  w.patch<std::uint8_t>(pos + kPayloadEntryBytes, e.profile);
}

inline void patch_payload_entry_v4(ByteWriter& w, std::size_t pos,
                                   const PayloadEntry& e) {
  patch_payload_entry_v3(w, pos, e);
  w.patch<std::uint8_t>(pos + kPayloadEntryV3Bytes, e.selector);
}

[[nodiscard]] inline PayloadEntry read_payload_entry(ByteReader& r) {
  PayloadEntry e;
  e.offset = r.get<std::uint64_t>();
  e.length = r.get<std::uint64_t>();
  e.crc32 = r.get<std::uint32_t>();
  return e;
}

[[nodiscard]] inline PayloadEntry read_payload_entry_v3(ByteReader& r) {
  PayloadEntry e = read_payload_entry(r);
  e.profile = r.get<std::uint8_t>();
  return e;
}

[[nodiscard]] inline PayloadEntry read_payload_entry_v4(ByteReader& r) {
  PayloadEntry e = read_payload_entry_v3(r);
  e.selector = r.get<std::uint8_t>();
  return e;
}

/// The container's payload index: entry i covers payload i in write
/// order. TAC and the 1D baseline write one payload per level (entry i ==
/// level i); zMesh/3D write a single interleaved payload. Empty for v1
/// containers.
struct PayloadIndex {
  std::vector<PayloadEntry> entries;
};

/// Fills the reserved index slots of a v2 container as payloads are
/// written. `write_common_header` reserves `n_payloads` zeroed entries and
/// returns a builder; the backend brackets every payload it appends with
/// begin_payload()/end_payload(), which records the offset/length and
/// checksums the bytes in between. Sealing fewer or more payloads than
/// reserved is a logic error (caught by end_payload / finish).
class PayloadIndexBuilder {
 public:
  PayloadIndexBuilder() = default;

  /// Marks the writer's current position as the start of the next payload.
  void begin_payload();

  /// Seals the payload opened by the last begin_payload(): patches its
  /// index entry with {offset, length, crc32 of the written bytes} and
  /// stamps the selector byte with the container's own method tag.
  void end_payload();

  /// Like end_payload(), but records `chosen` as the payload's selector
  /// byte — the auto pseudo-backend's per-level winner.
  void end_payload(Method chosen);

  /// Verifies every reserved entry was sealed; throws std::logic_error
  /// otherwise. Called by backends after their last payload as a cheap
  /// format self-check.
  void finish() const;

 private:
  friend PayloadIndexBuilder write_common_header(ByteWriter& w, Method method,
                                                 const amr::AmrDataset& ds,
                                                 std::size_t n_payloads,
                                                 lossless::CodecProfile
                                                     profile);
  PayloadIndexBuilder(ByteWriter& w, std::size_t entries_pos,
                      std::size_t count, lossless::CodecProfile profile,
                      Method method)
      : w_(&w),
        entries_pos_(entries_pos),
        count_(count),
        profile_(profile),
        method_(method) {}

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  ByteWriter* w_ = nullptr;
  std::size_t entries_pos_ = 0;  ///< buffer offset of the first entry
  std::size_t count_ = 0;
  std::size_t sealed_ = 0;
  std::size_t open_begin_ = kNone;
  lossless::CodecProfile profile_ = lossless::CodecProfile::kLegacy;
  Method method_ = Method::kTac;  ///< default selector stamp
};

/// Writes the v4 outer header — method, field, ratio, level masks — and
/// reserves a payload index with `n_payloads` entries, each stamped with
/// `profile` (the lossless encoder family the backend will use for this
/// container's streams, including the mask blobs written here) and, at
/// end_payload time, a selector byte (the container method unless the
/// `end_payload(Method)` overload names a per-payload winner). The
/// returned builder must seal exactly `n_payloads` payloads appended
/// directly after the header.
[[nodiscard]] PayloadIndexBuilder write_common_header(
    ByteWriter& w, Method method, const amr::AmrDataset& ds,
    std::size_t n_payloads,
    lossless::CodecProfile profile = lossless::default_profile());

/// The decoded outer header: a structurally complete dataset whose level
/// data arrays are zero, ready for a method-specific payload to fill.
struct CommonHeader {
  Method method = Method::kTac;
  std::uint8_t version = kFormatVersion;
  amr::AmrDataset skeleton;
  PayloadIndex index;            ///< empty for v1 containers
  std::size_t index_offset = 0;  ///< where the index starts (v2) — equals
                                 ///< payload_offset for v1
  std::size_t payload_offset = 0;  ///< first byte after header + index
};

[[nodiscard]] CommonHeader read_common_header(ByteReader& r);

/// The codec profile declared for payload `i`, or nullopt when the
/// container predates per-payload profiles (v1/v2) — callers then decode
/// leniently via the method byte of each stream.
[[nodiscard]] std::optional<lossless::CodecProfile> payload_profile(
    const CommonHeader& header, std::size_t i);

/// The backend method recorded for payload `i`, or nullopt when the
/// container predates per-payload selectors (v1-v3) or the entry carries
/// the reserved kSelectorFixed byte — either way the payload belongs to
/// the header's method tag ("fixed method" lenient decode).
[[nodiscard]] std::optional<Method> payload_method(const CommonHeader& header,
                                                   std::size_t i);

/// Reads only the method tag (cheap sniffing). Throws on bad magic, but
/// also on an unsupported version or unregistered tag — use is_container
/// to ask only "does the magic match".
[[nodiscard]] Method peek_method(std::span<const std::uint8_t> bytes);

/// True when `bytes` starts with the container magic — cheap format
/// sniffing that, unlike peek_method, never rejects a damaged container.
[[nodiscard]] bool is_container(std::span<const std::uint8_t> bytes);

/// Verifies index entry `i` against the container bytes: the range must be
/// in bounds (std::runtime_error otherwise) and its CRC32 must match
/// (ChecksumError otherwise).
void verify_payload(std::span<const std::uint8_t> container,
                    const PayloadIndex& index, std::size_t i);

/// Verifies every entry of the index. No-op for an empty (v1) index.
void verify_payloads(std::span<const std::uint8_t> container,
                     const PayloadIndex& index);

/// Shared preamble for backends whose payloads map 1:1 to levels (TAC,
/// 1D): bounds- and checksum-checks entry `level` and returns a reader
/// over exactly that payload's bytes. Returns nullopt when the index does
/// not map to levels (a v1 container) — the caller should fall back to
/// CompressorBackend::decompress_level's full decode. Throws
/// std::out_of_range for a level the container does not have.
[[nodiscard]] std::optional<ByteReader> indexed_level_reader(
    std::span<const std::uint8_t> container, const CommonHeader& header,
    std::size_t level);

}  // namespace tac::core

#endif  // TAC_CORE_CONTAINER_HPP
