#include <stdexcept>

#include "amr/snapshot.hpp"
#include "common/bytes.hpp"
#include "core/adaptive.hpp"
#include "core/tac.hpp"

namespace tac::core {
namespace {
constexpr std::uint32_t kMagic = 0x53434154;  // "TACS"
constexpr std::uint8_t kVersion = 1;
}  // namespace

std::vector<std::uint8_t> compress_snapshot(const amr::Snapshot& s,
                                            const TacConfig& cfg) {
  if (s.fields.empty())
    throw std::invalid_argument("compress_snapshot: no fields");
  ByteWriter w;
  w.put<std::uint32_t>(kMagic);
  w.put<std::uint8_t>(kVersion);
  w.put_varint(s.fields.size());
  for (const auto& ds : s.fields) {
    const auto compressed = adaptive_compress(ds, cfg);
    w.put_blob(compressed.bytes);
  }
  return w.take();
}

amr::Snapshot decompress_snapshot(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  if (r.get<std::uint32_t>() != kMagic)
    throw std::runtime_error("snapshot container: bad magic");
  if (r.get<std::uint8_t>() != kVersion)
    throw std::runtime_error("snapshot container: unsupported version");
  amr::Snapshot s;
  const std::size_t n = static_cast<std::size_t>(r.get_varint());
  s.fields.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    s.fields.push_back(decompress_any(r.get_blob()));
  return s;
}

}  // namespace tac::core
