#include <cstring>
#include <stdexcept>
#include <string>

#include "amr/snapshot.hpp"
#include "common/bytes.hpp"
#include "common/crc32.hpp"
#include "common/parallel.hpp"
#include "common/telemetry.hpp"
#include "core/adaptive.hpp"
#include "core/backend.hpp"
#include "core/container.hpp"
#include "core/tac.hpp"

namespace tac::core {
namespace {
constexpr std::uint32_t kMagic = 0x53434154;  // "TACS"
constexpr std::uint8_t kVersion = 2;
constexpr std::uint8_t kMinVersion = 1;

/// Snapshot container v2 layout:
///   magic u32 | version u8 | nfields varint
///   nfields x { field name string | offset u64 | length u64 | crc32 u32 }
///   nfields x raw per-field container bytes (not length-prefixed — the
///             index is authoritative)
/// The index makes one field addressable without touching the others:
/// `decompress_field` seeks straight to its slice and checksums only it.
/// v1 snapshots (length-prefixed blobs, no index) are still decoded.
///
/// Codec profiles are per-field, not per-snapshot: each field blob is a
/// complete container whose own (v3) payload index records the profile
/// its streams were encoded under, so `compress_snapshot` threads
/// `cfg.sz.profile` through adaptive_compress and `decompress_snapshot`
/// dispatches via decompress_any — the snapshot index itself stays on
/// the 20-byte v2 entry layout.
struct ParsedSnapshot {
  std::uint8_t version = kVersion;
  std::vector<std::string> names;                       ///< v2 only
  std::vector<PayloadEntry> entries;                    ///< v2 only
  std::vector<std::span<const std::uint8_t>> blobs;     ///< per-field bytes
};

ParsedSnapshot parse_snapshot(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  if (r.remaining() < sizeof(std::uint32_t) + sizeof(std::uint8_t))
    throw std::runtime_error("snapshot container: truncated header");
  if (r.get<std::uint32_t>() != kMagic)
    throw std::runtime_error("snapshot container: bad magic");
  ParsedSnapshot out;
  out.version = r.get<std::uint8_t>();
  if (out.version < kMinVersion || out.version > kVersion)
    throw std::runtime_error(
        "snapshot container: unsupported version " +
        std::to_string(out.version) + " (this build reads versions " +
        std::to_string(kMinVersion) + ".." + std::to_string(kVersion) + ")");
  const std::size_t n = static_cast<std::size_t>(r.get_varint());
  // Bound the count before any reserve: a corrupt varint must surface as
  // a clean error, not a huge allocation. Every field costs at least one
  // blob-length byte (v1) or an empty name byte plus a fixed index entry
  // (v2).
  const std::size_t min_field_bytes =
      out.version == 1 ? 1 : 1 + kPayloadEntryBytes;
  if (n > r.remaining() / min_field_bytes)
    throw std::runtime_error(
        "snapshot container: claims " + std::to_string(n) +
        " fields but only " + std::to_string(r.remaining()) +
        " bytes remain");
  if (out.version == 1) {
    out.blobs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.blobs.push_back(r.get_blob());
    return out;
  }
  out.names.reserve(n);
  out.entries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.names.push_back(r.get_string());
    const PayloadEntry e = read_payload_entry(r);
    if (e.offset > bytes.size() || e.length > bytes.size() - e.offset)
      throw std::runtime_error(
          "snapshot container: field \"" + out.names.back() +
          "\" index entry exceeds the " + std::to_string(bytes.size()) +
          "-byte snapshot");
    out.entries.push_back(e);
  }
  out.blobs.reserve(n);
  for (const PayloadEntry& e : out.entries)
    out.blobs.push_back(bytes.subspan(static_cast<std::size_t>(e.offset),
                                      static_cast<std::size_t>(e.length)));
  return out;
}

void verify_field(const ParsedSnapshot& s, std::size_t i) {
  if (s.entries.empty()) return;  // v1: no checksums stored
  const std::uint32_t actual = crc32(s.blobs[i]);
  if (actual != s.entries[i].crc32)
    throw ChecksumError("snapshot container: field \"" + s.names[i] +
                        "\" checksum mismatch");
}

}  // namespace

namespace {

/// Shared writer for both compress_snapshot overloads: `encode_field`
/// maps one field dataset to its container bytes.
template <class EncodeField>
std::vector<std::uint8_t> write_snapshot(const amr::Snapshot& s,
                                         EncodeField&& encode_field) {
  if (s.fields.empty())
    throw std::invalid_argument("compress_snapshot: no fields");
  TAC_SPAN("snapshot.compress");
  TAC_COUNTER_ADD("snapshot.fields_written", s.fields.size());
  // Fields are independent containers: compress them concurrently and
  // serialize in field order so the snapshot bytes stay deterministic.
  std::vector<std::vector<std::uint8_t>> blobs(s.fields.size());
  parallel_for(
      0, s.fields.size(),
      [&](std::size_t i) {
        TAC_SPAN("snapshot.field_compress");
        blobs[i] = encode_field(s.fields[i]);
      },
      /*grain=*/1);
  ByteWriter w;
  w.put<std::uint32_t>(kMagic);
  w.put<std::uint8_t>(kVersion);
  w.put_varint(s.fields.size());
  std::vector<std::size_t> entry_pos;
  entry_pos.reserve(s.fields.size());
  for (const auto& field : s.fields) {
    w.put_string(field.field_name());
    entry_pos.push_back(w.reserve(kPayloadEntryBytes));
  }
  for (std::size_t i = 0; i < blobs.size(); ++i) {
    PayloadEntry e;
    e.offset = w.size();
    e.length = blobs[i].size();
    e.crc32 = crc32(blobs[i]);
    w.put_bytes(blobs[i]);
    patch_payload_entry(w, entry_pos[i], e);
  }
  return w.take();
}

}  // namespace

std::vector<std::uint8_t> compress_snapshot(const amr::Snapshot& s,
                                            const TacConfig& cfg) {
  return write_snapshot(s, [&](const amr::AmrDataset& field) {
    return adaptive_compress(field, cfg).bytes;
  });
}

std::vector<std::uint8_t> compress_snapshot(const amr::Snapshot& s,
                                            const TacConfig& cfg,
                                            Method method) {
  const CompressorBackend& backend = backend_for(method);
  return write_snapshot(s, [&](const amr::AmrDataset& field) {
    return backend.compress(field, cfg).bytes;
  });
}

amr::Snapshot decompress_snapshot(std::span<const std::uint8_t> bytes) {
  TAC_SPAN_BYTES("snapshot.decompress", bytes.size());
  const ParsedSnapshot parsed = parse_snapshot(bytes);
  amr::Snapshot s;
  s.fields.resize(parsed.blobs.size());
  TAC_COUNTER_ADD("snapshot.fields_read", parsed.blobs.size());
  // Indexed fields are independent slices: verify and decode them through
  // the same parallel pipeline the compressor uses.
  parallel_for(
      0, parsed.blobs.size(),
      [&](std::size_t i) {
        TAC_SPAN("snapshot.field_decompress");
        verify_field(parsed, i);
        s.fields[i] = decompress_any(parsed.blobs[i]);
      },
      /*grain=*/1);
  return s;
}

std::vector<std::string> snapshot_field_names(
    std::span<const std::uint8_t> bytes) {
  const ParsedSnapshot parsed = parse_snapshot(bytes);
  if (parsed.version >= 2) return parsed.names;
  // v1 stores no name index: the names live in each field's container
  // header.
  std::vector<std::string> names;
  names.reserve(parsed.blobs.size());
  for (const auto blob : parsed.blobs) {
    ByteReader r(blob);
    names.push_back(read_common_header(r).skeleton.field_name());
  }
  return names;
}

std::span<const std::uint8_t> snapshot_field_bytes(
    std::span<const std::uint8_t> bytes, const std::string& name) {
  const ParsedSnapshot parsed = parse_snapshot(bytes);
  if (parsed.version >= 2) {
    for (std::size_t i = 0; i < parsed.names.size(); ++i) {
      if (parsed.names[i] != name) continue;
      verify_field(parsed, i);
      return parsed.blobs[i];
    }
  } else {
    for (const auto blob : parsed.blobs) {
      ByteReader r(blob);
      if (read_common_header(r).skeleton.field_name() == name) return blob;
    }
  }
  throw std::runtime_error("snapshot container: no field named \"" + name +
                           "\"");
}

amr::AmrDataset decompress_field(std::span<const std::uint8_t> bytes,
                                 const std::string& name) {
  return decompress_any(snapshot_field_bytes(bytes, name));
}

bool is_compressed_snapshot(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < sizeof(std::uint32_t)) return false;
  std::uint32_t magic;
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  return magic == kMagic;
}

std::vector<SnapshotFieldInfo> snapshot_fields(
    std::span<const std::uint8_t> bytes) {
  const ParsedSnapshot parsed = parse_snapshot(bytes);
  std::vector<SnapshotFieldInfo> out;
  out.reserve(parsed.blobs.size());
  for (std::size_t i = 0; i < parsed.blobs.size(); ++i) {
    SnapshotFieldInfo info;
    if (parsed.version >= 2) {
      info.name = parsed.names[i];
      info.checksum_ok = crc32(parsed.blobs[i]) == parsed.entries[i].crc32;
    } else {
      ByteReader r(parsed.blobs[i]);
      info.name = read_common_header(r).skeleton.field_name();
    }
    info.bytes = parsed.blobs[i];
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace tac::core
