#include <stdexcept>

#include "amr/snapshot.hpp"
#include "common/bytes.hpp"
#include "common/parallel.hpp"
#include "core/adaptive.hpp"
#include "core/tac.hpp"

namespace tac::core {
namespace {
constexpr std::uint32_t kMagic = 0x53434154;  // "TACS"
constexpr std::uint8_t kVersion = 1;
}  // namespace

std::vector<std::uint8_t> compress_snapshot(const amr::Snapshot& s,
                                            const TacConfig& cfg) {
  if (s.fields.empty())
    throw std::invalid_argument("compress_snapshot: no fields");
  // Fields are independent containers: compress them concurrently and
  // serialize in field order so the snapshot bytes stay deterministic.
  std::vector<std::vector<std::uint8_t>> blobs(s.fields.size());
  parallel_for(
      0, s.fields.size(),
      [&](std::size_t i) {
        blobs[i] = adaptive_compress(s.fields[i], cfg).bytes;
      },
      /*grain=*/1);
  ByteWriter w;
  w.put<std::uint32_t>(kMagic);
  w.put<std::uint8_t>(kVersion);
  w.put_varint(s.fields.size());
  for (const auto& blob : blobs) w.put_blob(blob);
  return w.take();
}

amr::Snapshot decompress_snapshot(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  if (r.get<std::uint32_t>() != kMagic)
    throw std::runtime_error("snapshot container: bad magic");
  if (r.get<std::uint8_t>() != kVersion)
    throw std::runtime_error("snapshot container: unsupported version");
  amr::Snapshot s;
  const std::size_t n = static_cast<std::size_t>(r.get_varint());
  s.fields.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    s.fields.push_back(decompress_any(r.get_blob()));
  return s;
}

}  // namespace tac::core
