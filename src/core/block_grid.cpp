#include "core/block_grid.hpp"

#include "common/parallel.hpp"

namespace tac::core {

Array3D<std::uint8_t> block_occupancy(const amr::AmrLevel& level,
                                      const BlockGrid& grid) {
  const Dims3 bd = grid.block_dims();
  Array3D<std::uint8_t> occ(bd, 0);
  parallel_for(0, bd.nz, [&](std::size_t bz) {
    for (std::size_t by = 0; by < bd.ny; ++by)
      for (std::size_t bx = 0; bx < bd.nx; ++bx) {
        const Box3 box = grid.block_box(bx, by, bz);
        std::uint8_t any = 0;
        for (std::size_t z = box.z0; z < box.z1 && !any; ++z)
          for (std::size_t y = box.y0; y < box.y1 && !any; ++y)
            for (std::size_t x = box.x0; x < box.x1; ++x)
              if (level.mask(x, y, z)) {
                any = 1;
                break;
              }
        occ(bx, by, bz) = any;
      }
  }, /*grain=*/1);
  return occ;
}

double occupancy_density(const Array3D<std::uint8_t>& occ) {
  if (occ.size() == 0) return 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < occ.size(); ++i) n += occ[i] ? 1 : 0;
  return static_cast<double>(n) / static_cast<double>(occ.size());
}

}  // namespace tac::core
