#ifndef TAC_CORE_ADAPTIVE_HPP
#define TAC_CORE_ADAPTIVE_HPP

/// \file adaptive.hpp
/// \brief Second-stage method selection and per-level error-bound helpers.
///
/// §4.4 of the paper: when the finest level is very dense the dataset is
/// close to uniform resolution — up-sampling adds little redundancy and a
/// single 3D stream exploits more spatial context than level-wise
/// compression — so TAC falls back to the 3D baseline when the finest
/// level's density reaches T2. §4.5: level-wise compression lets the error
/// bound differ per level; helpers build the fine:coarse ratio ladders the
/// paper tunes for power-spectrum (3:1) and halo-finder (2:1) quality.

#include "amr/dataset.hpp"
#include "core/tac.hpp"

namespace tac::core {

/// Chooses kUpsample3D when the finest level's unit-block density is at
/// least cfg.t2, kTac otherwise.
[[nodiscard]] Method adaptive_select(const amr::AmrDataset& ds,
                                     const TacConfig& cfg);

/// Compresses with the adaptively selected method.
[[nodiscard]] CompressedAmr adaptive_compress(const amr::AmrDataset& ds,
                                              const TacConfig& cfg);

/// Per-level absolute bounds from a fine:coarse ratio: level 0 (finest)
/// gets `finest_eb`, each coarser level gets the previous bound divided by
/// `fine_to_coarse`. A ratio of 3 with 2 levels gives the paper's 3:1.
[[nodiscard]] std::vector<double> ratio_error_bounds(double finest_eb,
                                                     double fine_to_coarse,
                                                     std::size_t num_levels);

}  // namespace tac::core

#endif  // TAC_CORE_ADAPTIVE_HPP
