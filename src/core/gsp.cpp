#include "core/gsp.hpp"

#include "common/parallel.hpp"

namespace tac::core {
namespace {

/// One face's ghost contribution to an empty block: the neighbour's
/// boundary slice, averaged over its first `y_slices` planes cell by cell
/// (Algorithm 3 line 4: "pad slice = avg(first y slices of n_j next to
/// b_i)"). Cells of the slice that are invalid in the neighbour fall back
/// to the slice's valid mean so steep fields never pad with structural
/// zeros.
struct FaceSlice {
  // Indexed by the two in-face axes (u, v) of the *empty block's* box.
  std::vector<double> values;
  std::size_t nu = 0, nv = 0;
  bool any_valid = false;
};

/// Extracts the ghost slice of neighbour block `nb` facing the empty block
/// along `axis`; `dir=+1` means the neighbour sits at higher coordinates
/// (its low boundary faces us). The slice is sampled on the empty block's
/// face extents (eu, ev).
FaceSlice face_slice(const amr::AmrLevel& level, const BlockGrid& grid,
                     std::size_t nbx, std::size_t nby, std::size_t nbz,
                     int axis, int dir, std::size_t eu, std::size_t ev,
                     std::size_t y_slices) {
  const Box3 nbox = grid.block_box(nbx, nby, nbz);
  FaceSlice out;
  out.nu = eu;
  out.nv = ev;
  out.values.assign(eu * ev, 0.0);
  std::vector<std::size_t> counts(eu * ev, 0);

  // In-face axes: the two axes other than `axis`, in (x,y,z) order.
  const int ua = axis == 0 ? 1 : 0;
  const int va = axis == 2 ? 1 : 2;

  const std::size_t lo[3] = {nbox.x0, nbox.y0, nbox.z0};
  const std::size_t hi[3] = {nbox.x1, nbox.y1, nbox.z1};
  const std::size_t depth = std::min(y_slices, hi[axis] - lo[axis]);

  double slice_sum = 0;
  std::size_t slice_count = 0;
  for (std::size_t t = 0; t < depth; ++t) {
    // dir > 0: neighbour above us, walk its low planes; else its high.
    const std::size_t plane =
        dir > 0 ? lo[axis] + t : hi[axis] - 1 - t;
    std::size_t c[3];
    c[axis] = plane;
    for (std::size_t u = 0; u < std::min(eu, hi[ua] - lo[ua]); ++u)
      for (std::size_t v = 0; v < std::min(ev, hi[va] - lo[va]); ++v) {
        c[ua] = lo[ua] + u;
        c[va] = lo[va] + v;
        if (!level.mask(c[0], c[1], c[2])) continue;
        const double val = level.data(c[0], c[1], c[2]);
        out.values[u * ev + v] += val;
        ++counts[u * ev + v];
        slice_sum += val;
        ++slice_count;
      }
  }
  if (slice_count == 0) return out;  // neighbour face entirely invalid
  out.any_valid = true;
  const double mean = slice_sum / static_cast<double>(slice_count);
  for (std::size_t i = 0; i < out.values.size(); ++i)
    out.values[i] = counts[i] > 0
                        ? out.values[i] / static_cast<double>(counts[i])
                        : mean;
  return out;
}

}  // namespace

Array3D<double> gsp_pad(const amr::AmrLevel& level, const BlockGrid& grid,
                        const Array3D<std::uint8_t>& occupancy) {
  Array3D<double> out = level.data;
  const Dims3 bd = grid.block_dims();
  const std::size_t y_slices = 1;  // Algorithm 3 parameter y

  parallel_for(0, bd.nz, [&](std::size_t bz) {
    for (std::size_t by = 0; by < bd.ny; ++by)
      for (std::size_t bx = 0; bx < bd.nx; ++bx) {
        if (occupancy(bx, by, bz)) continue;
        const Box3 box = grid.block_box(bx, by, bz);
        const Dims3 ext = box.extents();
        // Per-cell accumulation: each non-empty face neighbour extends its
        // ghost slice through the block; cells reached by several faces
        // average them (the paper's /2 edge and /3 corner overlap rule is
        // exactly this mean for full-depth pads).
        std::vector<double> acc(ext.volume(), 0.0);
        std::vector<std::uint8_t> cnt(ext.volume(), 0);

        const std::ptrdiff_t coords[3] = {static_cast<std::ptrdiff_t>(bx),
                                          static_cast<std::ptrdiff_t>(by),
                                          static_cast<std::ptrdiff_t>(bz)};
        const std::size_t bext[3] = {bd.nx, bd.ny, bd.nz};
        const std::size_t cext[3] = {ext.nx, ext.ny, ext.nz};
        for (int axis = 0; axis < 3; ++axis) {
          const int ua = axis == 0 ? 1 : 0;
          const int va = axis == 2 ? 1 : 2;
          for (int dir = -1; dir <= 1; dir += 2) {
            const std::ptrdiff_t n = coords[axis] + dir;
            if (n < 0 || static_cast<std::size_t>(n) >= bext[axis]) continue;
            std::size_t nb[3] = {bx, by, bz};
            nb[axis] = static_cast<std::size_t>(n);
            if (!occupancy(nb[0], nb[1], nb[2])) continue;
            const FaceSlice slice =
                face_slice(level, grid, nb[0], nb[1], nb[2], axis, dir,
                           cext[ua], cext[va], y_slices);
            if (!slice.any_valid) continue;
            // Extend the slice through the full block depth (Algorithm 3
            // parameter x = block size).
            for (std::size_t t = 0; t < cext[axis]; ++t)
              for (std::size_t u = 0; u < cext[ua]; ++u)
                for (std::size_t v = 0; v < cext[va]; ++v) {
                  std::size_t c[3];
                  c[axis] = t;
                  c[ua] = u;
                  c[va] = v;
                  const std::size_t idx = ext.index(c[0], c[1], c[2]);
                  acc[idx] += slice.values[u * slice.nv + v];
                  ++cnt[idx];
                }
          }
        }
        for (std::size_t z = 0; z < ext.nz; ++z)
          for (std::size_t y = 0; y < ext.ny; ++y)
            for (std::size_t x = 0; x < ext.nx; ++x) {
              const std::size_t idx = ext.index(x, y, z);
              if (cnt[idx] > 0)
                out(box.x0 + x, box.y0 + y, box.z0 + z) =
                    acc[idx] / static_cast<double>(cnt[idx]);
            }
      }
  }, /*grain=*/1);
  return out;
}

Array3D<double> zf_pad(const amr::AmrLevel& level) { return level.data; }

}  // namespace tac::core
