#include "amr/amr_io.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "common/bytes.hpp"
#include "lossless/codec.hpp"

namespace tac::amr {
namespace {
constexpr std::uint32_t kMagic = 0x524D4154;  // "TAMR"
constexpr std::uint8_t kVersion = 1;
}  // namespace

std::vector<std::uint8_t> pack_mask(std::span<const std::uint8_t> mask) {
  std::vector<std::uint8_t> out((mask.size() + 7) / 8, 0);
  std::size_t i = 0;
  if constexpr (std::endian::native == std::endian::little) {
    // Eight mask bytes at a time: collapse each byte to its "nonzero"
    // bit, then gather the eight indicator bits (LSB-first, matching the
    // scalar loop) with one multiply. Bit-identical to the byte loop.
    constexpr std::uint64_t kLow7 = 0x7f7f7f7f7f7f7f7fULL;
    constexpr std::uint64_t kOnes = 0x0101010101010101ULL;
    constexpr std::uint64_t kGather = 0x0102040810204080ULL;
    for (; i + 8 <= mask.size(); i += 8) {
      std::uint64_t v;
      std::memcpy(&v, mask.data() + i, 8);
      const std::uint64_t nonzero = (((v & kLow7) + kLow7) | v) >> 7 & kOnes;
      out[i / 8] = static_cast<std::uint8_t>((nonzero * kGather) >> 56);
    }
  }
  for (; i < mask.size(); ++i)
    if (mask[i]) out[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  return out;
}

std::vector<std::uint8_t> unpack_mask(std::span<const std::uint8_t> packed,
                                      std::size_t count) {
  if (packed.size() < (count + 7) / 8)
    throw std::runtime_error("unpack_mask: truncated mask");
  std::vector<std::uint8_t> out(count);
  std::size_t i = 0;
  if constexpr (std::endian::native == std::endian::little) {
    // Spread one packed byte to eight 0/1 bytes: replicate it, isolate
    // bit i in byte i, then force each nonzero byte to exactly 1.
    constexpr std::uint64_t kOnes = 0x0101010101010101ULL;
    constexpr std::uint64_t kSelect = 0x8040201008040201ULL;
    constexpr std::uint64_t kLow7 = 0x7f7f7f7f7f7f7f7fULL;
    for (; i + 8 <= count; i += 8) {
      const std::uint64_t m = (packed[i / 8] * kOnes) & kSelect;
      const std::uint64_t bits = ((m + kLow7) >> 7) & kOnes;
      std::memcpy(out.data() + i, &bits, 8);
    }
  }
  for (; i < count; ++i) out[i] = (packed[i / 8] >> (i % 8)) & 1u;
  return out;
}

std::vector<std::uint8_t> dataset_to_bytes(const AmrDataset& ds) {
  ByteWriter w;
  w.put<std::uint32_t>(kMagic);
  w.put<std::uint8_t>(kVersion);
  w.put_string(ds.field_name());
  w.put_varint(static_cast<std::uint64_t>(ds.refinement_ratio()));
  w.put_varint(ds.num_levels());
  for (std::size_t l = 0; l < ds.num_levels(); ++l) {
    const AmrLevel& lv = ds.level(l);
    w.put_varint(lv.dims().nx);
    w.put_varint(lv.dims().ny);
    w.put_varint(lv.dims().nz);
    const auto packed = pack_mask(lv.mask.span());
    w.put_blob(lossless::compress(packed));
    const auto values = lv.gather_valid();
    std::span<const std::uint8_t> value_bytes{
        reinterpret_cast<const std::uint8_t*>(values.data()),
        values.size() * sizeof(double)};
    w.put_blob(value_bytes);
  }
  return w.take();
}

AmrDataset dataset_from_bytes(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  if (r.get<std::uint32_t>() != kMagic)
    throw std::runtime_error("amr_io: bad magic");
  if (r.get<std::uint8_t>() != kVersion)
    throw std::runtime_error("amr_io: unsupported version");
  const std::string name = r.get_string();
  const int ratio = static_cast<int>(r.get_varint());
  const std::size_t nlevels = static_cast<std::size_t>(r.get_varint());
  std::vector<AmrLevel> levels;
  levels.reserve(nlevels);
  for (std::size_t l = 0; l < nlevels; ++l) {
    Dims3 d;
    d.nx = static_cast<std::size_t>(r.get_varint());
    d.ny = static_cast<std::size_t>(r.get_varint());
    d.nz = static_cast<std::size_t>(r.get_varint());
    AmrLevel lv(d);
    const auto packed = lossless::decompress(r.get_blob());
    const auto mask = unpack_mask(packed, d.volume());
    std::copy(mask.begin(), mask.end(), lv.mask.data());
    const auto value_bytes = r.get_blob();
    if (value_bytes.size() % sizeof(double) != 0)
      throw std::runtime_error("amr_io: bad value payload");
    std::vector<double> values(value_bytes.size() / sizeof(double));
    if (!value_bytes.empty())
      std::memcpy(values.data(), value_bytes.data(), value_bytes.size());
    lv.scatter_valid(values);
    levels.push_back(std::move(lv));
  }
  return AmrDataset(name, std::move(levels), ratio);
}

void save_dataset(const std::string& path, const AmrDataset& ds) {
  const auto bytes = dataset_to_bytes(ds);
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("save_dataset: cannot open " + path);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!f) throw std::runtime_error("save_dataset: write failed " + path);
}

AmrDataset load_dataset(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) throw std::runtime_error("load_dataset: cannot open " + path);
  const auto size = static_cast<std::size_t>(f.tellg());
  f.seekg(0);
  std::vector<std::uint8_t> bytes(size);
  f.read(reinterpret_cast<char*>(bytes.data()),
         static_cast<std::streamsize>(size));
  if (!f) throw std::runtime_error("load_dataset: read failed " + path);
  return dataset_from_bytes(bytes);
}

}  // namespace tac::amr
