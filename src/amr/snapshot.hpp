#ifndef TAC_AMR_SNAPSHOT_HPP
#define TAC_AMR_SNAPSHOT_HPP

/// \file snapshot.hpp
/// \brief Multi-field timestep snapshots.
///
/// AMR codes dump every field of a timestep together (Nyx: six fields on
/// one grid hierarchy). A Snapshot bundles the per-field datasets, and the
/// compressed form stores the shared refinement structure once plus one
/// method-tagged payload per field.

#include <string>
#include <vector>

#include "amr/dataset.hpp"
#include "sz/config.hpp"

namespace tac::amr {

struct Snapshot {
  std::vector<AmrDataset> fields;

  /// Empty string if all fields share identical level structure (masks
  /// and extents); otherwise a description of the first mismatch.
  [[nodiscard]] std::string validate_shared_structure() const;
};

[[nodiscard]] std::vector<std::uint8_t> snapshot_to_bytes(const Snapshot& s);
[[nodiscard]] Snapshot snapshot_from_bytes(
    std::span<const std::uint8_t> bytes);

void save_snapshot(const std::string& path, const Snapshot& s);
[[nodiscard]] Snapshot load_snapshot(const std::string& path);

}  // namespace tac::amr

namespace tac::core {
struct TacConfig;  // forward; defined in core/tac.hpp

/// Compresses every field of a snapshot with the adaptively selected
/// method (TAC or 3D baseline, §4.4) under one configuration. The
/// container is self-describing; decompress with `decompress_snapshot`.
[[nodiscard]] std::vector<std::uint8_t> compress_snapshot(
    const amr::Snapshot& s, const TacConfig& cfg);

[[nodiscard]] amr::Snapshot decompress_snapshot(
    std::span<const std::uint8_t> bytes);
}  // namespace tac::core

#endif  // TAC_AMR_SNAPSHOT_HPP
