#ifndef TAC_AMR_SNAPSHOT_HPP
#define TAC_AMR_SNAPSHOT_HPP

/// \file snapshot.hpp
/// \brief Multi-field timestep snapshots.
///
/// AMR codes dump every field of a timestep together (Nyx: six fields on
/// one grid hierarchy). A Snapshot bundles the per-field datasets, and the
/// compressed form stores the shared refinement structure once plus one
/// method-tagged payload per field.

#include <string>
#include <vector>

#include "amr/dataset.hpp"
#include "sz/config.hpp"

namespace tac::amr {

struct Snapshot {
  std::vector<AmrDataset> fields;

  /// Empty string if all fields share identical level structure (masks
  /// and extents); otherwise a description of the first mismatch.
  [[nodiscard]] std::string validate_shared_structure() const;
};

[[nodiscard]] std::vector<std::uint8_t> snapshot_to_bytes(const Snapshot& s);
[[nodiscard]] Snapshot snapshot_from_bytes(
    std::span<const std::uint8_t> bytes);

void save_snapshot(const std::string& path, const Snapshot& s);
[[nodiscard]] Snapshot load_snapshot(const std::string& path);

}  // namespace tac::amr

namespace tac::core {
struct TacConfig;                       // forward; defined in core/tac.hpp
enum class Method : std::uint8_t;       // forward; defined in core/container.hpp

/// Compresses every field of a snapshot with the adaptively selected
/// method (TAC or 3D baseline, §4.4) under one configuration. The
/// container is self-describing; decompress with `decompress_snapshot`.
[[nodiscard]] std::vector<std::uint8_t> compress_snapshot(
    const amr::Snapshot& s, const TacConfig& cfg);

/// Like the two-argument overload, but compresses every field with the
/// named registered backend instead of the §4.4 density rule. With
/// Method::kAuto each field runs the per-level trial selection
/// independently (core/selector.hpp), so the snapshot records per-field,
/// per-level winners in each field container's v4 index.
[[nodiscard]] std::vector<std::uint8_t> compress_snapshot(
    const amr::Snapshot& s, const TacConfig& cfg, Method method);

[[nodiscard]] amr::Snapshot decompress_snapshot(
    std::span<const std::uint8_t> bytes);

/// Decompresses one field of a compressed snapshot by name. v2 snapshots
/// carry a per-field index, so only that field's bytes are checksummed and
/// decoded — O(field), not O(snapshot); v1 snapshots are scanned. Throws
/// std::runtime_error when no field has that name, core::ChecksumError on
/// payload corruption.
[[nodiscard]] amr::AmrDataset decompress_field(
    std::span<const std::uint8_t> bytes, const std::string& name);

/// The raw container bytes of one field inside a compressed snapshot
/// (checksum-verified for v2). The span aliases `bytes` — it is valid only
/// while the snapshot buffer lives. Feed it to decompress_any /
/// decompress_level for random access inside the field.
[[nodiscard]] std::span<const std::uint8_t> snapshot_field_bytes(
    std::span<const std::uint8_t> bytes, const std::string& name);

/// Field names of a compressed snapshot, in storage order (from the v2
/// index, or the per-field headers for v1).
[[nodiscard]] std::vector<std::string> snapshot_field_names(
    std::span<const std::uint8_t> bytes);

/// True when `bytes` starts with the compressed-snapshot magic — cheap
/// format sniffing for tools that accept both single-field containers
/// and snapshots.
[[nodiscard]] bool is_compressed_snapshot(
    std::span<const std::uint8_t> bytes);

/// One field of a compressed snapshot as seen by a single index parse:
/// the stored name, the raw container slice (aliases the snapshot
/// buffer), and whether its stored checksum matches (always true for v1,
/// which stores none). Unlike snapshot_field_bytes this never throws on a
/// bad checksum, so tools can report per-field status.
struct SnapshotFieldInfo {
  std::string name;
  std::span<const std::uint8_t> bytes;
  bool checksum_ok = true;
};

/// All fields of a compressed snapshot from one parse — O(snapshot)
/// total, where per-name lookups through snapshot_field_bytes would be
/// O(fields^2).
[[nodiscard]] std::vector<SnapshotFieldInfo> snapshot_fields(
    std::span<const std::uint8_t> bytes);
}  // namespace tac::core

#endif  // TAC_AMR_SNAPSHOT_HPP
