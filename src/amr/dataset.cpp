#include "amr/dataset.hpp"

#include <sstream>
#include <stdexcept>

namespace tac::amr {

std::vector<double> AmrLevel::gather_valid() const {
  std::vector<double> out;
  out.reserve(valid_count());
  for (std::size_t i = 0; i < data.size(); ++i)
    if (mask[i]) out.push_back(data[i]);
  return out;
}

std::size_t AmrLevel::gather_valid_into(std::span<double> out) const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < data.size(); ++i)
    if (mask[i]) out[n++] = data[i];
  return n;
}

void AmrLevel::scatter_valid(std::span<const double> values) {
  std::size_t vi = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (mask[i]) {
      if (vi >= values.size())
        throw std::invalid_argument("scatter_valid: too few values");
      data[i] = values[vi++];
    } else {
      data[i] = 0.0;
    }
  }
  if (vi != values.size())
    throw std::invalid_argument("scatter_valid: too many values");
}

std::pair<double, double> AmrLevel::valid_range() const {
  bool any = false;
  double lo = 0, hi = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (!mask[i]) continue;
    if (!any) {
      lo = hi = data[i];
      any = true;
    } else {
      lo = std::min(lo, data[i]);
      hi = std::max(hi, data[i]);
    }
  }
  return {lo, hi};
}

std::string AmrDataset::validate() const {
  if (levels_.empty()) return "dataset has no levels";
  if (ratio_ < 2) return "refinement ratio must be >= 2";
  const Dims3 fine = finest_dims();
  const auto r = static_cast<std::size_t>(ratio_);

  for (std::size_t l = 1; l < levels_.size(); ++l) {
    const Dims3 expect{levels_[l - 1].dims().nx / r,
                       levels_[l - 1].dims().ny / r,
                       levels_[l - 1].dims().nz / r};
    if (!(levels_[l].dims() == expect)) {
      std::ostringstream os;
      os << "level " << l << " dims " << levels_[l].dims() << " != expected "
         << expect;
      return os.str();
    }
  }

  // Coverage counting on the finest grid: each cell exactly once.
  Array3D<std::uint8_t> cover(fine, 0);
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const AmrLevel& lv = levels_[l];
    const std::size_t s = scale_to_finest(l);
    const Dims3 d = lv.dims();
    for (std::size_t z = 0; z < d.nz; ++z)
      for (std::size_t y = 0; y < d.ny; ++y)
        for (std::size_t x = 0; x < d.nx; ++x) {
          if (!lv.mask(x, y, z)) continue;
          for (std::size_t dz = 0; dz < s; ++dz)
            for (std::size_t dy = 0; dy < s; ++dy)
              for (std::size_t dx = 0; dx < s; ++dx) {
                auto& c = cover(x * s + dx, y * s + dy, z * s + dz);
                if (c == 1) {
                  std::ostringstream os;
                  os << "cell (" << x * s + dx << "," << y * s + dy << ","
                     << z * s + dz << ") covered by multiple levels";
                  return os.str();
                }
                c = 1;
              }
        }
  }
  for (std::size_t i = 0; i < cover.size(); ++i)
    if (!cover[i]) return "domain not fully covered by valid cells";
  return {};
}

}  // namespace tac::amr
