#ifndef TAC_AMR_DATASET_HPP
#define TAC_AMR_DATASET_HPP

/// \file dataset.hpp
/// \brief Tree-structured AMR data model.
///
/// Mirrors the storage convention of AMReX/Nyx plotfiles the paper targets:
/// each level is a full-domain grid at its own resolution, and every point
/// of the domain is stored at exactly one level — the level of its finest
/// refinement (no redundancy across levels, unlike patch-based AMR).
/// Level 0 is the finest.

#include <cstdint>
#include <string>
#include <vector>

#include "common/array3d.hpp"
#include "common/dims.hpp"

namespace tac::amr {

/// One refinement level: a full-domain grid plus a validity mask. Cells
/// with mask == 0 are "empty" — their region of the domain is stored at
/// some other level. Empty cells hold 0.0 by convention.
struct AmrLevel {
  Array3D<double> data;
  Array3D<std::uint8_t> mask;

  AmrLevel() = default;
  explicit AmrLevel(Dims3 dims) : data(dims), mask(dims) {}

  [[nodiscard]] const Dims3& dims() const { return data.dims(); }

  [[nodiscard]] std::size_t valid_count() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < mask.size(); ++i) n += mask[i] ? 1 : 0;
    return n;
  }

  /// Fraction of this level's grid that is valid — the "density" the
  /// paper's filter switches on (Table 1 column 3).
  [[nodiscard]] double density() const {
    return mask.size() == 0
               ? 0.0
               : static_cast<double>(valid_count()) /
                     static_cast<double>(mask.size());
  }

  /// Valid values gathered in raster order (the level's natural 1D
  /// storage, input of the 1D baseline).
  [[nodiscard]] std::vector<double> gather_valid() const;

  /// gather_valid into caller-provided storage (e.g. an arena span).
  /// Returns the number of values written; `out` must hold at least
  /// valid_count() elements.
  std::size_t gather_valid_into(std::span<double> out) const;

  /// Scatters `values` (raster order over valid cells) back; empty cells
  /// are reset to 0. Throws if the count does not match.
  void scatter_valid(std::span<const double> values);

  /// Min/max over valid cells; {0, 0} if none.
  [[nodiscard]] std::pair<double, double> valid_range() const;
};

/// A multi-level dataset for one simulation field.
class AmrDataset {
 public:
  AmrDataset() = default;
  AmrDataset(std::string field_name, std::vector<AmrLevel> levels,
             int refinement_ratio = 2)
      : field_name_(std::move(field_name)),
        levels_(std::move(levels)),
        ratio_(refinement_ratio) {}

  [[nodiscard]] const std::string& field_name() const { return field_name_; }
  [[nodiscard]] int refinement_ratio() const { return ratio_; }
  [[nodiscard]] std::size_t num_levels() const { return levels_.size(); }
  [[nodiscard]] const AmrLevel& level(std::size_t l) const {
    return levels_.at(l);
  }
  [[nodiscard]] AmrLevel& level(std::size_t l) { return levels_.at(l); }
  [[nodiscard]] const std::vector<AmrLevel>& levels() const { return levels_; }
  [[nodiscard]] std::vector<AmrLevel>& levels() { return levels_; }

  [[nodiscard]] Dims3 finest_dims() const {
    return levels_.empty() ? Dims3{} : levels_.front().dims();
  }

  /// Linear scale factor between level l and the finest level.
  [[nodiscard]] std::size_t scale_to_finest(std::size_t l) const {
    std::size_t s = 1;
    for (std::size_t i = 0; i < l; ++i)
      s *= static_cast<std::size_t>(ratio_);
    return s;
  }

  /// Total number of stored (valid) values across levels.
  [[nodiscard]] std::size_t total_valid() const {
    std::size_t n = 0;
    for (const auto& lv : levels_) n += lv.valid_count();
    return n;
  }

  /// Uncompressed payload size in bytes (doubles, valid cells only), the
  /// "original size" used for compression ratios and throughput.
  [[nodiscard]] std::size_t original_bytes() const {
    return total_valid() * sizeof(double);
  }

  /// Verifies the tree-structure invariant: level extents shrink by
  /// `ratio` per level and every finest-grid cell is covered by exactly
  /// one level's valid region. Returns an explanation on failure.
  [[nodiscard]] std::string validate() const;

 private:
  std::string field_name_;
  std::vector<AmrLevel> levels_;
  int ratio_ = 2;
};

}  // namespace tac::amr

#endif  // TAC_AMR_DATASET_HPP
