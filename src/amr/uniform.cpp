#include "amr/uniform.hpp"

#include <stdexcept>

#include "common/parallel.hpp"

namespace tac::amr {

Array3D<double> compose_uniform(const AmrDataset& ds) {
  const Dims3 fine = ds.finest_dims();
  Array3D<double> out(fine, 0.0);
  for (std::size_t l = 0; l < ds.num_levels(); ++l) {
    const AmrLevel& lv = ds.level(l);
    const std::size_t s = ds.scale_to_finest(l);
    const Dims3 d = lv.dims();
    parallel_for(0, d.nz, [&](std::size_t z) {
      for (std::size_t y = 0; y < d.ny; ++y)
        for (std::size_t x = 0; x < d.nx; ++x) {
          if (!lv.mask(x, y, z)) continue;
          const double v = lv.data(x, y, z);
          for (std::size_t dz = 0; dz < s; ++dz)
            for (std::size_t dy = 0; dy < s; ++dy)
              for (std::size_t dx = 0; dx < s; ++dx)
                out(x * s + dx, y * s + dy, z * s + dz) = v;
        }
    }, /*grain=*/1);
  }
  return out;
}

void distribute_uniform(const Array3D<double>& uniform, AmrDataset& ds) {
  if (!(uniform.dims() == ds.finest_dims()))
    throw std::invalid_argument("distribute_uniform: extent mismatch");
  for (std::size_t l = 0; l < ds.num_levels(); ++l) {
    AmrLevel& lv = ds.level(l);
    const std::size_t s = ds.scale_to_finest(l);
    const Dims3 d = lv.dims();
    parallel_for(0, d.nz, [&](std::size_t z) {
      for (std::size_t y = 0; y < d.ny; ++y)
        for (std::size_t x = 0; x < d.nx; ++x)
          lv.data(x, y, z) =
              lv.mask(x, y, z) ? uniform(x * s, y * s, z * s) : 0.0;
    }, /*grain=*/1);
  }
}

Array3D<double> upsample(const Array3D<double>& coarse, Dims3 target) {
  const Dims3 c = coarse.dims();
  if (target.nx % c.nx || target.ny % c.ny || target.nz % c.nz)
    throw std::invalid_argument("upsample: target not a multiple of source");
  const std::size_t sx = target.nx / c.nx;
  const std::size_t sy = target.ny / c.ny;
  const std::size_t sz = target.nz / c.nz;
  Array3D<double> out(target);
  parallel_for(0, target.nz, [&](std::size_t z) {
    for (std::size_t y = 0; y < target.ny; ++y)
      for (std::size_t x = 0; x < target.nx; ++x)
        out(x, y, z) = coarse(x / sx, y / sy, z / sz);
  }, /*grain=*/1);
  return out;
}

}  // namespace tac::amr
