#ifndef TAC_AMR_AMR_IO_HPP
#define TAC_AMR_AMR_IO_HPP

/// \file amr_io.hpp
/// \brief Binary snapshot serialization for AMR datasets.
///
/// The structure (masks) is stored losslessly — as AMR snapshot formats do
/// — with bit-packing plus the generic lossless codec; values are stored as
/// raw doubles over valid cells only.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "amr/dataset.hpp"

namespace tac::amr {

[[nodiscard]] std::vector<std::uint8_t> dataset_to_bytes(const AmrDataset& ds);
[[nodiscard]] AmrDataset dataset_from_bytes(
    std::span<const std::uint8_t> bytes);

void save_dataset(const std::string& path, const AmrDataset& ds);
[[nodiscard]] AmrDataset load_dataset(const std::string& path);

/// Bit-packs a 0/1 mask; helper shared with the compression container.
[[nodiscard]] std::vector<std::uint8_t> pack_mask(
    std::span<const std::uint8_t> mask);
[[nodiscard]] std::vector<std::uint8_t> unpack_mask(
    std::span<const std::uint8_t> packed, std::size_t count);

}  // namespace tac::amr

#endif  // TAC_AMR_AMR_IO_HPP
