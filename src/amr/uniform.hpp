#ifndef TAC_AMR_UNIFORM_HPP
#define TAC_AMR_UNIFORM_HPP

/// \file uniform.hpp
/// \brief Conversion between AMR levels and uniform-resolution grids.
///
/// Post-analysis (power spectrum, halo finder) and the paper's "3D
/// baseline" both consume a uniform grid: coarse cells are up-sampled by
/// nearest-neighbour replication (one coarse value copied to ratio^3 fine
/// cells — the redundancy the paper's Figure 2/17 discussion is about) and
/// merged with the valid fine data.

#include "amr/dataset.hpp"
#include "common/array3d.hpp"

namespace tac::amr {

/// Up-samples all levels of `ds` to the finest resolution and merges them
/// into one grid. Every finest cell gets the value of the unique level that
/// stores its region.
[[nodiscard]] Array3D<double> compose_uniform(const AmrDataset& ds);

/// Inverse of compose_uniform given the dataset *structure*: fills each
/// level's valid cells from the uniform grid, reading the fine cell at the
/// origin corner of each coarse cell. For data produced by
/// compose_uniform + error-bounded compression this preserves the bound
/// (every replicated fine cell is within eb of the original coarse value).
void distribute_uniform(const Array3D<double>& uniform, AmrDataset& ds);

/// Up-samples a single level to `target` extents by nearest-neighbour
/// replication, ignoring the mask (used for tests and visualization).
[[nodiscard]] Array3D<double> upsample(const Array3D<double>& coarse,
                                       Dims3 target);

}  // namespace tac::amr

#endif  // TAC_AMR_UNIFORM_HPP
