#include "amr/snapshot.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "amr/amr_io.hpp"
#include "common/bytes.hpp"

namespace tac::amr {
namespace {
constexpr std::uint32_t kMagic = 0x50534154;  // "TASP"
constexpr std::uint8_t kVersion = 1;

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) throw std::runtime_error("cannot open " + path);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(f.tellg()));
  f.seekg(0);
  f.read(reinterpret_cast<char*>(bytes.data()),
         static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

}  // namespace

std::string Snapshot::validate_shared_structure() const {
  if (fields.empty()) return "snapshot has no fields";
  const AmrDataset& ref = fields.front();
  for (std::size_t f = 1; f < fields.size(); ++f) {
    const AmrDataset& ds = fields[f];
    if (ds.num_levels() != ref.num_levels()) {
      std::ostringstream os;
      os << "field " << f << " has " << ds.num_levels() << " levels, "
         << "field 0 has " << ref.num_levels();
      return os.str();
    }
    for (std::size_t l = 0; l < ref.num_levels(); ++l) {
      if (!(ds.level(l).dims() == ref.level(l).dims()))
        return "level extent mismatch between fields";
      if (ds.level(l).mask != ref.level(l).mask) {
        std::ostringstream os;
        os << "field " << f << " level " << l
           << " mask differs from field 0";
        return os.str();
      }
    }
  }
  return {};
}

std::vector<std::uint8_t> snapshot_to_bytes(const Snapshot& s) {
  ByteWriter w;
  w.put<std::uint32_t>(kMagic);
  w.put<std::uint8_t>(kVersion);
  w.put_varint(s.fields.size());
  for (const auto& ds : s.fields) w.put_blob(dataset_to_bytes(ds));
  return w.take();
}

Snapshot snapshot_from_bytes(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  if (r.get<std::uint32_t>() != kMagic)
    throw std::runtime_error("snapshot: bad magic");
  if (r.get<std::uint8_t>() != kVersion)
    throw std::runtime_error("snapshot: unsupported version");
  Snapshot s;
  const std::size_t n = static_cast<std::size_t>(r.get_varint());
  s.fields.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    s.fields.push_back(dataset_from_bytes(r.get_blob()));
  return s;
}

void save_snapshot(const std::string& path, const Snapshot& s) {
  const auto bytes = snapshot_to_bytes(s);
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("save_snapshot: cannot open " + path);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!f) throw std::runtime_error("save_snapshot: write failed " + path);
}

Snapshot load_snapshot(const std::string& path) {
  return snapshot_from_bytes(slurp(path));
}

}  // namespace tac::amr
