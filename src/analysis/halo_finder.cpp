#include "analysis/halo_finder.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tac::analysis {

HaloCatalog find_halos(const Array3D<double>& density,
                       const HaloFinderConfig& cfg) {
  const Dims3 d = density.dims();
  if (d.volume() == 0) throw std::invalid_argument("find_halos: empty grid");

  double mean = 0;
  for (std::size_t i = 0; i < density.size(); ++i) mean += density[i];
  mean /= static_cast<double>(density.size());

  HaloCatalog cat;
  cat.mean = mean;
  cat.threshold = cfg.threshold_factor * mean;

  // Flood fill of candidate cells (value > threshold), 6-connectivity.
  Array3D<std::uint8_t> visited(d, 0);
  std::vector<std::size_t> stack;
  const auto wrap = [](std::ptrdiff_t v, std::size_t n) {
    if (v < 0) return n - 1;
    if (static_cast<std::size_t>(v) >= n) return std::size_t{0};
    return static_cast<std::size_t>(v);
  };

  for (std::size_t start = 0; start < density.size(); ++start) {
    if (visited[start] || density[start] <= cat.threshold) continue;
    Halo halo;
    double peak = -1;
    stack.clear();
    stack.push_back(start);
    visited[start] = 1;
    while (!stack.empty()) {
      const std::size_t i = stack.back();
      stack.pop_back();
      ++halo.cells;
      halo.mass += density[i];
      const std::size_t x = i % d.nx;
      const std::size_t y = (i / d.nx) % d.ny;
      const std::size_t z = i / (d.nx * d.ny);
      if (density[i] > peak) {
        peak = density[i];
        halo.x = x;
        halo.y = y;
        halo.z = z;
      }
      const std::ptrdiff_t nb[6][3] = {{-1, 0, 0}, {1, 0, 0},  {0, -1, 0},
                                       {0, 1, 0},  {0, 0, -1}, {0, 0, 1}};
      for (const auto& o : nb) {
        const std::ptrdiff_t xx = static_cast<std::ptrdiff_t>(x) + o[0];
        const std::ptrdiff_t yy = static_cast<std::ptrdiff_t>(y) + o[1];
        const std::ptrdiff_t zz = static_cast<std::ptrdiff_t>(z) + o[2];
        std::size_t nx2, ny2, nz2;
        if (cfg.periodic) {
          nx2 = wrap(xx, d.nx);
          ny2 = wrap(yy, d.ny);
          nz2 = wrap(zz, d.nz);
        } else {
          if (xx < 0 || yy < 0 || zz < 0 ||
              static_cast<std::size_t>(xx) >= d.nx ||
              static_cast<std::size_t>(yy) >= d.ny ||
              static_cast<std::size_t>(zz) >= d.nz)
            continue;
          nx2 = static_cast<std::size_t>(xx);
          ny2 = static_cast<std::size_t>(yy);
          nz2 = static_cast<std::size_t>(zz);
        }
        const std::size_t j = d.index(nx2, ny2, nz2);
        if (!visited[j] && density[j] > cat.threshold) {
          visited[j] = 1;
          stack.push_back(j);
        }
      }
    }
    if (halo.cells >= cfg.min_cells) cat.halos.push_back(halo);
  }

  std::sort(cat.halos.begin(), cat.halos.end(),
            [](const Halo& a, const Halo& b) { return a.mass > b.mass; });
  return cat;
}

HaloComparison compare_largest_halo(const HaloCatalog& truth,
                                    const HaloCatalog& other) {
  HaloComparison c;
  c.halos_truth = truth.halos.size();
  c.halos_other = other.halos.size();
  if (truth.halos.empty() || other.halos.empty()) {
    c.rel_mass_diff = truth.halos.empty() == other.halos.empty() ? 0.0 : 1.0;
    return c;
  }
  const Halo& t = truth.halos.front();
  const Halo& o = other.halos.front();
  c.rel_mass_diff = t.mass != 0 ? std::fabs(o.mass - t.mass) / t.mass : 0.0;
  c.cell_count_diff = std::fabs(static_cast<double>(o.cells) -
                                static_cast<double>(t.cells));
  return c;
}

}  // namespace tac::analysis
