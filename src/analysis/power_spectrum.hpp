#ifndef TAC_ANALYSIS_POWER_SPECTRUM_HPP
#define TAC_ANALYSIS_POWER_SPECTRUM_HPP

/// \file power_spectrum.hpp
/// \brief Matter power spectrum P(k) (paper §4.2, metric 5).
///
/// Stands in for the Gimlet analysis tool: P(k) is the shell-binned squared
/// magnitude of the Fourier transform of the density contrast
/// δ = ρ/ρ̄ − 1. The paper accepts compressed data when the relative P(k)
/// error stays below 1% for all k < 10.

#include <vector>

#include "common/array3d.hpp"

namespace tac::analysis {

struct PowerSpectrum {
  std::vector<double> k;   ///< bin centers (integer wavenumber shells)
  std::vector<double> pk;  ///< mean |δ̂(k)|² per shell
};

/// Computes P(k) of a density field on a power-of-two grid.
[[nodiscard]] PowerSpectrum power_spectrum(const Array3D<double>& density);

/// Per-bin relative error |P'(k) − P(k)| / P(k); bins with P(k) == 0 give 0.
[[nodiscard]] std::vector<double> relative_error(const PowerSpectrum& truth,
                                                 const PowerSpectrum& other);

/// Maximum relative error over bins with k < k_limit (the paper's
/// acceptance criterion with k_limit = 10, 1% threshold).
[[nodiscard]] double max_relative_error(const PowerSpectrum& truth,
                                        const PowerSpectrum& other,
                                        double k_limit);

}  // namespace tac::analysis

#endif  // TAC_ANALYSIS_POWER_SPECTRUM_HPP
