#ifndef TAC_ANALYSIS_SLICE_IMAGE_HPP
#define TAC_ANALYSIS_SLICE_IMAGE_HPP

/// \file slice_image.hpp
/// \brief PGM slice renderings of fields and compression-error maps.
///
/// The paper's Figures 7 and 12 are visual comparisons — brightness maps
/// of per-cell compression error on one z-slice. These helpers regenerate
/// that artifact: grayscale PGM (portable, viewer-free) of either a field
/// slice (log scaling suits the lognormal densities) or the |orig-recon|
/// error on a slice.

#include <string>

#include "common/array3d.hpp"

namespace tac::analysis {

struct SliceImageOptions {
  std::size_t z = 0;          ///< slice index
  bool log_scale = false;     ///< map log10(1+|v|) instead of v
  double gamma = 1.0;         ///< display gamma on the normalized value
};

/// Renders one z-slice of `field` to an 8-bit PGM at `path`.
void write_slice_pgm(const std::string& path, const Array3D<double>& field,
                     const SliceImageOptions& opts = {});

/// Renders |a - b| on one z-slice (brighter = larger error), normalized to
/// the slice's maximum error — the paper's Figure 7/12 presentation.
void write_error_slice_pgm(const std::string& path,
                           const Array3D<double>& a,
                           const Array3D<double>& b,
                           const SliceImageOptions& opts = {});

}  // namespace tac::analysis

#endif  // TAC_ANALYSIS_SLICE_IMAGE_HPP
