#ifndef TAC_ANALYSIS_HALO_FINDER_HPP
#define TAC_ANALYSIS_HALO_FINDER_HPP

/// \file halo_finder.hpp
/// \brief Cell-based halo finder (paper §4.2, metric 6).
///
/// Implements the two criteria the paper describes: (1) a cell is a halo
/// candidate when its value exceeds `threshold_factor` times the dataset
/// mean (81.66 by default, after Davis et al.), and (2) candidates form a
/// halo when a 6-connected component reaches `min_cells`. Output per halo:
/// position (densest cell), cell count, and mass (sum of cell values).

#include <cstddef>
#include <vector>

#include "common/array3d.hpp"

namespace tac::analysis {

struct Halo {
  std::size_t cells = 0;
  double mass = 0;
  std::size_t x = 0, y = 0, z = 0;  ///< densest cell of the halo
};

struct HaloCatalog {
  std::vector<Halo> halos;  ///< sorted by mass, descending
  double threshold = 0;     ///< absolute candidate threshold used
  double mean = 0;          ///< dataset mean the threshold derives from
};

struct HaloFinderConfig {
  double threshold_factor = 81.66;
  std::size_t min_cells = 8;
  bool periodic = true;  ///< cosmology boxes are periodic
};

[[nodiscard]] HaloCatalog find_halos(const Array3D<double>& density,
                                     const HaloFinderConfig& cfg = {});

/// Table-3 statistics: differences of the biggest halo between original
/// and decompressed data.
struct HaloComparison {
  double rel_mass_diff = 0;   ///< |m' - m| / m of the biggest halo
  double cell_count_diff = 0; ///< |cells' - cells|
  std::size_t halos_truth = 0;
  std::size_t halos_other = 0;
};

[[nodiscard]] HaloComparison compare_largest_halo(const HaloCatalog& truth,
                                                  const HaloCatalog& other);

}  // namespace tac::analysis

#endif  // TAC_ANALYSIS_HALO_FINDER_HPP
