#include "analysis/slice_image.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace tac::analysis {
namespace {

void write_pgm(const std::string& path, std::size_t w, std::size_t h,
               const std::vector<double>& values, double gamma) {
  double lo = values.empty() ? 0.0 : values[0];
  double hi = lo;
  for (const double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = hi > lo ? hi - lo : 1.0;

  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("write_pgm: cannot open " + path);
  f << "P5\n" << w << " " << h << "\n255\n";
  std::vector<unsigned char> row(w);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      double t = (values[y * w + x] - lo) / span;
      if (gamma != 1.0) t = std::pow(t, gamma);
      row[x] = static_cast<unsigned char>(
          std::clamp(t * 255.0, 0.0, 255.0));
    }
    f.write(reinterpret_cast<const char*>(row.data()),
            static_cast<std::streamsize>(row.size()));
  }
  if (!f) throw std::runtime_error("write_pgm: write failed " + path);
}

std::vector<double> slice_of(const Array3D<double>& field, std::size_t z,
                             bool log_scale) {
  const Dims3 d = field.dims();
  if (z >= d.nz) throw std::invalid_argument("slice index out of range");
  std::vector<double> out(d.nx * d.ny);
  for (std::size_t y = 0; y < d.ny; ++y)
    for (std::size_t x = 0; x < d.nx; ++x) {
      const double v = field(x, y, z);
      out[y * d.nx + x] = log_scale ? std::log10(1.0 + std::fabs(v)) : v;
    }
  return out;
}

}  // namespace

void write_slice_pgm(const std::string& path, const Array3D<double>& field,
                     const SliceImageOptions& opts) {
  const Dims3 d = field.dims();
  write_pgm(path, d.nx, d.ny, slice_of(field, opts.z, opts.log_scale),
            opts.gamma);
}

void write_error_slice_pgm(const std::string& path, const Array3D<double>& a,
                           const Array3D<double>& b,
                           const SliceImageOptions& opts) {
  if (!(a.dims() == b.dims()))
    throw std::invalid_argument("write_error_slice_pgm: extent mismatch");
  const Dims3 d = a.dims();
  if (opts.z >= d.nz)
    throw std::invalid_argument("slice index out of range");
  std::vector<double> err(d.nx * d.ny);
  for (std::size_t y = 0; y < d.ny; ++y)
    for (std::size_t x = 0; x < d.nx; ++x) {
      const double e = std::fabs(a(x, y, opts.z) - b(x, y, opts.z));
      err[y * d.nx + x] = opts.log_scale ? std::log10(1.0 + e) : e;
    }
  write_pgm(path, d.nx, d.ny, err, opts.gamma);
}

}  // namespace tac::analysis
