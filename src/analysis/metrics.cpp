#include "analysis/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace tac::analysis {
namespace {

struct Accumulator {
  double sum_sq = 0;
  double max_abs = 0;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  std::size_t n = 0;

  void add(double orig, double recon) {
    const double e = orig - recon;
    sum_sq += e * e;
    max_abs = std::max(max_abs, std::fabs(e));
    lo = std::min(lo, orig);
    hi = std::max(hi, orig);
    ++n;
  }

  [[nodiscard]] DistortionStats finish() const {
    DistortionStats s;
    s.count = n;
    if (n == 0) return s;
    s.mse = sum_sq / static_cast<double>(n);
    s.max_abs_error = max_abs;
    s.value_range = hi - lo;
    if (s.mse == 0) {
      s.psnr = std::numeric_limits<double>::infinity();
    } else {
      s.psnr = 20.0 * std::log10(s.value_range) - 10.0 * std::log10(s.mse);
    }
    return s;
  }
};

}  // namespace

DistortionStats distortion(std::span<const double> original,
                           std::span<const double> decompressed) {
  if (original.size() != decompressed.size())
    throw std::invalid_argument("distortion: size mismatch");
  Accumulator acc;
  for (std::size_t i = 0; i < original.size(); ++i)
    acc.add(original[i], decompressed[i]);
  return acc.finish();
}

DistortionStats distortion_amr(const amr::AmrDataset& original,
                               const amr::AmrDataset& recon) {
  if (original.num_levels() != recon.num_levels())
    throw std::invalid_argument("distortion_amr: level count mismatch");
  Accumulator acc;
  for (std::size_t l = 0; l < original.num_levels(); ++l) {
    const auto& ol = original.level(l);
    const auto& rl = recon.level(l);
    if (!(ol.dims() == rl.dims()))
      throw std::invalid_argument("distortion_amr: level extent mismatch");
    for (std::size_t i = 0; i < ol.data.size(); ++i)
      if (ol.mask[i]) acc.add(ol.data[i], rl.data[i]);
  }
  return acc.finish();
}

double compression_ratio(std::size_t original_bytes,
                         std::size_t compressed_bytes) {
  return compressed_bytes == 0 ? 0.0
                               : static_cast<double>(original_bytes) /
                                     static_cast<double>(compressed_bytes);
}

double bit_rate(std::size_t value_count, std::size_t compressed_bytes) {
  return value_count == 0 ? 0.0
                          : 8.0 * static_cast<double>(compressed_bytes) /
                                static_cast<double>(value_count);
}

}  // namespace tac::analysis
