#ifndef TAC_ANALYSIS_METRICS_HPP
#define TAC_ANALYSIS_METRICS_HPP

/// \file metrics.hpp
/// \brief Generic compression quality metrics (paper §4.2, metrics 1–4).

#include <cstddef>
#include <span>

#include "amr/dataset.hpp"

namespace tac::analysis {

struct DistortionStats {
  double mse = 0;
  double psnr = 0;  ///< dB; +inf for identical data
  double max_abs_error = 0;
  double value_range = 0;
  std::size_t count = 0;
};

/// PSNR per the paper: 20*log10(range) - 10*log10(MSE), with the range
/// taken from the original data.
[[nodiscard]] DistortionStats distortion(std::span<const double> original,
                                         std::span<const double> decompressed);

/// Distortion over the valid cells of every level of an AMR dataset —
/// the level-wise view of reconstruction quality.
[[nodiscard]] DistortionStats distortion_amr(const amr::AmrDataset& original,
                                             const amr::AmrDataset& recon);

/// original_bytes / compressed_bytes.
[[nodiscard]] double compression_ratio(std::size_t original_bytes,
                                       std::size_t compressed_bytes);

/// Amortized bits per value; CR * bit_rate == bits per uncompressed value.
[[nodiscard]] double bit_rate(std::size_t value_count,
                              std::size_t compressed_bytes);

}  // namespace tac::analysis

#endif  // TAC_ANALYSIS_METRICS_HPP
