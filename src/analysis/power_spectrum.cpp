#include "analysis/power_spectrum.hpp"

#include <cmath>
#include <stdexcept>

#include "fft/fft.hpp"

namespace tac::analysis {

PowerSpectrum power_spectrum(const Array3D<double>& density) {
  const Dims3 d = density.dims();
  double mean = 0;
  for (std::size_t i = 0; i < density.size(); ++i) mean += density[i];
  mean /= static_cast<double>(density.size());
  if (mean == 0) throw std::invalid_argument("power_spectrum: zero mean");

  Array3D<fft::Complex> delta(d);
  for (std::size_t i = 0; i < density.size(); ++i)
    delta[i] = fft::Complex(density[i] / mean - 1.0, 0.0);
  fft::fft_3d(delta, /*inverse=*/false);

  const auto half_k = [](std::size_t i, std::size_t n) {
    const auto k = static_cast<double>(i);
    return i <= n / 2 ? k : k - static_cast<double>(n);
  };

  const std::size_t nbins = d.nx / 2;  // up to the Nyquist shell
  std::vector<double> sum(nbins, 0.0);
  std::vector<std::size_t> count(nbins, 0);
  const double norm = 1.0 / static_cast<double>(d.volume());
  for (std::size_t z = 0; z < d.nz; ++z)
    for (std::size_t y = 0; y < d.ny; ++y)
      for (std::size_t x = 0; x < d.nx; ++x) {
        const double kx = half_k(x, d.nx);
        const double ky = half_k(y, d.ny);
        const double kz = half_k(z, d.nz);
        const double kmag = std::sqrt(kx * kx + ky * ky + kz * kz);
        const auto bin = static_cast<std::size_t>(std::lround(kmag));
        if (bin == 0 || bin >= nbins) continue;
        const double p = std::norm(delta(x, y, z) * norm);
        sum[bin] += p;
        ++count[bin];
      }

  PowerSpectrum ps;
  for (std::size_t b = 1; b < nbins; ++b) {
    if (count[b] == 0) continue;
    ps.k.push_back(static_cast<double>(b));
    ps.pk.push_back(sum[b] / static_cast<double>(count[b]));
  }
  return ps;
}

std::vector<double> relative_error(const PowerSpectrum& truth,
                                   const PowerSpectrum& other) {
  if (truth.k.size() != other.k.size())
    throw std::invalid_argument("power spectrum: bin count mismatch");
  std::vector<double> err(truth.k.size(), 0.0);
  for (std::size_t i = 0; i < err.size(); ++i)
    if (truth.pk[i] != 0)
      err[i] = std::fabs(other.pk[i] - truth.pk[i]) / truth.pk[i];
  return err;
}

double max_relative_error(const PowerSpectrum& truth,
                          const PowerSpectrum& other, double k_limit) {
  const auto err = relative_error(truth, other);
  double mx = 0;
  for (std::size_t i = 0; i < err.size(); ++i)
    if (truth.k[i] < k_limit) mx = std::max(mx, err[i]);
  return mx;
}

}  // namespace tac::analysis
