#ifndef TAC_SZ_SZ_HPP
#define TAC_SZ_SZ_HPP

/// \file sz.hpp
/// \brief Prediction-based error-bounded lossy compressor (SZ
/// architecture): Lorenzo prediction, error-controlled linear quantization,
/// canonical Huffman coding, LZSS lossless tail.
///
/// The batched interface compresses `nblocks` equally-sized 3D blocks as a
/// single stream with one shared Huffman table — the paper's "linearize the
/// remaining 3D blocks into a 4D array and pass it to the compressor".
/// Prediction never crosses block boundaries.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/dims.hpp"
#include "sz/config.hpp"

namespace tac::sz {

/// Summary of one compressed stream, for diagnostics and benches.
struct SzStreamInfo {
  Dims3 block_dims;
  std::size_t nblocks = 0;
  std::size_t scalar_size = 0;
  double abs_error_bound = 0;  ///< effective absolute bound (0 = lossless)
  double value_range = 0;
  std::size_t n_outliers = 0;
  bool constant = false;
  // Where the bytes go (zero for constant streams):
  std::size_t huffman_bytes = 0;   ///< entropy-coded quantization codes
  std::size_t outlier_bytes = 0;   ///< exactly-stored unpredictable values
  std::size_t metadata_bytes = 0;  ///< header + counts + predictor tables
};

/// Compresses `nblocks` consecutive blocks of extents `dims` stored
/// contiguously in `data` (data.size() == dims.volume() * nblocks).
/// T is float or double.
template <class T>
[[nodiscard]] std::vector<std::uint8_t> compress(std::span<const T> data,
                                                 Dims3 dims,
                                                 const SzConfig& cfg,
                                                 std::size_t nblocks = 1);

/// Decompresses a stream produced by compress<T>. Throws if the stream's
/// scalar type does not match T. When `expected` is set (the container's
/// v3 index declared a codec profile for this payload), every embedded
/// lossless blob must carry a method byte of that profile — a mismatch is
/// a lossless::ProfileError; nullopt decodes leniently (pre-v3
/// containers). The fast profile also selects the wide-wavefront Lorenzo
/// reconstruction order (same values, better ILP).
template <class T>
[[nodiscard]] std::vector<T> decompress(
    std::span<const std::uint8_t> bytes,
    std::optional<lossless::CodecProfile> expected = std::nullopt);

/// Reads the stream header without decompressing the payload.
[[nodiscard]] SzStreamInfo peek(std::span<const std::uint8_t> bytes);

/// Result of one pass over the data: finite value range plus whether every
/// element is bit-identical to the first (constant-stream detection).
struct ValueRange {
  double lo = 0;  ///< +inf when no finite values were seen
  double hi = 0;  ///< -inf when no finite values were seen
  bool all_identical = true;
};

/// Range scan over `data` (SIMD-dispatched; see common/simd.hpp). The
/// scalar and vector paths return bit-identical results.
template <class T>
[[nodiscard]] ValueRange scan_range(std::span<const T> data);

/// Packs one bit per value (the IEEE sign bit, LSB-first within each
/// byte). SIMD-dispatched; used by the point-wise-relative path.
template <class T>
[[nodiscard]] std::vector<std::uint8_t> pack_sign_bits(
    std::span<const T> data);

}  // namespace tac::sz

#endif  // TAC_SZ_SZ_HPP
