#ifndef TAC_SZ_RESOLVE_HPP
#define TAC_SZ_RESOLVE_HPP

/// \file resolve.hpp
/// \brief Error-bound resolution shared by every compression backend.
///
/// Relative bounds are resolved to absolute bounds against an explicit
/// value range *before* any stream is compressed, so all streams cut from
/// the same scope (a level, or a whole dataset) share one bound. The
/// helpers are pure functions of their arguments — no globals, no caches —
/// which is what lets the level pipeline resolve configs from concurrent
/// worker threads.

#include <cmath>

#include "sz/config.hpp"

namespace tac::sz {

/// Resolves a relative bound against the range [lo, hi]. Absolute and
/// point-wise-relative configs pass through unchanged. A degenerate range
/// (empty, zero-width, or non-finite) also passes through unchanged: the
/// sz layer then falls back to its internal lossless outlier path.
[[nodiscard]] inline SzConfig resolve_range_bound(const SzConfig& cfg,
                                                  double lo, double hi) {
  if (cfg.mode != ErrorBoundMode::kRelative) return cfg;
  const double abs_eb = cfg.error_bound * (hi - lo);
  if (!(abs_eb > 0) || !std::isfinite(abs_eb)) return cfg;
  SzConfig out = cfg;
  out.mode = ErrorBoundMode::kAbsolute;
  out.error_bound = abs_eb;
  return out;
}

}  // namespace tac::sz

#endif  // TAC_SZ_RESOLVE_HPP
