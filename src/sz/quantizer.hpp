#ifndef TAC_SZ_QUANTIZER_HPP
#define TAC_SZ_QUANTIZER_HPP

/// \file quantizer.hpp
/// \brief Error-controlled linear quantizer (SZ step 2).
///
/// The prediction residual is quantized to bins of width 2*eb; the
/// reconstructed value pred + 2*eb*q is then guaranteed within eb of the
/// original. Values whose residual does not fit the code range — or whose
/// reconstruction fails the bound check due to floating-point rounding —
/// are emitted as code 0 ("unpredictable") and stored exactly.

#include <cmath>
#include <cstdint>

namespace tac::sz {

struct QuantResult {
  std::uint32_t code = 0;   ///< 0 = outlier; otherwise q + radius
  double reconstructed = 0; ///< value the decompressor will produce
  bool outlier = false;
};

/// Quantizes `value` against `predicted`. `eb` must be > 0 and finite.
[[nodiscard]] inline QuantResult quantize(double value, double predicted,
                                          double eb, std::uint32_t radius) {
  QuantResult r;
  if (!std::isfinite(value) || !std::isfinite(predicted)) {
    r.outlier = true;
    r.reconstructed = value;
    return r;
  }
  const double diff = value - predicted;
  const double q = std::nearbyint(diff / (2.0 * eb));
  if (std::fabs(q) < static_cast<double>(radius)) {
    const auto qi = static_cast<std::int64_t>(q);
    const double recon = predicted + 2.0 * eb * static_cast<double>(qi);
    if (std::fabs(recon - value) <= eb) {
      r.code = static_cast<std::uint32_t>(qi + static_cast<std::int64_t>(radius));
      r.reconstructed = recon;
      return r;
    }
  }
  r.outlier = true;
  r.reconstructed = value;
  return r;
}

/// Inverse mapping used by the decompressor for non-outlier codes.
[[nodiscard]] inline double dequantize(std::uint32_t code, double predicted,
                                       double eb, std::uint32_t radius) {
  const auto q = static_cast<std::int64_t>(code) -
                 static_cast<std::int64_t>(radius);
  return predicted + 2.0 * eb * static_cast<double>(q);
}

}  // namespace tac::sz

#endif  // TAC_SZ_QUANTIZER_HPP
