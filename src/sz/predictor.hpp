#ifndef TAC_SZ_PREDICTOR_HPP
#define TAC_SZ_PREDICTOR_HPP

/// \file predictor.hpp
/// \brief Order-1 Lorenzo predictor with zero extension.
///
/// The 3D inclusion-exclusion stencil degrades gracefully at boundaries:
/// with out-of-range neighbours read as zero, a face plane reduces to the
/// 2D Lorenzo stencil and an edge line to the 1D one. This is exactly the
/// behaviour TAC's pre-process strategies exploit/avoid: boundary points
/// see fewer real neighbours and predict worse, and padded zeros poison
/// interior predictions.

#include <cmath>
#include <cstddef>

#include "common/dims.hpp"

namespace tac::sz {

/// Non-finite values predict as zero so one stored NaN cannot poison
/// subsequent predictions. Shared by ReconView and the row kernels in
/// sz.cpp, which must agree bit-for-bit.
[[nodiscard]] inline double finite_or_zero(double v) {
  return std::isfinite(v) ? v : 0.0;
}

/// Reads a reconstructed neighbour for prediction; non-finite values are
/// treated as zero so one stored NaN cannot poison subsequent predictions.
template <class T>
struct ReconView {
  const T* data;
  Dims3 dims;

  [[nodiscard]] double at(std::size_t x, std::size_t y, std::size_t z) const {
    return finite_or_zero(static_cast<double>(data[dims.index(x, y, z)]));
  }
  /// Neighbour read with zero extension below the block origin. dx/dy/dz
  /// are 0 or 1 offsets *subtracted* from (x, y, z).
  [[nodiscard]] double rel(std::size_t x, std::size_t y, std::size_t z,
                           unsigned dx, unsigned dy, unsigned dz) const {
    if ((dx > x) || (dy > y) || (dz > z)) return 0.0;
    return at(x - dx, y - dy, z - dz);
  }
};

/// 3D Lorenzo prediction of the value at (x, y, z) from the seven
/// previously-visited corner neighbours.
template <class T>
[[nodiscard]] double lorenzo_predict(const ReconView<T>& r, std::size_t x,
                                     std::size_t y, std::size_t z) {
  return r.rel(x, y, z, 1, 0, 0) + r.rel(x, y, z, 0, 1, 0) +
         r.rel(x, y, z, 0, 0, 1) - r.rel(x, y, z, 1, 1, 0) -
         r.rel(x, y, z, 1, 0, 1) - r.rel(x, y, z, 0, 1, 1) +
         r.rel(x, y, z, 1, 1, 1);
}

}  // namespace tac::sz

#endif  // TAC_SZ_PREDICTOR_HPP
