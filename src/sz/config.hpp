#ifndef TAC_SZ_CONFIG_HPP
#define TAC_SZ_CONFIG_HPP

/// \file config.hpp
/// \brief User-facing configuration of the SZ-style compressor.

#include <cstdint>

#include "lossless/codec.hpp"

namespace tac::sz {

/// How the error bound parameter is interpreted.
enum class ErrorBoundMode : std::uint8_t {
  kAbsolute = 0,  ///< |orig - decompressed| <= error_bound
  kRelative = 1,  ///< |orig - decompressed| <= error_bound * value_range
  /// |orig - decompressed| <= error_bound * |orig| for every point,
  /// via the logarithmic transform of Liang et al. (CLUSTER'18) — the
  /// scheme the paper's SZ substrate uses for point-wise relative
  /// bounds. Zeros and non-finite values round-trip exactly. Suited to
  /// fields spanning many decades (lognormal cosmology densities).
  kPointwiseRelative = 2,
};

/// Prediction scheme (SZ generations).
enum class Predictor : std::uint8_t {
  /// Global order-1 Lorenzo (SZ 1.4).
  kLorenzo = 0,
  /// SZ 2.x-style: the array is tiled into small prediction blocks and
  /// each picks Lorenzo or a least-squares plane fit (regression), chosen
  /// by the smaller estimated residual. Regression blocks store four
  /// float coefficients and do not depend on neighbouring values.
  kHybrid = 1,
};

struct SzConfig {
  ErrorBoundMode mode = ErrorBoundMode::kAbsolute;
  /// Absolute bound, or fraction of the (finite) value range in kRelative
  /// mode. Must be > 0 in kAbsolute mode.
  double error_bound = 1e-3;
  /// Quantization codes span [1, 2*quant_radius - 1]; code 0 marks an
  /// unpredictable value stored exactly. 2^15 matches SZ's default 2^16
  /// interval capacity.
  std::uint32_t quant_radius = 1u << 15;
  Predictor predictor = Predictor::kLorenzo;
  /// Side of the prediction tiles in kHybrid mode (SZ2 uses 6).
  std::size_t pred_block = 6;
  /// Lossless encoder family for every byte stream this compressor emits,
  /// and gate for the wide-wavefront Lorenzo scan order. Not serialized
  /// in the sz stream itself — the container's v3 payload index records
  /// it; the decoder is told the expected profile (or decodes leniently
  /// for pre-v3 containers).
  lossless::CodecProfile profile = lossless::default_profile();

  [[nodiscard]] SzConfig with_error_bound(double eb) const {
    SzConfig c = *this;
    c.error_bound = eb;
    return c;
  }
};

}  // namespace tac::sz

#endif  // TAC_SZ_CONFIG_HPP
