#ifndef TAC_SZ_REGRESSION_HPP
#define TAC_SZ_REGRESSION_HPP

/// \file regression.hpp
/// \brief Least-squares plane predictor for the SZ2-style hybrid mode.
///
/// Each prediction tile fits v ~ b0 + bx*ux + by*uy + bz*uz with centered
/// local coordinates (the design is orthogonal on a full grid tile, so
/// the coefficients decouple into independent 1D projections). Regression
/// predictions depend only on the stored coefficients — not on
/// neighbouring reconstructed values — which is exactly why SZ2 wins on
/// data where the Lorenzo neighbourhood is unreliable (block boundaries,
/// padded zeros).

#include <cmath>
#include <cstddef>

#include "common/dims.hpp"

namespace tac::sz {

/// Plane coefficients, stored as float in the stream (8x smaller than the
/// tile payload they replace; matches SZ2's lossy coefficient storage).
struct PlaneFit {
  float b0 = 0, bx = 0, by = 0, bz = 0;
};

/// Fits the plane over tile cells [0, ex) x [0, ey) x [0, ez) of `tile`
/// (a view into block data with the given strides). Non-finite values
/// contribute zero so a stray NaN cannot poison the whole tile.
template <class T>
[[nodiscard]] PlaneFit fit_plane(const T* data, Dims3 block_dims, Box3 tile) {
  const double ex = static_cast<double>(tile.x1 - tile.x0);
  const double ey = static_cast<double>(tile.y1 - tile.y0);
  const double ez = static_cast<double>(tile.z1 - tile.z0);
  const double cx = (ex - 1) / 2.0, cy = (ey - 1) / 2.0, cz = (ez - 1) / 2.0;

  double sum = 0, sx = 0, sy = 0, sz2 = 0;
  double nxx = 0, nyy = 0, nzz = 0;
  std::size_t n = 0;
  for (std::size_t z = tile.z0; z < tile.z1; ++z)
    for (std::size_t y = tile.y0; y < tile.y1; ++y)
      for (std::size_t x = tile.x0; x < tile.x1; ++x) {
        double v = static_cast<double>(data[block_dims.index(x, y, z)]);
        if (!std::isfinite(v)) v = 0.0;
        const double ux = static_cast<double>(x - tile.x0) - cx;
        const double uy = static_cast<double>(y - tile.y0) - cy;
        const double uz = static_cast<double>(z - tile.z0) - cz;
        sum += v;
        sx += v * ux;
        sy += v * uy;
        sz2 += v * uz;
        nxx += ux * ux;
        nyy += uy * uy;
        nzz += uz * uz;
        ++n;
      }
  PlaneFit f;
  if (n == 0) return f;
  f.b0 = static_cast<float>(sum / static_cast<double>(n));
  f.bx = static_cast<float>(nxx > 0 ? sx / nxx : 0.0);
  f.by = static_cast<float>(nyy > 0 ? sy / nyy : 0.0);
  f.bz = static_cast<float>(nzz > 0 ? sz2 / nzz : 0.0);
  return f;
}

/// Evaluates the plane at local tile coordinates; must be bit-identical
/// between compressor and decompressor, hence the explicit float-coeff,
/// double-arithmetic form.
[[nodiscard]] inline double plane_predict(const PlaneFit& f, Box3 tile,
                                          std::size_t x, std::size_t y,
                                          std::size_t z) {
  const double cx = (static_cast<double>(tile.x1 - tile.x0) - 1) / 2.0;
  const double cy = (static_cast<double>(tile.y1 - tile.y0) - 1) / 2.0;
  const double cz = (static_cast<double>(tile.z1 - tile.z0) - 1) / 2.0;
  return static_cast<double>(f.b0) +
         static_cast<double>(f.bx) * (static_cast<double>(x - tile.x0) - cx) +
         static_cast<double>(f.by) * (static_cast<double>(y - tile.y0) - cy) +
         static_cast<double>(f.bz) * (static_cast<double>(z - tile.z0) - cz);
}

}  // namespace tac::sz

#endif  // TAC_SZ_REGRESSION_HPP
