#include "sz/sz.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>

#include "common/arena.hpp"
#include "common/bytes.hpp"
#include "common/parallel.hpp"
#include "common/simd.hpp"
#include "common/telemetry.hpp"
#include "lossless/codec.hpp"
#include "lossless/huffman.hpp"
#include "sz/predictor.hpp"
#include "sz/regression.hpp"
#include "sz/quantizer.hpp"

namespace tac::sz {
namespace {

constexpr std::uint16_t kMagic = 0x5A53;  // "SZ"
constexpr std::uint8_t kVersion = 1;

enum class StreamKind : std::uint8_t {
  kConstant = 0,
  kGeneral = 1,
  kPwRel = 2,  // log-transformed payload for point-wise relative bounds
};

// ---------------------------------------------------------------------------
// Range scan (min/max/constant detection), SIMD-dispatched.
//
// Every path — scalar, SSE4.2, AVX2 — observes the same rules: non-finite
// values are excluded from lo/hi, and all_identical compares raw bit
// patterns against element 0 (so NaN payloads and -0.0 vs 0.0 count as
// different). lo/hi never reach the serialized stream directly (only
// hi - lo does), so tie-breaking of equal values cannot change bytes.
// ---------------------------------------------------------------------------

template <class T>
void scan_tail(const T* p, std::size_t i, std::size_t n, T first,
               ValueRange& r) {
  for (; i < n; ++i) {
    if (std::memcmp(p + i, &first, sizeof(T)) != 0) r.all_identical = false;
    const auto d = static_cast<double>(p[i]);
    if (std::isfinite(d)) {
      r.lo = std::min(r.lo, d);
      r.hi = std::max(r.hi, d);
    }
  }
}

template <class T>
ValueRange scan_range_scalar(const T* p, std::size_t n) {
  ValueRange r;
  r.lo = std::numeric_limits<double>::infinity();
  r.hi = -std::numeric_limits<double>::infinity();
  if (n == 0) return r;
  scan_tail(p, 0, n, p[0], r);
  return r;
}

#if TAC_SIMD_X86 && defined(__GNUC__)

__attribute__((target("avx2"))) ValueRange scan_range_avx2(const double* p,
                                                           std::size_t n) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  ValueRange r;
  r.lo = kInf;
  r.hi = -kInf;
  if (n == 0) return r;
  const double first = p[0];
  std::size_t i = 0;
  if (n >= 4) {
    const __m256d vinf = _mm256_set1_pd(kInf);
    const __m256d vninf = _mm256_set1_pd(-kInf);
    const __m256d absmask = _mm256_castsi256_pd(
        _mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFll));
    const __m256i vfirst = _mm256_castpd_si256(_mm256_set1_pd(first));
    __m256i vident = _mm256_set1_epi64x(-1);
    __m256d vlo = vinf;
    __m256d vhi = vninf;
    for (; i + 4 <= n; i += 4) {
      const __m256d v = _mm256_loadu_pd(p + i);
      vident = _mm256_and_si256(
          vident, _mm256_cmpeq_epi64(_mm256_castpd_si256(v), vfirst));
      const __m256d mag = _mm256_and_pd(v, absmask);
      const __m256d fin = _mm256_cmp_pd(mag, vinf, _CMP_LT_OQ);
      vlo = _mm256_min_pd(vlo, _mm256_blendv_pd(vinf, v, fin));
      vhi = _mm256_max_pd(vhi, _mm256_blendv_pd(vninf, v, fin));
    }
    if (_mm256_movemask_epi8(vident) != -1) r.all_identical = false;
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, vlo);
    for (const double d : lanes) r.lo = std::min(r.lo, d);
    _mm256_store_pd(lanes, vhi);
    for (const double d : lanes) r.hi = std::max(r.hi, d);
  }
  scan_tail(p, i, n, first, r);
  return r;
}

__attribute__((target("avx2"))) ValueRange scan_range_avx2(const float* p,
                                                           std::size_t n) {
  constexpr float kInf = std::numeric_limits<float>::infinity();
  ValueRange r;
  r.lo = std::numeric_limits<double>::infinity();
  r.hi = -std::numeric_limits<double>::infinity();
  if (n == 0) return r;
  const float first = p[0];
  std::size_t i = 0;
  if (n >= 8) {
    const __m256 vinf = _mm256_set1_ps(kInf);
    const __m256 vninf = _mm256_set1_ps(-kInf);
    const __m256 absmask =
        _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFFFFFF));
    const __m256i vfirst = _mm256_castps_si256(_mm256_set1_ps(first));
    __m256i vident = _mm256_set1_epi32(-1);
    __m256 vlo = vinf;
    __m256 vhi = vninf;
    for (; i + 8 <= n; i += 8) {
      const __m256 v = _mm256_loadu_ps(p + i);
      vident = _mm256_and_si256(
          vident, _mm256_cmpeq_epi32(_mm256_castps_si256(v), vfirst));
      const __m256 mag = _mm256_and_ps(v, absmask);
      const __m256 fin = _mm256_cmp_ps(mag, vinf, _CMP_LT_OQ);
      vlo = _mm256_min_ps(vlo, _mm256_blendv_ps(vinf, v, fin));
      vhi = _mm256_max_ps(vhi, _mm256_blendv_ps(vninf, v, fin));
    }
    if (_mm256_movemask_epi8(vident) != -1) r.all_identical = false;
    // float->double conversion is exact, so reducing in float then widening
    // equals the scalar double-domain reduction.
    alignas(32) float lanes[8];
    _mm256_store_ps(lanes, vlo);
    for (const float f : lanes) r.lo = std::min(r.lo, static_cast<double>(f));
    _mm256_store_ps(lanes, vhi);
    for (const float f : lanes) r.hi = std::max(r.hi, static_cast<double>(f));
  }
  scan_tail(p, i, n, first, r);
  return r;
}

__attribute__((target("sse4.2"))) ValueRange scan_range_sse42(const double* p,
                                                              std::size_t n) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  ValueRange r;
  r.lo = kInf;
  r.hi = -kInf;
  if (n == 0) return r;
  const double first = p[0];
  std::size_t i = 0;
  if (n >= 2) {
    const __m128d vinf = _mm_set1_pd(kInf);
    const __m128d vninf = _mm_set1_pd(-kInf);
    const __m128d absmask =
        _mm_castsi128_pd(_mm_set1_epi64x(0x7FFFFFFFFFFFFFFFll));
    const __m128i vfirst = _mm_castpd_si128(_mm_set1_pd(first));
    __m128i vident = _mm_set1_epi32(-1);
    __m128d vlo = vinf;
    __m128d vhi = vninf;
    for (; i + 2 <= n; i += 2) {
      const __m128d v = _mm_loadu_pd(p + i);
      vident = _mm_and_si128(vident,
                             _mm_cmpeq_epi64(_mm_castpd_si128(v), vfirst));
      const __m128d mag = _mm_and_pd(v, absmask);
      const __m128d fin = _mm_cmplt_pd(mag, vinf);
      vlo = _mm_min_pd(vlo, _mm_blendv_pd(vinf, v, fin));
      vhi = _mm_max_pd(vhi, _mm_blendv_pd(vninf, v, fin));
    }
    if (_mm_movemask_epi8(vident) != 0xFFFF) r.all_identical = false;
    alignas(16) double lanes[2];
    _mm_store_pd(lanes, vlo);
    for (const double d : lanes) r.lo = std::min(r.lo, d);
    _mm_store_pd(lanes, vhi);
    for (const double d : lanes) r.hi = std::max(r.hi, d);
  }
  scan_tail(p, i, n, first, r);
  return r;
}

__attribute__((target("sse4.2"))) ValueRange scan_range_sse42(const float* p,
                                                              std::size_t n) {
  constexpr float kInf = std::numeric_limits<float>::infinity();
  ValueRange r;
  r.lo = std::numeric_limits<double>::infinity();
  r.hi = -std::numeric_limits<double>::infinity();
  if (n == 0) return r;
  const float first = p[0];
  std::size_t i = 0;
  if (n >= 4) {
    const __m128 vinf = _mm_set1_ps(kInf);
    const __m128 vninf = _mm_set1_ps(-kInf);
    const __m128 absmask = _mm_castsi128_ps(_mm_set1_epi32(0x7FFFFFFF));
    const __m128i vfirst = _mm_castps_si128(_mm_set1_ps(first));
    __m128i vident = _mm_set1_epi32(-1);
    __m128 vlo = vinf;
    __m128 vhi = vninf;
    for (; i + 4 <= n; i += 4) {
      const __m128 v = _mm_loadu_ps(p + i);
      vident = _mm_and_si128(vident,
                             _mm_cmpeq_epi32(_mm_castps_si128(v), vfirst));
      const __m128 mag = _mm_and_ps(v, absmask);
      const __m128 fin = _mm_cmplt_ps(mag, vinf);
      vlo = _mm_min_ps(vlo, _mm_blendv_ps(vinf, v, fin));
      vhi = _mm_max_ps(vhi, _mm_blendv_ps(vninf, v, fin));
    }
    if (_mm_movemask_epi8(vident) != 0xFFFF) r.all_identical = false;
    alignas(16) float lanes[4];
    _mm_store_ps(lanes, vlo);
    for (const float f : lanes) r.lo = std::min(r.lo, static_cast<double>(f));
    _mm_store_ps(lanes, vhi);
    for (const float f : lanes) r.hi = std::max(r.hi, static_cast<double>(f));
  }
  scan_tail(p, i, n, first, r);
  return r;
}

#endif  // TAC_SIMD_X86 && __GNUC__

// ---------------------------------------------------------------------------
// Sign-bit packing (LSB-first per byte), SIMD-dispatched. movemask reads
// the raw IEEE sign bit, which matches std::signbit for every value
// including -0.0 and negative NaNs.
// ---------------------------------------------------------------------------

template <class T>
void pack_sign_tail(const T* p, std::size_t i, std::size_t n,
                    std::uint8_t* out) {
  for (; i < n; ++i)
    if (std::signbit(static_cast<double>(p[i])))
      out[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
}

#if TAC_SIMD_X86 && defined(__GNUC__)

__attribute__((target("avx2"))) void pack_sign_avx2(const double* p,
                                                    std::size_t n,
                                                    std::uint8_t* out) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const int lo = _mm256_movemask_pd(_mm256_loadu_pd(p + i));
    const int hi = _mm256_movemask_pd(_mm256_loadu_pd(p + i + 4));
    out[i / 8] = static_cast<std::uint8_t>(lo | (hi << 4));
  }
  pack_sign_tail(p, i, n, out);
}

__attribute__((target("avx2"))) void pack_sign_avx2(const float* p,
                                                    std::size_t n,
                                                    std::uint8_t* out) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    out[i / 8] =
        static_cast<std::uint8_t>(_mm256_movemask_ps(_mm256_loadu_ps(p + i)));
  pack_sign_tail(p, i, n, out);
}

__attribute__((target("sse4.2"))) void pack_sign_sse42(const double* p,
                                                       std::size_t n,
                                                       std::uint8_t* out) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const int b0 = _mm_movemask_pd(_mm_loadu_pd(p + i));
    const int b1 = _mm_movemask_pd(_mm_loadu_pd(p + i + 2));
    const int b2 = _mm_movemask_pd(_mm_loadu_pd(p + i + 4));
    const int b3 = _mm_movemask_pd(_mm_loadu_pd(p + i + 6));
    out[i / 8] =
        static_cast<std::uint8_t>(b0 | (b1 << 2) | (b2 << 4) | (b3 << 6));
  }
  pack_sign_tail(p, i, n, out);
}

__attribute__((target("sse4.2"))) void pack_sign_sse42(const float* p,
                                                       std::size_t n,
                                                       std::uint8_t* out) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const int lo = _mm_movemask_ps(_mm_loadu_ps(p + i));
    const int hi = _mm_movemask_ps(_mm_loadu_ps(p + i + 4));
    out[i / 8] = static_cast<std::uint8_t>(lo | (hi << 4));
  }
  pack_sign_tail(p, i, n, out);
}

#endif  // TAC_SIMD_X86 && __GNUC__

/// Per-block tiling for the SZ2-style hybrid predictor: which tiles use
/// regression and their plane coefficients. `fit_index[tile]` is -1 for
/// Lorenzo tiles, else an index into `fits`.
struct TilePlan {
  std::size_t pred_block = 6;
  Dims3 tiles;
  std::vector<std::int32_t> fit_index;
  std::vector<PlaneFit> fits;

  [[nodiscard]] Box3 tile_box(Dims3 block_dims, std::size_t tx,
                              std::size_t ty, std::size_t tz) const {
    return Box3{tx * pred_block,
                ty * pred_block,
                tz * pred_block,
                std::min(block_dims.nx, (tx + 1) * pred_block),
                std::min(block_dims.ny, (ty + 1) * pred_block),
                std::min(block_dims.nz, (tz + 1) * pred_block)};
  }
};

Dims3 tile_counts(Dims3 dims, std::size_t pb) {
  return {ceil_div(dims.nx, pb), ceil_div(dims.ny, pb),
          ceil_div(dims.nz, pb)};
}

/// Chooses Lorenzo vs regression per tile by the smaller total absolute
/// residual estimated on the original values (SZ2's selection, without
/// sampling). The Lorenzo estimate uses original neighbours — a close
/// proxy for the reconstruction the decompressor will predict from.
template <class T>
TilePlan plan_tiles(const T* block, Dims3 dims, std::size_t pb) {
  TilePlan plan;
  plan.pred_block = pb;
  plan.tiles = tile_counts(dims, pb);
  plan.fit_index.assign(plan.tiles.volume(), -1);
  const ReconView<T> view{block, dims};
  std::size_t t = 0;
  for (std::size_t tz = 0; tz < plan.tiles.nz; ++tz)
    for (std::size_t ty = 0; ty < plan.tiles.ny; ++ty)
      for (std::size_t tx = 0; tx < plan.tiles.nx; ++tx, ++t) {
        const Box3 box = plan.tile_box(dims, tx, ty, tz);
        const PlaneFit fit = fit_plane(block, dims, box);
        double err_reg = 0, err_lor = 0;
        for (std::size_t z = box.z0; z < box.z1; ++z)
          for (std::size_t y = box.y0; y < box.y1; ++y)
            for (std::size_t x = box.x0; x < box.x1; ++x) {
              double v = static_cast<double>(block[dims.index(x, y, z)]);
              if (!std::isfinite(v)) v = 0.0;
              err_reg += std::fabs(v - plane_predict(fit, box, x, y, z));
              err_lor += std::fabs(v - lorenzo_predict(view, x, y, z));
            }
        if (err_reg < err_lor) {
          plan.fit_index[t] = static_cast<std::int32_t>(plan.fits.size());
          plan.fits.push_back(fit);
        }
      }
  return plan;
}

// ---------------------------------------------------------------------------
// Row kernels.
//
// The historical per-cell loop dispatched the predictor (tile lookup,
// boundary handling, 3D index arithmetic) for every cell. The kernels
// below hoist all of that out of the inner x loop: boundary rows/cells go
// through the generic lorenzo_predict (bit-identical by construction, and
// its `0.0 + b` zero-extension terms are NOT removable — they normalize
// -0.0), while interior cells evaluate the identical expression tree
//     ((((((a + b) + c) - d) - e) - f) + g)
// from direct row-pointer loads. No term is reassociated, so every
// prediction — and therefore every output byte — is unchanged.
//
// The quantizer is latency-bound, not throughput-bound: each cell's
// prediction needs the previous cell's reconstruction, so the 6-add
// stencil, the residual divide and the round sit on one loop-carried
// chain (~60 cycles). The Lorenzo path therefore interleaves two
// adjacent rows at a 2-cell stagger: row y+1 only ever reads row y cells
// that retired at least two iterations earlier, so the two chains are
// independent and overlap in the pipeline. This is a reschedule of the
// same dataflow graph — every cell still sees bit-identical inputs.
// ---------------------------------------------------------------------------

/// Stagger distance of the second interleaved row. Must be >= 1 so row
/// y+1 never reads a row-y cell from the same iteration; 2 keeps the
/// just-written neighbour out of store-to-load forwarding stalls.
constexpr std::size_t kRowLag = 2;

/// Interior Lorenzo prediction from hoisted row pointers. `left` is the
/// already-filtered west neighbour carried by the caller. always_inline:
/// a real call per cell costs more than the prediction itself.
template <class T>
[[gnu::always_inline]] inline double lorenzo_row_predict(double left,
                                                         const T* ym,
                                                         const T* zm,
                                                         const T* yzm,
                                                         std::size_t x) {
  return ((((((left + finite_or_zero(static_cast<double>(ym[x]))) +
              finite_or_zero(static_cast<double>(zm[x]))) -
             finite_or_zero(static_cast<double>(ym[x - 1]))) -
            finite_or_zero(static_cast<double>(zm[x - 1]))) -
           finite_or_zero(static_cast<double>(yzm[x]))) +
          finite_or_zero(static_cast<double>(yzm[x - 1])));
}

/// Wavefront width of the fast codec profile's Lorenzo scan order
/// (simd::kWavefrontRows interior rows in flight, each staggered kRowLag
/// cells behind the row above). The legacy 3-row interleave is kept
/// verbatim for legacy-profile streams; both orders evaluate the same
/// expression tree per cell, so decoded values are identical — only the
/// instruction schedule (and thus throughput) differs.
constexpr std::size_t kWaveRows = simd::kWavefrontRows;

/// Runs one W-row interleaved wavefront over interior rows [y, y+W) of
/// plane z. `first_cell(w, i, yy)` handles the x == 0 boundary cell of
/// row w; `row_cell(w, i, pred)` the interior cells. Both return the
/// filtered reconstructed value that becomes the row's carried `left`.
template <std::size_t W, class T, class FirstCell, class RowCell>
[[gnu::always_inline]] inline void wave_rows(const T* recon,
                                             std::size_t plane, std::size_t y,
                                             std::size_t nx, std::size_t nxy,
                                             FirstCell&& first_cell,
                                             RowCell&& row_cell) {
  std::array<std::size_t, W> rows;
  std::array<const T*, W> ym;
  std::array<const T*, W> zm;
  std::array<const T*, W> yzm;
  std::array<double, W> left;
  for (std::size_t w = 0; w < W; ++w) {
    rows[w] = plane + (y + w) * nx;
    const T* rc = recon + rows[w];
    ym[w] = rc - nx;
    zm[w] = rc - nxy;
    yzm[w] = zm[w] - nx;
    left[w] = first_cell(w, rows[w], y + w);
  }
  const auto ramp = [&](std::size_t x) __attribute__((always_inline)) {
    [&]<std::size_t... Ws>(std::index_sequence<Ws...>)
        __attribute__((always_inline)) {
          (((x >= 1 + Ws * kRowLag && x < nx + Ws * kRowLag)
                ? (void)(left[Ws] = row_cell(
                       Ws, rows[Ws] + (x - Ws * kRowLag),
                       lorenzo_row_predict(left[Ws], ym[Ws], zm[Ws], yzm[Ws],
                                           x - Ws * kRowLag)))
                : (void)0),
           ...);
        }(std::make_index_sequence<W>{});
  };
  // Ramp-up and drain keep the per-lane range tests; the steady-state
  // loop (every lane in flight) runs branchless.
  const std::size_t steady_begin = 1 + (W - 1) * kRowLag;
  const std::size_t x_end = nx + (W - 1) * kRowLag;
  std::size_t x = 1;
  for (; x < steady_begin && x < x_end; ++x) ramp(x);
  for (; x < nx; ++x) {
    [&]<std::size_t... Ws>(std::index_sequence<Ws...>)
        __attribute__((always_inline)) {
          ((left[Ws] = row_cell(Ws, rows[Ws] + (x - Ws * kRowLag),
                                lorenzo_row_predict(left[Ws], ym[Ws], zm[Ws],
                                                    yzm[Ws],
                                                    x - Ws * kRowLag))),
           ...);
        }(std::make_index_sequence<W>{});
  }
  for (; x < x_end; ++x) ramp(x);
}

/// Quantizes one block: fills `codes` and `recon` (the values the
/// decompressor will see). Returns the number of outliers (codes[i] == 0
/// cells); their exact values are collected by a second pass in compress.
/// `wide` selects the fast-profile wavefront scan order.
template <class T>
std::size_t quantize_block(const T* block, Dims3 dims, double eb,
                           std::uint32_t radius, std::uint32_t* codes,
                           T* recon, const TilePlan* plan, bool wide) {
  const ReconView<T> view{recon, dims};
  const std::size_t nx = dims.nx;
  const std::size_t nxy = dims.nx * dims.ny;
  std::size_t n_outliers = 0;

  // Returns the just-reconstructed value, filtered, so callers can carry
  // the west neighbour in a register instead of reloading recon[i].
  const auto cell = [&](std::size_t i, double pred)
      __attribute__((always_inline)) -> double {
    const double value = static_cast<double>(block[i]);
    if (eb > 0) {
      QuantResult q = quantize(value, pred, eb, radius);
      if (!q.outlier) {
        // The decompressor stores T; validate the bound on the rounded
        // value so float truncation cannot break the contract.
        const T stored = static_cast<T>(q.reconstructed);
        if (std::fabs(static_cast<double>(stored) - value) <= eb) {
          codes[i] = q.code;
          recon[i] = stored;
          return finite_or_zero(static_cast<double>(stored));
        }
      }
    }
    codes[i] = 0;
    recon[i] = block[i];  // exact
    ++n_outliers;
    return finite_or_zero(static_cast<double>(block[i]));
  };

  if (plan == nullptr) {
    for (std::size_t z = 0; z < dims.nz; ++z) {
      const std::size_t plane = z * nxy;
      if (z == 0) {
        for (std::size_t y = 0; y < dims.ny; ++y)
          for (std::size_t x = 0; x < nx; ++x)
            cell(plane + y * nx + x, lorenzo_predict(view, x, y, z));
        continue;
      }
      for (std::size_t x = 0; x < nx; ++x)
        cell(plane + x, lorenzo_predict(view, x, 0, z));
      std::size_t y = 1;
      if (wide) {
        for (; y + (kWaveRows - 1) < dims.ny; y += kWaveRows)
          wave_rows<kWaveRows, T>(
              recon, plane, y, nx, nxy,
              [&](std::size_t, std::size_t i, std::size_t yy)
                  __attribute__((always_inline)) {
                    return cell(i, lorenzo_predict(view, 0, yy, z));
                  },
              [&](std::size_t, std::size_t i, double pred)
                  __attribute__((always_inline)) { return cell(i, pred); });
      }
      // Interleave triples of interior rows, each staggered kRowLag cells
      // behind the one above: row y+1's cell x only reads row-y cells
      // <= x - 1, all retired at least kRowLag iterations earlier, so the
      // three dependency chains are independent and overlap. Under the
      // wide profile this also mops up the <= kWaveRows-1 rows left after
      // the last full wavefront (both orders compute identical values).
      for (; y + 2 < dims.ny; y += 3) {
        const std::size_t r0 = plane + y * nx;
        const std::size_t r1 = r0 + nx;
        const std::size_t r2 = r1 + nx;
        const T* rc0 = recon + r0;
        const T* ym0 = rc0 - nx;
        const T* zm0 = rc0 - nxy;
        const T* yzm0 = zm0 - nx;
        const T* ym1 = rc0;
        const T* zm1 = zm0 + nx;
        const T* yzm1 = zm0;
        const T* ym2 = rc0 + nx;
        const T* zm2 = zm1 + nx;
        const T* yzm2 = zm1;
        double l0 = cell(r0, lorenzo_predict(view, 0, y, z));
        double l1 = cell(r1, lorenzo_predict(view, 0, y + 1, z));
        double l2 = cell(r2, lorenzo_predict(view, 0, y + 2, z));
        for (std::size_t x = 1; x < nx + 2 * kRowLag; ++x) {
          if (x < nx)
            l0 = cell(r0 + x, lorenzo_row_predict(l0, ym0, zm0, yzm0, x));
          if (x >= 1 + kRowLag && x < nx + kRowLag) {
            const std::size_t xb = x - kRowLag;
            l1 = cell(r1 + xb, lorenzo_row_predict(l1, ym1, zm1, yzm1, xb));
          }
          if (x >= 1 + 2 * kRowLag) {
            const std::size_t xc = x - 2 * kRowLag;
            l2 = cell(r2 + xc, lorenzo_row_predict(l2, ym2, zm2, yzm2, xc));
          }
        }
      }
      for (; y < dims.ny; ++y) {
        const std::size_t row = plane + y * nx;
        const T* rc = recon + row;
        const T* ym = rc - nx;
        const T* zm = rc - nxy;
        const T* yzm = zm - nx;
        double left = cell(row, lorenzo_predict(view, 0, y, z));
        for (std::size_t x = 1; x < nx; ++x)
          left = cell(row + x, lorenzo_row_predict(left, ym, zm, yzm, x));
      }
    }
    return n_outliers;
  }

  const std::size_t pb = plan->pred_block;
  for (std::size_t z = 0; z < dims.nz; ++z) {
    const std::size_t tz = z / pb;
    for (std::size_t y = 0; y < dims.ny; ++y) {
      const std::size_t ty = y / pb;
      const std::size_t row = z * nxy + y * nx;
      const T* rc = recon + row;
      for (std::size_t tx = 0; tx < plan->tiles.nx; ++tx) {
        const std::size_t x0 = tx * pb;
        const std::size_t x1 = std::min(nx, x0 + pb);
        const std::int32_t fi = plan->fit_index[plan->tiles.index(tx, ty, tz)];
        if (fi >= 0) {
          const Box3 box = plan->tile_box(dims, tx, ty, tz);
          const PlaneFit& f = plan->fits[static_cast<std::size_t>(fi)];
          const double cx =
              (static_cast<double>(box.x1 - box.x0) - 1) / 2.0;
          const double cy =
              (static_cast<double>(box.y1 - box.y0) - 1) / 2.0;
          const double cz =
              (static_cast<double>(box.z1 - box.z0) - 1) / 2.0;
          const double b0 = static_cast<double>(f.b0);
          const double bx = static_cast<double>(f.bx);
          const double byuy = static_cast<double>(f.by) *
                              (static_cast<double>(y - box.y0) - cy);
          const double bzuz = static_cast<double>(f.bz) *
                              (static_cast<double>(z - box.z0) - cz);
          for (std::size_t x = x0; x < x1; ++x)
            cell(row + x,
                 ((b0 + bx * (static_cast<double>(x - box.x0) - cx)) + byuy) +
                     bzuz);
        } else if (z == 0 || y == 0) {
          for (std::size_t x = x0; x < x1; ++x)
            cell(row + x, lorenzo_predict(view, x, y, z));
        } else {
          const T* ym = rc - nx;
          const T* zm = rc - nxy;
          const T* yzm = zm - nx;
          std::size_t x = x0;
          double left = 0;
          if (x == 0) {
            left = cell(row, lorenzo_predict(view, 0, y, z));
            ++x;
          } else {
            left = finite_or_zero(static_cast<double>(rc[x - 1]));
          }
          for (; x < x1; ++x)
            left = cell(row + x, lorenzo_row_predict(left, ym, zm, yzm, x));
        }
      }
    }
  }
  return n_outliers;
}

template <class T>
void reconstruct_block(const std::uint32_t* codes, Dims3 dims, double eb,
                       std::uint32_t radius, const T* outliers,
                       std::size_t n_outliers, T* out, const TilePlan* plan,
                       bool wide) {
  const ReconView<T> view{out, dims};
  const std::size_t nx = dims.nx;
  const std::size_t nxy = dims.nx * dims.ny;
  std::size_t oi = 0;

  const auto take_outlier = [&](std::size_t i) {
    if (oi >= n_outliers)
      throw std::runtime_error("sz: outlier stream underrun");
    out[i] = outliers[oi++];
  };

  if (plan == nullptr) {
    // Dequantized cell with an explicit outlier cursor (so interleaved
    // rows can each hold their own scan-order position). Every neighbour
    // a prediction reads precedes the cell in scan order, so computing
    // pred eagerly only ever touches already-written memory.
    const auto rcell = [&](std::size_t i, double pred, std::size_t& oix)
        __attribute__((always_inline)) -> double {
      const std::uint32_t code = codes[i];
      T v;
      if (code == 0) {
        if (oix >= n_outliers)
          throw std::runtime_error("sz: outlier stream underrun");
        v = outliers[oix++];
      } else {
        v = static_cast<T>(dequantize(code, pred, eb, radius));
      }
      out[i] = v;
      return finite_or_zero(static_cast<double>(v));
    };

    for (std::size_t z = 0; z < dims.nz; ++z) {
      const std::size_t plane = z * nxy;
      if (z == 0) {
        for (std::size_t y = 0; y < dims.ny; ++y)
          for (std::size_t x = 0; x < nx; ++x)
            rcell(plane + y * nx + x, lorenzo_predict(view, x, y, z), oi);
        continue;
      }
      for (std::size_t x = 0; x < nx; ++x)
        rcell(plane + x, lorenzo_predict(view, x, 0, z), oi);
      std::size_t y = 1;
      if (wide) {
        for (; y + (kWaveRows - 1) < dims.ny; y += kWaveRows) {
          // Per-row outlier cursors: row w starts past every code-0 cell
          // of the rows above it, so the k-th zero cell in scan order
          // still takes outliers[k] — the wavefront only reorders the
          // instruction schedule.
          std::array<std::size_t, kWaveRows> cur;
          cur[0] = oi;
          for (std::size_t w = 0; w + 1 < kWaveRows; ++w) {
            const std::size_t row = plane + (y + w) * nx;
            std::size_t zeros = 0;
            for (std::size_t x = 0; x < nx; ++x) zeros += codes[row + x] == 0;
            cur[w + 1] = cur[w] + zeros;
          }
          wave_rows<kWaveRows, T>(
              out, plane, y, nx, nxy,
              [&](std::size_t w, std::size_t i, std::size_t yy)
                  __attribute__((always_inline)) {
                    return rcell(i, lorenzo_predict(view, 0, yy, z), cur[w]);
                  },
              [&](std::size_t w, std::size_t i, double pred)
                  __attribute__((always_inline)) {
                    return rcell(i, pred, cur[w]);
                  });
          oi = cur[kWaveRows - 1];
        }
      }
      for (; y + 2 < dims.ny; y += 3) {
        const std::size_t r0 = plane + y * nx;
        const std::size_t r1 = r0 + nx;
        const std::size_t r2 = r1 + nx;
        // Each lower row's cursor starts past every code-0 cell of the
        // rows above it: the k-th zero cell in scan order still takes
        // outliers[k], the stagger only reorders the instruction
        // schedule.
        std::size_t zeros0 = 0;
        std::size_t zeros1 = 0;
        for (std::size_t x = 0; x < nx; ++x) zeros0 += codes[r0 + x] == 0;
        for (std::size_t x = 0; x < nx; ++x) zeros1 += codes[r1 + x] == 0;
        std::size_t oi0 = oi;
        std::size_t oi1 = oi + zeros0;
        std::size_t oi2 = oi1 + zeros1;
        const T* rc0 = out + r0;
        const T* ym0 = rc0 - nx;
        const T* zm0 = rc0 - nxy;
        const T* yzm0 = zm0 - nx;
        const T* ym1 = rc0;
        const T* zm1 = zm0 + nx;
        const T* yzm1 = zm0;
        const T* ym2 = rc0 + nx;
        const T* zm2 = zm1 + nx;
        const T* yzm2 = zm1;
        double l0 = rcell(r0, lorenzo_predict(view, 0, y, z), oi0);
        double l1 = rcell(r1, lorenzo_predict(view, 0, y + 1, z), oi1);
        double l2 = rcell(r2, lorenzo_predict(view, 0, y + 2, z), oi2);
        for (std::size_t x = 1; x < nx + 2 * kRowLag; ++x) {
          if (x < nx)
            l0 = rcell(r0 + x, lorenzo_row_predict(l0, ym0, zm0, yzm0, x),
                       oi0);
          if (x >= 1 + kRowLag && x < nx + kRowLag) {
            const std::size_t xb = x - kRowLag;
            l1 = rcell(r1 + xb, lorenzo_row_predict(l1, ym1, zm1, yzm1, xb),
                       oi1);
          }
          if (x >= 1 + 2 * kRowLag) {
            const std::size_t xc = x - 2 * kRowLag;
            l2 = rcell(r2 + xc, lorenzo_row_predict(l2, ym2, zm2, yzm2, xc),
                       oi2);
          }
        }
        oi = oi2;
      }
      for (; y < dims.ny; ++y) {
        const std::size_t row = plane + y * nx;
        const T* rc = out + row;
        const T* ym = rc - nx;
        const T* zm = rc - nxy;
        const T* yzm = zm - nx;
        double left = rcell(row, lorenzo_predict(view, 0, y, z), oi);
        for (std::size_t x = 1; x < nx; ++x)
          left = rcell(row + x, lorenzo_row_predict(left, ym, zm, yzm, x), oi);
      }
    }
    if (oi != n_outliers)
      throw std::runtime_error("sz: outlier stream not fully consumed");
    return;
  }

  const std::size_t pb = plan->pred_block;
  for (std::size_t z = 0; z < dims.nz; ++z) {
    const std::size_t tz = z / pb;
    for (std::size_t y = 0; y < dims.ny; ++y) {
      const std::size_t ty = y / pb;
      const std::size_t row = z * nxy + y * nx;
      const T* rc = out + row;
      for (std::size_t tx = 0; tx < plan->tiles.nx; ++tx) {
        const std::size_t x0 = tx * pb;
        const std::size_t x1 = std::min(nx, x0 + pb);
        const std::int32_t fi = plan->fit_index[plan->tiles.index(tx, ty, tz)];
        if (fi >= 0) {
          const Box3 box = plan->tile_box(dims, tx, ty, tz);
          const PlaneFit& f = plan->fits[static_cast<std::size_t>(fi)];
          const double cx =
              (static_cast<double>(box.x1 - box.x0) - 1) / 2.0;
          const double cy =
              (static_cast<double>(box.y1 - box.y0) - 1) / 2.0;
          const double cz =
              (static_cast<double>(box.z1 - box.z0) - 1) / 2.0;
          const double b0 = static_cast<double>(f.b0);
          const double bx = static_cast<double>(f.bx);
          const double byuy = static_cast<double>(f.by) *
                              (static_cast<double>(y - box.y0) - cy);
          const double bzuz = static_cast<double>(f.bz) *
                              (static_cast<double>(z - box.z0) - cz);
          for (std::size_t x = x0; x < x1; ++x) {
            const std::uint32_t code = codes[row + x];
            if (code == 0) {
              take_outlier(row + x);
            } else {
              const double pred =
                  ((b0 + bx * (static_cast<double>(x - box.x0) - cx)) +
                   byuy) +
                  bzuz;
              out[row + x] = static_cast<T>(dequantize(code, pred, eb, radius));
            }
          }
        } else if (z == 0 || y == 0) {
          for (std::size_t x = x0; x < x1; ++x) {
            const std::uint32_t code = codes[row + x];
            if (code == 0) {
              take_outlier(row + x);
            } else {
              const double pred = lorenzo_predict(view, x, y, z);
              out[row + x] = static_cast<T>(dequantize(code, pred, eb, radius));
            }
          }
        } else {
          const T* ym = rc - nx;
          const T* zm = rc - nxy;
          const T* yzm = zm - nx;
          std::size_t x = x0;
          if (x == 0) {
            const std::uint32_t code = codes[row];
            if (code == 0)
              take_outlier(row);
            else
              out[row] = static_cast<T>(dequantize(
                  code, lorenzo_predict(view, 0, y, z), eb, radius));
            ++x;
          }
          if (x < x1) {
            double left = finite_or_zero(static_cast<double>(rc[x - 1]));
            for (; x < x1; ++x) {
              const std::uint32_t code = codes[row + x];
              if (code == 0) {
                take_outlier(row + x);
              } else {
                const double pred = lorenzo_row_predict(left, ym, zm, yzm, x);
                out[row + x] =
                    static_cast<T>(dequantize(code, pred, eb, radius));
              }
              left = finite_or_zero(static_cast<double>(rc[x]));
            }
          }
        }
      }
    }
  }
  if (oi != n_outliers)
    throw std::runtime_error("sz: outlier stream not fully consumed");
}

}  // namespace

template <class T>
ValueRange scan_range(std::span<const T> data) {
#if TAC_SIMD_X86 && defined(__GNUC__)
  switch (simd::active_level()) {
    case simd::Level::kAVX2:
      return scan_range_avx2(data.data(), data.size());
    case simd::Level::kSSE42:
      return scan_range_sse42(data.data(), data.size());
    case simd::Level::kScalar:
      break;
  }
#endif
  return scan_range_scalar(data.data(), data.size());
}

template <class T>
std::vector<std::uint8_t> pack_sign_bits(std::span<const T> data) {
  std::vector<std::uint8_t> out((data.size() + 7) / 8, 0);
#if TAC_SIMD_X86 && defined(__GNUC__)
  switch (simd::active_level()) {
    case simd::Level::kAVX2:
      pack_sign_avx2(data.data(), data.size(), out.data());
      return out;
    case simd::Level::kSSE42:
      pack_sign_sse42(data.data(), data.size(), out.data());
      return out;
    case simd::Level::kScalar:
      break;
  }
#endif
  pack_sign_tail(data.data(), std::size_t{0}, data.size(), out.data());
  return out;
}

template <class T>
std::vector<std::uint8_t> compress(std::span<const T> data, Dims3 dims,
                                   const SzConfig& cfg, std::size_t nblocks) {
  const std::size_t vol = dims.volume();
  if (vol == 0 || nblocks == 0)
    throw std::invalid_argument("sz::compress: empty dims");
  if (data.size() != vol * nblocks)
    throw std::invalid_argument("sz::compress: data size != dims * nblocks");
  if (cfg.mode == ErrorBoundMode::kAbsolute &&
      !(cfg.error_bound > 0 && std::isfinite(cfg.error_bound)))
    throw std::invalid_argument("sz::compress: absolute bound must be > 0");
  if (cfg.quant_radius < 2 || cfg.quant_radius > (1u << 30))
    throw std::invalid_argument("sz::compress: quant_radius out of range");
  if (cfg.predictor == Predictor::kHybrid && cfg.pred_block < 2)
    throw std::invalid_argument("sz::compress: pred_block must be >= 2");

  TAC_SPAN_BYTES("sz.compress", data.size_bytes());
  TAC_COUNTER_ADD("sz.bytes_in", data.size_bytes());
  TAC_COUNTER_ADD("sz.blocks", nblocks);

  if (cfg.mode == ErrorBoundMode::kPointwiseRelative) {
    if (!(cfg.error_bound > 0) || !std::isfinite(cfg.error_bound))
      throw std::invalid_argument(
          "sz::compress: point-wise relative bound must be > 0");
    // Log transform: bounding |log v' - log v| by log(1 + eb) bounds the
    // ratio v'/v in [1/(1+eb), 1+eb]. A 1% margin absorbs the float
    // rounding of the log/exp pair (see config.hpp caveat for float).
    const double theta = std::log1p(cfg.error_bound * 0.99);
    std::vector<T> logs(data.size());
    std::vector<std::pair<std::uint64_t, T>> exceptions;
    for (std::size_t i = 0; i < data.size(); ++i) {
      const double v = static_cast<double>(data[i]);
      const double a = std::fabs(v);
      if (v == 0.0 || !std::isfinite(v)) {
        exceptions.emplace_back(i, data[i]);
        logs[i] = T{0};
      } else {
        logs[i] = static_cast<T>(std::log(a));
      }
    }
    SzConfig inner_cfg = cfg;
    inner_cfg.mode = ErrorBoundMode::kAbsolute;
    inner_cfg.error_bound = theta;
    const auto inner =
        compress<T>(std::span<const T>(logs), dims, inner_cfg, nblocks);

    ByteWriter w;
    w.put<std::uint16_t>(kMagic);
    w.put<std::uint8_t>(kVersion);
    w.put<std::uint8_t>(static_cast<std::uint8_t>(sizeof(T)));
    w.put_varint(dims.nx);
    w.put_varint(dims.ny);
    w.put_varint(dims.nz);
    w.put_varint(nblocks);
    w.put<std::uint8_t>(static_cast<std::uint8_t>(cfg.mode));
    w.put<double>(cfg.error_bound);
    w.put<double>(theta);  // abs bound slot carries the log-domain bound
    w.put<double>(0.0);
    w.put_varint(cfg.quant_radius);
    w.put<std::uint8_t>(static_cast<std::uint8_t>(cfg.predictor));
    w.put_varint(cfg.pred_block);
    w.put<std::uint8_t>(static_cast<std::uint8_t>(StreamKind::kPwRel));
    w.put_blob(inner);
    w.put_blob(lossless::compress(pack_sign_bits(data), cfg.profile));
    w.put_varint(exceptions.size());
    std::uint64_t prev = 0;
    for (const auto& [idx, val] : exceptions) {
      w.put_varint(idx - prev);
      prev = idx;
      w.put<T>(val);
    }
    return w.take();
  }

  const ValueRange range = [&] {
    TAC_SPAN_BYTES("sz.scan_range", data.size_bytes());
    return scan_range(data);
  }();
  const double span_val =
      std::isfinite(range.hi - range.lo) && range.hi > range.lo
          ? range.hi - range.lo
          : 0.0;
  double abs_eb = cfg.mode == ErrorBoundMode::kAbsolute
                      ? cfg.error_bound
                      : cfg.error_bound * span_val;
  if (!(abs_eb > 0) || !std::isfinite(abs_eb)) abs_eb = 0;  // lossless path

  ByteWriter w;
  w.put<std::uint16_t>(kMagic);
  w.put<std::uint8_t>(kVersion);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(sizeof(T)));
  w.put_varint(dims.nx);
  w.put_varint(dims.ny);
  w.put_varint(dims.nz);
  w.put_varint(nblocks);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(cfg.mode));
  w.put<double>(cfg.error_bound);
  w.put<double>(abs_eb);
  w.put<double>(span_val);
  w.put_varint(cfg.quant_radius);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(cfg.predictor));
  w.put_varint(cfg.pred_block);

  if (range.all_identical) {
    w.put<std::uint8_t>(static_cast<std::uint8_t>(StreamKind::kConstant));
    w.put<T>(data[0]);
    return w.take();
  }
  w.put<std::uint8_t>(static_cast<std::uint8_t>(StreamKind::kGeneral));

  const bool hybrid = cfg.predictor == Predictor::kHybrid;

  // All per-call scratch comes from the thread's bump arena: in the level
  // pipeline this function runs thousands of times per container, and the
  // steady-state path performs no heap allocation at all.
  ArenaScope scratch;
  const auto codes = scratch.alloc<std::uint32_t>(data.size());
  const auto recon = scratch.alloc<T>(data.size());
  const auto offsets = scratch.alloc<std::size_t>(nblocks + 1);
  std::vector<TilePlan> plans(hybrid ? nblocks : 0);
  {
    TAC_SPAN_BYTES("sz.quantize", data.size_bytes());
    parallel_for(
        0, nblocks,
        [&](std::size_t b) {
          const TilePlan* plan = nullptr;
          if (hybrid) {
            plans[b] = plan_tiles(data.data() + b * vol, dims, cfg.pred_block);
            plan = &plans[b];
          }
          offsets[b + 1] =
              quantize_block(data.data() + b * vol, dims, abs_eb,
                             cfg.quant_radius, codes.data() + b * vol,
                             recon.data() + b * vol, plan,
                             cfg.profile == lossless::CodecProfile::kFast);
        },
        /*grain=*/1);
  }

  offsets[0] = 0;
  for (std::size_t b = 0; b < nblocks; ++b) offsets[b + 1] += offsets[b];

  // Second pass: outlier cells are exactly the codes[i] == 0 cells, and
  // their exact values are the original data — gather them in scan order
  // (the same order the old per-block vectors accumulated them in).
  const auto outliers = scratch.alloc<T>(offsets[nblocks]);
  TAC_COUNTER_ADD("sz.outliers", offsets[nblocks]);
  {
    TAC_SPAN("sz.outlier_gather");
    parallel_for(
        0, nblocks,
        [&](std::size_t b) {
          std::size_t k = offsets[b];
          const std::uint32_t* bc = codes.data() + b * vol;
          const T* bd = data.data() + b * vol;
          for (std::size_t i = 0; i < vol; ++i)
            if (bc[i] == 0) outliers[k++] = bd[i];
        },
        /*grain=*/1);
  }

  ByteWriter counts_w;
  for (std::size_t b = 0; b < nblocks; ++b)
    counts_w.put_varint(offsets[b + 1] - offsets[b]);

  const auto huff = lossless::huffman_compress(
      std::span<const std::uint32_t>(codes.data(), codes.size()));
  const auto huff_packed = lossless::compress(huff, cfg.profile);
  w.put_blob(huff_packed);

  std::span<const std::uint8_t> outlier_bytes{
      reinterpret_cast<const std::uint8_t*>(outliers.data()),
      outliers.size() * sizeof(T)};
  const auto outliers_packed = lossless::compress(outlier_bytes, cfg.profile);
  w.put_blob(outliers_packed);
  w.put_blob(counts_w.buffer());

  if (hybrid) {
    // Tile mode bits (1 = regression) and plane coefficients, both across
    // all blocks in order.
    std::vector<std::uint8_t> mode_bits;
    std::vector<std::uint8_t> coeff_bytes;
    std::size_t bit = 0;
    for (const TilePlan& plan : plans) {
      for (const std::int32_t fi : plan.fit_index) {
        if (bit % 8 == 0) mode_bits.push_back(0);
        if (fi >= 0)
          mode_bits.back() |= static_cast<std::uint8_t>(1u << (bit % 8));
        ++bit;
      }
      for (const PlaneFit& f : plan.fits) {
        const float c[4] = {f.b0, f.bx, f.by, f.bz};
        const auto* pc = reinterpret_cast<const std::uint8_t*>(c);
        coeff_bytes.insert(coeff_bytes.end(), pc, pc + sizeof(c));
      }
    }
    w.put_blob(lossless::compress(mode_bits, cfg.profile));
    w.put_blob(lossless::compress(coeff_bytes, cfg.profile));
  }
  auto out = w.take();
  TAC_COUNTER_ADD("sz.bytes_out", out.size());
  return out;
}

namespace {

struct Header {
  SzStreamInfo info;
  SzConfig cfg;
  std::size_t payload_offset = 0;
  StreamKind kind = StreamKind::kGeneral;
};

Header read_header(ByteReader& r) {
  Header h;
  if (r.get<std::uint16_t>() != kMagic)
    throw std::runtime_error("sz: bad magic");
  if (r.get<std::uint8_t>() != kVersion)
    throw std::runtime_error("sz: unsupported version");
  h.info.scalar_size = r.get<std::uint8_t>();
  h.info.block_dims.nx = static_cast<std::size_t>(r.get_varint());
  h.info.block_dims.ny = static_cast<std::size_t>(r.get_varint());
  h.info.block_dims.nz = static_cast<std::size_t>(r.get_varint());
  h.info.nblocks = static_cast<std::size_t>(r.get_varint());
  h.cfg.mode = static_cast<ErrorBoundMode>(r.get<std::uint8_t>());
  h.cfg.error_bound = r.get<double>();
  h.info.abs_error_bound = r.get<double>();
  h.info.value_range = r.get<double>();
  h.cfg.quant_radius = static_cast<std::uint32_t>(r.get_varint());
  h.cfg.predictor = static_cast<Predictor>(r.get<std::uint8_t>());
  h.cfg.pred_block = static_cast<std::size_t>(r.get_varint());
  h.kind = static_cast<StreamKind>(r.get<std::uint8_t>());
  h.info.constant = h.kind == StreamKind::kConstant;
  return h;
}

}  // namespace

template <class T>
std::vector<T> decompress(std::span<const std::uint8_t> bytes,
                          std::optional<lossless::CodecProfile> expected) {
  TAC_SPAN_BYTES("sz.decompress", bytes.size());
  TAC_COUNTER_ADD("sz.decompress_bytes_in", bytes.size());
  ByteReader r(bytes);
  Header h = read_header(r);
  if (h.info.scalar_size != sizeof(T))
    throw std::runtime_error("sz::decompress: scalar type mismatch");
  const std::size_t vol = h.info.block_dims.volume();
  const std::size_t total = vol * h.info.nblocks;

  // Strict when the container declared a profile for this payload,
  // lenient (dispatch on each stream's own method byte) otherwise.
  const auto unpack = [&](std::span<const std::uint8_t> blob) {
    return expected ? lossless::decompress(blob, *expected)
                    : lossless::decompress(blob);
  };

  if (h.kind == StreamKind::kConstant) {
    const T v = r.get<T>();
    return std::vector<T>(total, v);
  }

  if (h.kind == StreamKind::kPwRel) {
    const auto inner = r.get_blob();
    std::vector<T> logs = decompress<T>(inner, expected);
    if (logs.size() != total)
      throw std::runtime_error("sz::decompress: pw-rel payload mismatch");
    const auto sign_bytes = unpack(r.get_blob());
    if (sign_bytes.size() < (total + 7) / 8)
      throw std::runtime_error("sz::decompress: pw-rel sign bits truncated");
    std::vector<T> out(total);
    for (std::size_t i = 0; i < total; ++i) {
      const double mag = std::exp(static_cast<double>(logs[i]));
      const bool neg = (sign_bytes[i / 8] >> (i % 8)) & 1u;
      out[i] = static_cast<T>(neg ? -mag : mag);
    }
    const std::uint64_t nex = r.get_varint();
    std::uint64_t idx = 0;
    for (std::uint64_t e = 0; e < nex; ++e) {
      idx += r.get_varint();
      if (idx >= total)
        throw std::runtime_error("sz::decompress: pw-rel exception index");
      out[idx] = r.get<T>();
    }
    return out;
  }

  const auto huff_packed = r.get_blob();
  const auto huff = unpack(huff_packed);
  const auto codes = lossless::huffman_decompress(huff);
  if (codes.size() != total)
    throw std::runtime_error("sz::decompress: code count mismatch");

  ArenaScope scratch;
  const auto outliers_packed = r.get_blob();
  const auto outlier_bytes = unpack(outliers_packed);
  if (outlier_bytes.size() % sizeof(T) != 0)
    throw std::runtime_error("sz::decompress: outlier byte count");
  const auto outliers = scratch.alloc<T>(outlier_bytes.size() / sizeof(T));
  if (!outlier_bytes.empty())
    std::memcpy(outliers.data(), outlier_bytes.data(), outlier_bytes.size());

  const auto counts_blob = r.get_blob();
  ByteReader counts_r(counts_blob);
  const auto offsets = scratch.alloc<std::size_t>(h.info.nblocks + 1);
  offsets[0] = 0;
  for (std::size_t b = 0; b < h.info.nblocks; ++b)
    offsets[b + 1] =
        offsets[b] + static_cast<std::size_t>(counts_r.get_varint());
  if (offsets.back() != outliers.size())
    throw std::runtime_error("sz::decompress: outlier count mismatch");

  std::vector<TilePlan> plans;
  if (h.cfg.predictor == Predictor::kHybrid) {
    const auto mode_bits = unpack(r.get_blob());
    const auto coeff_bytes = unpack(r.get_blob());
    if (coeff_bytes.size() % (4 * sizeof(float)) != 0)
      throw std::runtime_error("sz::decompress: coefficient payload");
    const Dims3 tiles = tile_counts(h.info.block_dims, h.cfg.pred_block);
    const std::size_t ntiles = tiles.volume();
    if (mode_bits.size() < (ntiles * h.info.nblocks + 7) / 8)
      throw std::runtime_error("sz::decompress: tile mode payload");
    plans.resize(h.info.nblocks);
    std::size_t bit = 0;
    std::size_t coeff = 0;
    const std::size_t ncoeffs = coeff_bytes.size() / sizeof(float);
    const auto* cf = reinterpret_cast<const float*>(coeff_bytes.data());
    for (TilePlan& plan : plans) {
      plan.pred_block = h.cfg.pred_block;
      plan.tiles = tiles;
      plan.fit_index.assign(ntiles, -1);
      for (std::size_t t = 0; t < ntiles; ++t, ++bit) {
        if ((mode_bits[bit / 8] >> (bit % 8)) & 1u) {
          if (coeff + 4 > ncoeffs)
            throw std::runtime_error("sz::decompress: coefficient underrun");
          plan.fit_index[t] = static_cast<std::int32_t>(plan.fits.size());
          plan.fits.push_back(
              PlaneFit{cf[coeff], cf[coeff + 1], cf[coeff + 2],
                       cf[coeff + 3]});
          coeff += 4;
        }
      }
    }
  }

  std::vector<T> out(total);
  const double eb = h.info.abs_error_bound;
  const std::uint32_t radius = h.cfg.quant_radius;
  const bool wide = expected == lossless::CodecProfile::kFast;
  {
    TAC_SPAN_BYTES("sz.reconstruct", total * sizeof(T));
    parallel_for(
        0, h.info.nblocks,
        [&](std::size_t b) {
          reconstruct_block(codes.data() + b * vol, h.info.block_dims, eb,
                            radius, outliers.data() + offsets[b],
                            offsets[b + 1] - offsets[b], out.data() + b * vol,
                            plans.empty() ? nullptr : &plans[b], wide);
        },
        /*grain=*/1);
  }
  TAC_COUNTER_ADD("sz.decompress_bytes_out", out.size() * sizeof(T));
  return out;
}

SzStreamInfo peek(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  Header h = read_header(r);
  if (h.kind == StreamKind::kPwRel) {
    const auto inner = r.get_blob();
    const SzStreamInfo inner_info = peek(inner);
    h.info.n_outliers = inner_info.n_outliers;
    return h.info;
  }
  if (h.kind == StreamKind::kGeneral) {
    const auto huff_packed = r.get_blob();
    const auto outliers_packed = r.get_blob();
    const auto counts_blob = r.get_blob();
    ByteReader counts_r(counts_blob);
    std::size_t n = 0;
    for (std::size_t b = 0; b < h.info.nblocks; ++b)
      n += static_cast<std::size_t>(counts_r.get_varint());
    h.info.n_outliers = n;
    h.info.huffman_bytes = huff_packed.size();
    h.info.outlier_bytes = outliers_packed.size();
    h.info.metadata_bytes = bytes.size() - huff_packed.size() -
                            outliers_packed.size();
  }
  return h.info;
}

template ValueRange scan_range<float>(std::span<const float>);
template ValueRange scan_range<double>(std::span<const double>);
template std::vector<std::uint8_t> pack_sign_bits<float>(
    std::span<const float>);
template std::vector<std::uint8_t> pack_sign_bits<double>(
    std::span<const double>);
template std::vector<std::uint8_t> compress<float>(std::span<const float>,
                                                   Dims3, const SzConfig&,
                                                   std::size_t);
template std::vector<std::uint8_t> compress<double>(std::span<const double>,
                                                    Dims3, const SzConfig&,
                                                    std::size_t);
template std::vector<float> decompress<float>(
    std::span<const std::uint8_t>, std::optional<lossless::CodecProfile>);
template std::vector<double> decompress<double>(
    std::span<const std::uint8_t>, std::optional<lossless::CodecProfile>);

}  // namespace tac::sz
