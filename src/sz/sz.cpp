#include "sz/sz.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "common/bytes.hpp"
#include "common/parallel.hpp"
#include "lossless/codec.hpp"
#include "lossless/huffman.hpp"
#include "sz/predictor.hpp"
#include "sz/regression.hpp"
#include "sz/quantizer.hpp"

namespace tac::sz {
namespace {

constexpr std::uint16_t kMagic = 0x5A53;  // "SZ"
constexpr std::uint8_t kVersion = 1;

enum class StreamKind : std::uint8_t {
  kConstant = 0,
  kGeneral = 1,
  kPwRel = 2,  // log-transformed payload for point-wise relative bounds
};

struct Range {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  bool all_identical = true;
};

template <class T>
Range scan_range(std::span<const T> data) {
  Range r;
  if (data.empty()) return r;
  const T first = data[0];
  for (const T v : data) {
    if (std::memcmp(&v, &first, sizeof(T)) != 0) r.all_identical = false;
    const auto d = static_cast<double>(v);
    if (std::isfinite(d)) {
      r.lo = std::min(r.lo, d);
      r.hi = std::max(r.hi, d);
    }
  }
  return r;
}

/// Per-block tiling for the SZ2-style hybrid predictor: which tiles use
/// regression and their plane coefficients. `fit_index[tile]` is -1 for
/// Lorenzo tiles, else an index into `fits`.
struct TilePlan {
  std::size_t pred_block = 6;
  Dims3 tiles;
  std::vector<std::int32_t> fit_index;
  std::vector<PlaneFit> fits;

  [[nodiscard]] Box3 tile_box(Dims3 block_dims, std::size_t tx,
                              std::size_t ty, std::size_t tz) const {
    return Box3{tx * pred_block,
                ty * pred_block,
                tz * pred_block,
                std::min(block_dims.nx, (tx + 1) * pred_block),
                std::min(block_dims.ny, (ty + 1) * pred_block),
                std::min(block_dims.nz, (tz + 1) * pred_block)};
  }
};

Dims3 tile_counts(Dims3 dims, std::size_t pb) {
  return {ceil_div(dims.nx, pb), ceil_div(dims.ny, pb),
          ceil_div(dims.nz, pb)};
}

/// Chooses Lorenzo vs regression per tile by the smaller total absolute
/// residual estimated on the original values (SZ2's selection, without
/// sampling). The Lorenzo estimate uses original neighbours — a close
/// proxy for the reconstruction the decompressor will predict from.
template <class T>
TilePlan plan_tiles(const T* block, Dims3 dims, std::size_t pb) {
  TilePlan plan;
  plan.pred_block = pb;
  plan.tiles = tile_counts(dims, pb);
  plan.fit_index.assign(plan.tiles.volume(), -1);
  const ReconView<T> view{block, dims};
  std::size_t t = 0;
  for (std::size_t tz = 0; tz < plan.tiles.nz; ++tz)
    for (std::size_t ty = 0; ty < plan.tiles.ny; ++ty)
      for (std::size_t tx = 0; tx < plan.tiles.nx; ++tx, ++t) {
        const Box3 box = plan.tile_box(dims, tx, ty, tz);
        const PlaneFit fit = fit_plane(block, dims, box);
        double err_reg = 0, err_lor = 0;
        for (std::size_t z = box.z0; z < box.z1; ++z)
          for (std::size_t y = box.y0; y < box.y1; ++y)
            for (std::size_t x = box.x0; x < box.x1; ++x) {
              double v = static_cast<double>(block[dims.index(x, y, z)]);
              if (!std::isfinite(v)) v = 0.0;
              err_reg += std::fabs(v - plane_predict(fit, box, x, y, z));
              err_lor += std::fabs(v - lorenzo_predict(view, x, y, z));
            }
        if (err_reg < err_lor) {
          plan.fit_index[t] = static_cast<std::int32_t>(plan.fits.size());
          plan.fits.push_back(fit);
        }
      }
  return plan;
}

/// Prediction dispatch shared by compressor and decompressor. `recon`
/// holds already-reconstructed values for Lorenzo reads.
template <class T>
double predict_cell(const ReconView<T>& recon, const TilePlan* plan,
                    Dims3 dims, std::size_t x, std::size_t y,
                    std::size_t z) {
  if (plan != nullptr) {
    const std::size_t pb = plan->pred_block;
    const std::size_t t =
        plan->tiles.index(x / pb, y / pb, z / pb);
    const std::int32_t fi = plan->fit_index[t];
    if (fi >= 0) {
      const Box3 box =
          plan->tile_box(dims, x / pb, y / pb, z / pb);
      return plane_predict(plan->fits[static_cast<std::size_t>(fi)], box, x,
                           y, z);
    }
  }
  return lorenzo_predict(recon, x, y, z);
}

/// Quantizes one block in place: fills `codes` (volume entries) and appends
/// exact values for outliers. `recon` holds the values the decompressor
/// will see; predictions read from it.
template <class T>
void quantize_block(const T* block, Dims3 dims, double eb,
                    std::uint32_t radius, std::uint32_t* codes, T* recon,
                    std::vector<T>& outliers, const TilePlan* plan) {
  const ReconView<T> view{recon, dims};
  std::size_t i = 0;
  for (std::size_t z = 0; z < dims.nz; ++z)
    for (std::size_t y = 0; y < dims.ny; ++y)
      for (std::size_t x = 0; x < dims.nx; ++x, ++i) {
        const double value = static_cast<double>(block[i]);
        const double pred = predict_cell(view, plan, dims, x, y, z);
        bool outlier = true;
        if (eb > 0) {
          QuantResult q = quantize(value, pred, eb, radius);
          if (!q.outlier) {
            // The decompressor stores T; validate the bound on the rounded
            // value so float truncation cannot break the contract.
            const T stored = static_cast<T>(q.reconstructed);
            if (std::fabs(static_cast<double>(stored) - value) <= eb) {
              codes[i] = q.code;
              recon[i] = stored;
              outlier = false;
            }
          }
        }
        if (outlier) {
          codes[i] = 0;
          recon[i] = block[i];  // exact
          outliers.push_back(block[i]);
        }
      }
}

template <class T>
void reconstruct_block(const std::uint32_t* codes, Dims3 dims, double eb,
                       std::uint32_t radius, const T* outliers,
                       std::size_t n_outliers, T* out,
                       const TilePlan* plan) {
  const ReconView<T> view{out, dims};
  std::size_t oi = 0;
  std::size_t i = 0;
  for (std::size_t z = 0; z < dims.nz; ++z)
    for (std::size_t y = 0; y < dims.ny; ++y)
      for (std::size_t x = 0; x < dims.nx; ++x, ++i) {
        const std::uint32_t code = codes[i];
        if (code == 0) {
          if (oi >= n_outliers)
            throw std::runtime_error("sz: outlier stream underrun");
          out[i] = outliers[oi++];
        } else {
          const double pred = predict_cell(view, plan, dims, x, y, z);
          out[i] = static_cast<T>(dequantize(code, pred, eb, radius));
        }
      }
  if (oi != n_outliers)
    throw std::runtime_error("sz: outlier stream not fully consumed");
}

/// Packs one bit per value (negative sign) into bytes.
template <class T>
std::vector<std::uint8_t> pack_sign_bits(std::span<const T> data) {
  std::vector<std::uint8_t> out((data.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < data.size(); ++i)
    if (std::signbit(static_cast<double>(data[i])))
      out[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  return out;
}

}  // namespace

template <class T>
std::vector<std::uint8_t> compress(std::span<const T> data, Dims3 dims,
                                   const SzConfig& cfg, std::size_t nblocks) {
  const std::size_t vol = dims.volume();
  if (vol == 0 || nblocks == 0)
    throw std::invalid_argument("sz::compress: empty dims");
  if (data.size() != vol * nblocks)
    throw std::invalid_argument("sz::compress: data size != dims * nblocks");
  if (cfg.mode == ErrorBoundMode::kAbsolute &&
      !(cfg.error_bound > 0 && std::isfinite(cfg.error_bound)))
    throw std::invalid_argument("sz::compress: absolute bound must be > 0");
  if (cfg.quant_radius < 2 || cfg.quant_radius > (1u << 30))
    throw std::invalid_argument("sz::compress: quant_radius out of range");
  if (cfg.predictor == Predictor::kHybrid && cfg.pred_block < 2)
    throw std::invalid_argument("sz::compress: pred_block must be >= 2");

  if (cfg.mode == ErrorBoundMode::kPointwiseRelative) {
    if (!(cfg.error_bound > 0) || !std::isfinite(cfg.error_bound))
      throw std::invalid_argument(
          "sz::compress: point-wise relative bound must be > 0");
    // Log transform: bounding |log v' - log v| by log(1 + eb) bounds the
    // ratio v'/v in [1/(1+eb), 1+eb]. A 1% margin absorbs the float
    // rounding of the log/exp pair (see config.hpp caveat for float).
    const double theta = std::log1p(cfg.error_bound * 0.99);
    std::vector<T> logs(data.size());
    std::vector<std::pair<std::uint64_t, T>> exceptions;
    for (std::size_t i = 0; i < data.size(); ++i) {
      const double v = static_cast<double>(data[i]);
      const double a = std::fabs(v);
      if (v == 0.0 || !std::isfinite(v)) {
        exceptions.emplace_back(i, data[i]);
        logs[i] = T{0};
      } else {
        logs[i] = static_cast<T>(std::log(a));
      }
    }
    SzConfig inner_cfg = cfg;
    inner_cfg.mode = ErrorBoundMode::kAbsolute;
    inner_cfg.error_bound = theta;
    const auto inner =
        compress<T>(std::span<const T>(logs), dims, inner_cfg, nblocks);

    ByteWriter w;
    w.put<std::uint16_t>(kMagic);
    w.put<std::uint8_t>(kVersion);
    w.put<std::uint8_t>(static_cast<std::uint8_t>(sizeof(T)));
    w.put_varint(dims.nx);
    w.put_varint(dims.ny);
    w.put_varint(dims.nz);
    w.put_varint(nblocks);
    w.put<std::uint8_t>(static_cast<std::uint8_t>(cfg.mode));
    w.put<double>(cfg.error_bound);
    w.put<double>(theta);  // abs bound slot carries the log-domain bound
    w.put<double>(0.0);
    w.put_varint(cfg.quant_radius);
    w.put<std::uint8_t>(static_cast<std::uint8_t>(cfg.predictor));
    w.put_varint(cfg.pred_block);
    w.put<std::uint8_t>(static_cast<std::uint8_t>(StreamKind::kPwRel));
    w.put_blob(inner);
    w.put_blob(lossless::compress(pack_sign_bits(data)));
    w.put_varint(exceptions.size());
    std::uint64_t prev = 0;
    for (const auto& [idx, val] : exceptions) {
      w.put_varint(idx - prev);
      prev = idx;
      w.put<T>(val);
    }
    return w.take();
  }

  const Range range = scan_range(data);
  const double span_val =
      std::isfinite(range.hi - range.lo) && range.hi > range.lo
          ? range.hi - range.lo
          : 0.0;
  double abs_eb = cfg.mode == ErrorBoundMode::kAbsolute
                      ? cfg.error_bound
                      : cfg.error_bound * span_val;
  if (!(abs_eb > 0) || !std::isfinite(abs_eb)) abs_eb = 0;  // lossless path

  ByteWriter w;
  w.put<std::uint16_t>(kMagic);
  w.put<std::uint8_t>(kVersion);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(sizeof(T)));
  w.put_varint(dims.nx);
  w.put_varint(dims.ny);
  w.put_varint(dims.nz);
  w.put_varint(nblocks);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(cfg.mode));
  w.put<double>(cfg.error_bound);
  w.put<double>(abs_eb);
  w.put<double>(span_val);
  w.put_varint(cfg.quant_radius);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(cfg.predictor));
  w.put_varint(cfg.pred_block);

  if (range.all_identical) {
    w.put<std::uint8_t>(static_cast<std::uint8_t>(StreamKind::kConstant));
    w.put<T>(data[0]);
    return w.take();
  }
  w.put<std::uint8_t>(static_cast<std::uint8_t>(StreamKind::kGeneral));

  const bool hybrid = cfg.predictor == Predictor::kHybrid;
  std::vector<std::uint32_t> codes(data.size());
  std::vector<T> recon(data.size());
  std::vector<std::vector<T>> outliers_per_block(nblocks);
  std::vector<TilePlan> plans(hybrid ? nblocks : 0);
  parallel_for(
      0, nblocks,
      [&](std::size_t b) {
        const TilePlan* plan = nullptr;
        if (hybrid) {
          plans[b] = plan_tiles(data.data() + b * vol, dims, cfg.pred_block);
          plan = &plans[b];
        }
        quantize_block(data.data() + b * vol, dims, abs_eb, cfg.quant_radius,
                       codes.data() + b * vol, recon.data() + b * vol,
                       outliers_per_block[b], plan);
      },
      /*grain=*/1);

  std::vector<T> outliers;
  ByteWriter counts_w;
  for (const auto& ob : outliers_per_block) {
    counts_w.put_varint(ob.size());
    outliers.insert(outliers.end(), ob.begin(), ob.end());
  }

  const auto huff = lossless::huffman_compress(codes);
  const auto huff_packed = lossless::compress(huff);
  w.put_blob(huff_packed);

  std::span<const std::uint8_t> outlier_bytes{
      reinterpret_cast<const std::uint8_t*>(outliers.data()),
      outliers.size() * sizeof(T)};
  const auto outliers_packed = lossless::compress(outlier_bytes);
  w.put_blob(outliers_packed);
  w.put_blob(counts_w.buffer());

  if (hybrid) {
    // Tile mode bits (1 = regression) and plane coefficients, both across
    // all blocks in order.
    std::vector<std::uint8_t> mode_bits;
    std::vector<std::uint8_t> coeff_bytes;
    std::size_t bit = 0;
    for (const TilePlan& plan : plans) {
      for (const std::int32_t fi : plan.fit_index) {
        if (bit % 8 == 0) mode_bits.push_back(0);
        if (fi >= 0)
          mode_bits.back() |= static_cast<std::uint8_t>(1u << (bit % 8));
        ++bit;
      }
      for (const PlaneFit& f : plan.fits) {
        const float c[4] = {f.b0, f.bx, f.by, f.bz};
        const auto* pc = reinterpret_cast<const std::uint8_t*>(c);
        coeff_bytes.insert(coeff_bytes.end(), pc, pc + sizeof(c));
      }
    }
    w.put_blob(lossless::compress(mode_bits));
    w.put_blob(lossless::compress(coeff_bytes));
  }
  return w.take();
}

namespace {

struct Header {
  SzStreamInfo info;
  SzConfig cfg;
  std::size_t payload_offset = 0;
  StreamKind kind = StreamKind::kGeneral;
};

Header read_header(ByteReader& r) {
  Header h;
  if (r.get<std::uint16_t>() != kMagic)
    throw std::runtime_error("sz: bad magic");
  if (r.get<std::uint8_t>() != kVersion)
    throw std::runtime_error("sz: unsupported version");
  h.info.scalar_size = r.get<std::uint8_t>();
  h.info.block_dims.nx = static_cast<std::size_t>(r.get_varint());
  h.info.block_dims.ny = static_cast<std::size_t>(r.get_varint());
  h.info.block_dims.nz = static_cast<std::size_t>(r.get_varint());
  h.info.nblocks = static_cast<std::size_t>(r.get_varint());
  h.cfg.mode = static_cast<ErrorBoundMode>(r.get<std::uint8_t>());
  h.cfg.error_bound = r.get<double>();
  h.info.abs_error_bound = r.get<double>();
  h.info.value_range = r.get<double>();
  h.cfg.quant_radius = static_cast<std::uint32_t>(r.get_varint());
  h.cfg.predictor = static_cast<Predictor>(r.get<std::uint8_t>());
  h.cfg.pred_block = static_cast<std::size_t>(r.get_varint());
  h.kind = static_cast<StreamKind>(r.get<std::uint8_t>());
  h.info.constant = h.kind == StreamKind::kConstant;
  return h;
}

}  // namespace

template <class T>
std::vector<T> decompress(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  Header h = read_header(r);
  if (h.info.scalar_size != sizeof(T))
    throw std::runtime_error("sz::decompress: scalar type mismatch");
  const std::size_t vol = h.info.block_dims.volume();
  const std::size_t total = vol * h.info.nblocks;

  if (h.kind == StreamKind::kConstant) {
    const T v = r.get<T>();
    return std::vector<T>(total, v);
  }

  if (h.kind == StreamKind::kPwRel) {
    const auto inner = r.get_blob();
    std::vector<T> logs = decompress<T>(inner);
    if (logs.size() != total)
      throw std::runtime_error("sz::decompress: pw-rel payload mismatch");
    const auto sign_bytes = lossless::decompress(r.get_blob());
    if (sign_bytes.size() < (total + 7) / 8)
      throw std::runtime_error("sz::decompress: pw-rel sign bits truncated");
    std::vector<T> out(total);
    for (std::size_t i = 0; i < total; ++i) {
      const double mag = std::exp(static_cast<double>(logs[i]));
      const bool neg = (sign_bytes[i / 8] >> (i % 8)) & 1u;
      out[i] = static_cast<T>(neg ? -mag : mag);
    }
    const std::uint64_t nex = r.get_varint();
    std::uint64_t idx = 0;
    for (std::uint64_t e = 0; e < nex; ++e) {
      idx += r.get_varint();
      if (idx >= total)
        throw std::runtime_error("sz::decompress: pw-rel exception index");
      out[idx] = r.get<T>();
    }
    return out;
  }

  const auto huff_packed = r.get_blob();
  const auto huff = lossless::decompress(huff_packed);
  const auto codes = lossless::huffman_decompress(huff);
  if (codes.size() != total)
    throw std::runtime_error("sz::decompress: code count mismatch");

  const auto outliers_packed = r.get_blob();
  const auto outlier_bytes = lossless::decompress(outliers_packed);
  if (outlier_bytes.size() % sizeof(T) != 0)
    throw std::runtime_error("sz::decompress: outlier byte count");
  std::vector<T> outliers(outlier_bytes.size() / sizeof(T));
  std::memcpy(outliers.data(), outlier_bytes.data(), outlier_bytes.size());

  const auto counts_blob = r.get_blob();
  ByteReader counts_r(counts_blob);
  std::vector<std::size_t> offsets(h.info.nblocks + 1, 0);
  for (std::size_t b = 0; b < h.info.nblocks; ++b)
    offsets[b + 1] = offsets[b] + static_cast<std::size_t>(counts_r.get_varint());
  if (offsets.back() != outliers.size())
    throw std::runtime_error("sz::decompress: outlier count mismatch");

  std::vector<TilePlan> plans;
  if (h.cfg.predictor == Predictor::kHybrid) {
    const auto mode_bits = lossless::decompress(r.get_blob());
    const auto coeff_bytes = lossless::decompress(r.get_blob());
    if (coeff_bytes.size() % (4 * sizeof(float)) != 0)
      throw std::runtime_error("sz::decompress: coefficient payload");
    const Dims3 tiles = tile_counts(h.info.block_dims, h.cfg.pred_block);
    const std::size_t ntiles = tiles.volume();
    if (mode_bits.size() < (ntiles * h.info.nblocks + 7) / 8)
      throw std::runtime_error("sz::decompress: tile mode payload");
    plans.resize(h.info.nblocks);
    std::size_t bit = 0;
    std::size_t coeff = 0;
    const std::size_t ncoeffs = coeff_bytes.size() / sizeof(float);
    const auto* cf = reinterpret_cast<const float*>(coeff_bytes.data());
    for (TilePlan& plan : plans) {
      plan.pred_block = h.cfg.pred_block;
      plan.tiles = tiles;
      plan.fit_index.assign(ntiles, -1);
      for (std::size_t t = 0; t < ntiles; ++t, ++bit) {
        if ((mode_bits[bit / 8] >> (bit % 8)) & 1u) {
          if (coeff + 4 > ncoeffs)
            throw std::runtime_error("sz::decompress: coefficient underrun");
          plan.fit_index[t] = static_cast<std::int32_t>(plan.fits.size());
          plan.fits.push_back(
              PlaneFit{cf[coeff], cf[coeff + 1], cf[coeff + 2],
                       cf[coeff + 3]});
          coeff += 4;
        }
      }
    }
  }

  std::vector<T> out(total);
  const double eb = h.info.abs_error_bound;
  const std::uint32_t radius = h.cfg.quant_radius;
  parallel_for(
      0, h.info.nblocks,
      [&](std::size_t b) {
        reconstruct_block(codes.data() + b * vol, h.info.block_dims, eb,
                          radius, outliers.data() + offsets[b],
                          offsets[b + 1] - offsets[b], out.data() + b * vol,
                          plans.empty() ? nullptr : &plans[b]);
      },
      /*grain=*/1);
  return out;
}

SzStreamInfo peek(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  Header h = read_header(r);
  if (h.kind == StreamKind::kPwRel) {
    const auto inner = r.get_blob();
    const SzStreamInfo inner_info = peek(inner);
    h.info.n_outliers = inner_info.n_outliers;
    return h.info;
  }
  if (h.kind == StreamKind::kGeneral) {
    const auto huff_packed = r.get_blob();
    const auto outliers_packed = r.get_blob();
    const auto counts_blob = r.get_blob();
    ByteReader counts_r(counts_blob);
    std::size_t n = 0;
    for (std::size_t b = 0; b < h.info.nblocks; ++b)
      n += static_cast<std::size_t>(counts_r.get_varint());
    h.info.n_outliers = n;
    h.info.huffman_bytes = huff_packed.size();
    h.info.outlier_bytes = outliers_packed.size();
    h.info.metadata_bytes = bytes.size() - huff_packed.size() -
                            outliers_packed.size();
  }
  return h.info;
}

template std::vector<std::uint8_t> compress<float>(std::span<const float>,
                                                   Dims3, const SzConfig&,
                                                   std::size_t);
template std::vector<std::uint8_t> compress<double>(std::span<const double>,
                                                    Dims3, const SzConfig&,
                                                    std::size_t);
template std::vector<float> decompress<float>(std::span<const std::uint8_t>);
template std::vector<double> decompress<double>(
    std::span<const std::uint8_t>);

}  // namespace tac::sz
