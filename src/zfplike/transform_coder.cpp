#include "zfplike/transform_coder.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "common/bytes.hpp"
#include "common/parallel.hpp"
#include "lossless/codec.hpp"
#include "lossless/huffman.hpp"

namespace tac::zfplike {
namespace {

constexpr std::uint32_t kMagic = 0x434654;  // "TFC"
constexpr std::uint8_t kVersion = 1;
constexpr std::size_t kBlock = 4;
constexpr std::size_t kBlockVol = kBlock * kBlock * kBlock;

/// One-level Haar lifting pair: s = mean, d = difference. Exactly
/// invertible in floating point for the inverse below (s - d/2 and
/// s + d/2 recover a and b up to one rounding).
inline void lift_forward(double& a, double& b) {
  const double d = b - a;
  const double s = a + d / 2.0;
  a = s;
  b = d;
}

inline void lift_inverse(double& a, double& b) {
  const double d = b;
  const double s = a;
  a = s - d / 2.0;
  b = s + d / 2.0;
}

/// 1D two-level transform of 4 values at stride `st`: output layout
/// [S, D, d0, d1] (coarse first, like a wavelet packet).
inline void fwd4(double* p, std::size_t st) {
  lift_forward(p[0], p[st]);           // s0 in p[0], d0 in p[st]
  lift_forward(p[2 * st], p[3 * st]);  // s1, d1
  double s0 = p[0], d0 = p[st], s1 = p[2 * st], d1 = p[3 * st];
  lift_forward(s0, s1);  // S, D
  p[0] = s0;
  p[st] = s1;
  p[2 * st] = d0;
  p[3 * st] = d1;
}

inline void inv4(double* p, std::size_t st) {
  double s0 = p[0], s1 = p[st], d0 = p[2 * st], d1 = p[3 * st];
  lift_inverse(s0, s1);
  p[0] = s0;
  p[st] = d0;
  p[2 * st] = s1;
  p[3 * st] = d1;
  lift_inverse(p[0], p[st]);
  lift_inverse(p[2 * st], p[3 * st]);
}

}  // namespace

void forward_transform(double block[64]) {
  for (std::size_t z = 0; z < 4; ++z)
    for (std::size_t y = 0; y < 4; ++y) fwd4(block + 4 * (y + 4 * z), 1);
  for (std::size_t z = 0; z < 4; ++z)
    for (std::size_t x = 0; x < 4; ++x) fwd4(block + x + 16 * z, 4);
  for (std::size_t y = 0; y < 4; ++y)
    for (std::size_t x = 0; x < 4; ++x) fwd4(block + x + 4 * y, 16);
}

void inverse_transform(double block[64]) {
  for (std::size_t y = 0; y < 4; ++y)
    for (std::size_t x = 0; x < 4; ++x) inv4(block + x + 4 * y, 16);
  for (std::size_t z = 0; z < 4; ++z)
    for (std::size_t x = 0; x < 4; ++x) inv4(block + x + 16 * z, 4);
  for (std::size_t z = 0; z < 4; ++z)
    for (std::size_t y = 0; y < 4; ++y) inv4(block + 4 * (y + 4 * z), 1);
}

namespace {

struct BlockResult {
  std::int16_t qexp = 0;  ///< quantizer step = 2^qexp
  std::uint32_t codes[kBlockVol];
  std::vector<double> outliers;  ///< coefficients outside the code range
  /// Non-finite cells, stored raw and patched after the inverse transform
  /// (a NaN would otherwise contaminate the whole block's spectrum).
  std::vector<std::pair<std::uint8_t, double>> exceptions;
};

/// Quantize/dequantize one coefficient against step q.
inline double quantize_coeff(double c, double q, std::uint32_t radius,
                             std::uint32_t& code, bool& outlier) {
  const double k = std::nearbyint(c / q);
  if (std::isfinite(k) && std::fabs(k) < static_cast<double>(radius)) {
    code = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(k) + static_cast<std::int64_t>(radius));
    outlier = false;
    return k * q;
  }
  code = 0;
  outlier = true;
  return c;
}

/// Encodes one block: picks the coarsest power-of-two quantizer whose
/// *verified* reconstruction error stays within the bound.
BlockResult encode_block(const double* cells_in, double eb,
                         std::uint32_t radius) {
  BlockResult pre;
  double cells[kBlockVol];
  for (std::size_t i = 0; i < kBlockVol; ++i) {
    if (std::isfinite(cells_in[i])) {
      cells[i] = cells_in[i];
    } else {
      pre.exceptions.emplace_back(static_cast<std::uint8_t>(i),
                                  cells_in[i]);
      cells[i] = 0.0;
    }
  }
  double coeffs[kBlockVol];
  std::copy(cells, cells + kBlockVol, coeffs);
  forward_transform(coeffs);

  // Start from the naive step (coefficient errors of q/2 pass through a
  // benign inverse as ~eb) and search the coarsest power-of-two step whose
  // verified reconstruction stays within the bound. Tightening always
  // terminates: as q shrinks, coefficients either quantize exactly or
  // overflow the code range into the exactly-stored outlier path.
  const auto verify = [&](int qe, BlockResult& out) {
    const double q = std::ldexp(1.0, qe);
    double recon[kBlockVol];
    out.outliers.clear();
    for (std::size_t i = 0; i < kBlockVol; ++i) {
      bool outlier = false;
      recon[i] = quantize_coeff(coeffs[i], q, radius, out.codes[i], outlier);
      if (outlier) out.outliers.push_back(coeffs[i]);
    }
    inverse_transform(recon);
    for (std::size_t i = 0; i < kBlockVol; ++i)
      if (!(std::fabs(recon[i] - cells[i]) <= eb)) return false;
    out.qexp = static_cast<std::int16_t>(qe);
    out.exceptions = pre.exceptions;
    return true;
  };

  BlockResult best;
  int qe = std::clamp(std::ilogb(std::max(eb, 1e-300)), -1000, 1000);
  if (!verify(qe, best)) {
    while (!verify(--qe, best)) {
      if (qe < -1060)
        throw std::logic_error("transform coder: quantizer search failed");
    }
  } else {
    BlockResult trial;
    while (qe < 1000 && verify(qe + 1, trial)) {
      best = trial;
      ++qe;
    }
  }
  return best;
}

void decode_block(const std::uint32_t* codes, double q,
                  std::uint32_t radius, const double* outliers,
                  std::size_t n_outliers, double* cells) {
  std::size_t oi = 0;
  for (std::size_t i = 0; i < kBlockVol; ++i) {
    if (codes[i] == 0) {
      if (oi >= n_outliers)
        throw std::runtime_error("transform coder: outlier underrun");
      cells[i] = outliers[oi++];
    } else {
      const auto k = static_cast<std::int64_t>(codes[i]) -
                     static_cast<std::int64_t>(radius);
      cells[i] = static_cast<double>(k) * q;
    }
  }
  if (oi != n_outliers)
    throw std::runtime_error("transform coder: outlier miscount");
  inverse_transform(cells);
}

}  // namespace

std::vector<std::uint8_t> compress(std::span<const double> data, Dims3 dims,
                                   const TransformConfig& cfg) {
  if (data.size() != dims.volume())
    throw std::invalid_argument("transform coder: size mismatch");
  if (!(cfg.abs_error_bound > 0) || !std::isfinite(cfg.abs_error_bound))
    throw std::invalid_argument("transform coder: bound must be > 0");

  const Dims3 blocks{ceil_div(dims.nx, kBlock), ceil_div(dims.ny, kBlock),
                     ceil_div(dims.nz, kBlock)};
  const std::size_t nblocks = blocks.volume();

  std::vector<BlockResult> results(nblocks);
  parallel_for(0, nblocks, [&](std::size_t b) {
    const std::size_t bx = b % blocks.nx;
    const std::size_t by = (b / blocks.nx) % blocks.ny;
    const std::size_t bz = b / (blocks.nx * blocks.ny);
    double cells[kBlockVol];
    for (std::size_t z = 0; z < kBlock; ++z)
      for (std::size_t y = 0; y < kBlock; ++y)
        for (std::size_t x = 0; x < kBlock; ++x) {
          // Edge blocks replicate the nearest in-range cell so padding
          // stays smooth.
          const std::size_t gx = std::min(bx * kBlock + x, dims.nx - 1);
          const std::size_t gy = std::min(by * kBlock + y, dims.ny - 1);
          const std::size_t gz = std::min(bz * kBlock + z, dims.nz - 1);
          cells[x + kBlock * (y + kBlock * z)] =
              data[dims.index(gx, gy, gz)];
        }
    results[b] = encode_block(cells, cfg.abs_error_bound, cfg.quant_radius);
  }, /*grain=*/16);

  std::vector<std::uint32_t> codes;
  codes.reserve(nblocks * kBlockVol);
  std::vector<double> outliers;
  ByteWriter meta;
  for (const BlockResult& r : results) {
    codes.insert(codes.end(), r.codes, r.codes + kBlockVol);
    outliers.insert(outliers.end(), r.outliers.begin(), r.outliers.end());
    meta.put<std::int16_t>(r.qexp);
    meta.put_varint(r.outliers.size());
    meta.put_varint(r.exceptions.size());
    for (const auto& [idx, val] : r.exceptions) {
      meta.put<std::uint8_t>(idx);
      meta.put<double>(val);
    }
  }

  ByteWriter w;
  w.put<std::uint32_t>(kMagic);
  w.put<std::uint8_t>(kVersion);
  w.put_varint(dims.nx);
  w.put_varint(dims.ny);
  w.put_varint(dims.nz);
  w.put<double>(cfg.abs_error_bound);
  w.put_varint(cfg.quant_radius);
  w.put_blob(lossless::compress(lossless::huffman_compress(codes)));
  std::span<const std::uint8_t> outlier_bytes{
      reinterpret_cast<const std::uint8_t*>(outliers.data()),
      outliers.size() * sizeof(double)};
  w.put_blob(lossless::compress(outlier_bytes));
  w.put_blob(lossless::compress(meta.buffer()));
  return w.take();
}

std::vector<double> decompress(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  if (r.get<std::uint32_t>() != kMagic)
    throw std::runtime_error("transform coder: bad magic");
  if (r.get<std::uint8_t>() != kVersion)
    throw std::runtime_error("transform coder: bad version");
  Dims3 dims;
  dims.nx = static_cast<std::size_t>(r.get_varint());
  dims.ny = static_cast<std::size_t>(r.get_varint());
  dims.nz = static_cast<std::size_t>(r.get_varint());
  (void)r.get<double>();  // bound (informational)
  const auto radius = static_cast<std::uint32_t>(r.get_varint());

  const auto codes =
      lossless::huffman_decompress(lossless::decompress(r.get_blob()));
  const auto outlier_raw = lossless::decompress(r.get_blob());
  if (outlier_raw.size() % sizeof(double) != 0)
    throw std::runtime_error("transform coder: outlier payload");
  std::vector<double> outliers(outlier_raw.size() / sizeof(double));
  if (!outlier_raw.empty())
    std::memcpy(outliers.data(), outlier_raw.data(), outlier_raw.size());
  const auto meta_raw = lossless::decompress(r.get_blob());
  ByteReader meta(meta_raw);

  const Dims3 blocks{ceil_div(dims.nx, kBlock), ceil_div(dims.ny, kBlock),
                     ceil_div(dims.nz, kBlock)};
  const std::size_t nblocks = blocks.volume();
  if (codes.size() != nblocks * kBlockVol)
    throw std::runtime_error("transform coder: code count mismatch");

  std::vector<std::int16_t> qexps(nblocks);
  std::vector<std::size_t> offsets(nblocks + 1, 0);
  std::vector<std::vector<std::pair<std::uint8_t, double>>> exceptions(
      nblocks);
  for (std::size_t b = 0; b < nblocks; ++b) {
    qexps[b] = meta.get<std::int16_t>();
    offsets[b + 1] =
        offsets[b] + static_cast<std::size_t>(meta.get_varint());
    const std::size_t nexc = static_cast<std::size_t>(meta.get_varint());
    exceptions[b].reserve(nexc);
    for (std::size_t e = 0; e < nexc; ++e) {
      const auto idx = meta.get<std::uint8_t>();
      const auto val = meta.get<double>();
      if (idx >= kBlockVol)
        throw std::runtime_error("transform coder: bad exception index");
      exceptions[b].emplace_back(idx, val);
    }
  }
  if (offsets.back() != outliers.size())
    throw std::runtime_error("transform coder: outlier count mismatch");

  std::vector<double> out(dims.volume());
  parallel_for(0, nblocks, [&](std::size_t b) {
    const std::size_t bx = b % blocks.nx;
    const std::size_t by = (b / blocks.nx) % blocks.ny;
    const std::size_t bz = b / (blocks.nx * blocks.ny);
    double cells[kBlockVol];
    decode_block(codes.data() + b * kBlockVol,
                 std::ldexp(1.0, qexps[b]), radius,
                 outliers.data() + offsets[b],
                 offsets[b + 1] - offsets[b], cells);
    for (const auto& [idx, val] : exceptions[b]) cells[idx] = val;
    for (std::size_t z = 0; z < kBlock; ++z)
      for (std::size_t y = 0; y < kBlock; ++y)
        for (std::size_t x = 0; x < kBlock; ++x) {
          const std::size_t gx = bx * kBlock + x;
          const std::size_t gy = by * kBlock + y;
          const std::size_t gz = bz * kBlock + z;
          if (gx < dims.nx && gy < dims.ny && gz < dims.nz)
            out[dims.index(gx, gy, gz)] =
                cells[x + kBlock * (y + kBlock * z)];
        }
  }, /*grain=*/16);
  return out;
}

}  // namespace tac::zfplike
