#ifndef TAC_ZFPLIKE_TRANSFORM_CODER_HPP
#define TAC_ZFPLIKE_TRANSFORM_CODER_HPP

/// \file transform_coder.hpp
/// \brief ZFP-style block transform coder (the paper's §2.1 comparator).
///
/// The paper picks SZ over ZFP because "SZ typically provides higher
/// compression ratio than ZFP" on these fields. To reproduce that
/// rationale we implement the other design point: partition the array
/// into 4³ blocks, decorrelate each with a separable two-level Haar
/// lifting transform, quantize the coefficients uniformly, and entropy
/// code them (Huffman + LZSS, shared with the SZ substrate).
///
/// Error control is *verified*, not estimated: each block reconstructs
/// its own coefficients during compression and tightens/loosens its
/// quantizer until the per-cell absolute bound holds with the fewest
/// bits — so the bound is a hard guarantee, like the SZ path's.

#include <cstdint>
#include <span>
#include <vector>

#include "common/dims.hpp"

namespace tac::zfplike {

struct TransformConfig {
  double abs_error_bound = 1e-3;  ///< hard per-cell bound, must be > 0
  std::uint32_t quant_radius = 1u << 15;
};

[[nodiscard]] std::vector<std::uint8_t> compress(
    std::span<const double> data, Dims3 dims, const TransformConfig& cfg);

[[nodiscard]] std::vector<double> decompress(
    std::span<const std::uint8_t> bytes);

/// Exposed for tests: forward/inverse two-level Haar lifting on one 4^3
/// block (64 values, x fastest). inverse(forward(x)) == x up to floating
/// point rounding.
void forward_transform(double block[64]);
void inverse_transform(double block[64]);

}  // namespace tac::zfplike

#endif  // TAC_ZFPLIKE_TRANSFORM_CODER_HPP
