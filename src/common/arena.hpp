#ifndef TAC_COMMON_ARENA_HPP
#define TAC_COMMON_ARENA_HPP

/// \file arena.hpp
/// \brief Thread-local bump arenas for per-block/per-group scratch buffers.
///
/// The level pipeline calls the SZ kernel thousands of times per container
/// (one per block group), and each call used to heap-allocate its quant
/// codes, reconstruction buffer, hash chains and Huffman scratch. A
/// ScratchArena keeps one warm memory region per worker thread: scopes
/// nest LIFO, so a per-group call re-uses the bytes of the previous group
/// for free. After warm-up the steady-state encode path performs zero heap
/// allocations — `Stats` counts block growth so tests can assert exactly
/// that.
///
/// Oversized requests (above kLargeCutoff) get dedicated heap blocks that
/// are returned when their scope exits: a one-off 100 MB upsample scratch
/// cannot pin that memory in the arena forever. The bump region itself is
/// capped at kMaxRetainBytes and shrunk back at outermost-scope exit.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

#include "common/telemetry.hpp"

namespace tac {

class ScratchArena {
 public:
  /// Per-allocation cutoff: anything larger bypasses the bump region.
  static constexpr std::size_t kLargeCutoff = std::size_t{4} << 20;
  /// The bump region never retains more than this across scopes.
  static constexpr std::size_t kMaxRetainBytes = std::size_t{32} << 20;

  struct Stats {
    std::uint64_t scope_enters = 0;   ///< ArenaScope constructions
    std::uint64_t allocs = 0;         ///< alloc() calls served
    std::uint64_t bytes_served = 0;   ///< total bytes handed out
    std::uint64_t block_allocs = 0;   ///< bump-region heap growths
    std::uint64_t large_allocs = 0;   ///< oversized pass-through allocs
    std::size_t high_water = 0;       ///< peak live bump bytes
    std::size_t retained = 0;         ///< bump bytes currently reserved
  };

  /// The calling thread's arena (workers each get their own).
  [[nodiscard]] static ScratchArena& local() {
    thread_local ScratchArena arena;
    return arena;
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Publish this thread's stats into the telemetry counter registry:
  /// monotonic fields as deltas since the last publish, peaks via
  /// record_max. Called at outermost-scope exit and from the telemetry
  /// collect hook; cheap no-op when counters are off.
  void publish_stats() {
    if (!telemetry::counters_enabled()) return;
    TAC_COUNTER_ADD("arena.scope_enters",
                    stats_.scope_enters - published_.scope_enters);
    TAC_COUNTER_ADD("arena.allocs", stats_.allocs - published_.allocs);
    TAC_COUNTER_ADD("arena.bytes_served",
                    stats_.bytes_served - published_.bytes_served);
    TAC_COUNTER_ADD("arena.block_allocs",
                    stats_.block_allocs - published_.block_allocs);
    TAC_COUNTER_ADD("arena.large_allocs",
                    stats_.large_allocs - published_.large_allocs);
    TAC_COUNTER_MAX("arena.high_water", stats_.high_water);
    TAC_COUNTER_MAX("arena.retained_peak", stats_.retained);
    published_ = stats_;
  }

 private:
  friend class ArenaScope;

  struct Block {
    std::unique_ptr<std::byte[]> mem;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  static constexpr std::size_t kAlign = 64;
  static constexpr std::size_t align_up(std::size_t n) {
    return (n + (kAlign - 1)) & ~(kAlign - 1);
  }

  void* alloc_bytes(std::size_t bytes) {
    stats_.allocs += 1;
    stats_.bytes_served += bytes;
    const std::size_t need = align_up(bytes);
    if (need >= kLargeCutoff) {
      stats_.large_allocs += 1;
      large_.push_back(std::make_unique<std::byte[]>(need));
      return large_.back().get();
    }
    Block& top = blocks_.back();
    if (top.used + need > top.size) grow(need);
    Block& cur = blocks_.back();
    void* p = cur.mem.get() + cur.used;
    cur.used += need;
    live_ += need;
    if (live_ > stats_.high_water) stats_.high_water = live_;
    return p;
  }

  void grow(std::size_t need) {
    std::size_t size = blocks_.back().size * 2;
    if (size < (std::size_t{1} << 16)) size = std::size_t{1} << 16;
    while (size < need) size *= 2;
    Block b;
    b.mem = std::make_unique<std::byte[]>(size);
    b.size = size;
    blocks_.push_back(std::move(b));
    stats_.block_allocs += 1;
    stats_.retained += size;
  }

  /// Outermost-scope exit: collapse to one block big enough for the whole
  /// epoch (so the next epoch never grows), bounded by the retain cap.
  /// Runs after the scope destructor popped the epoch's overflow blocks,
  /// so the check must be against the high-water mark, not block count:
  /// a single retained block that high_water already outgrew still needs
  /// replacing, or every epoch re-grows from the seed block.
  void consolidate() {
    std::size_t want = align_up(stats_.high_water);
    if (want > kMaxRetainBytes) want = kMaxRetainBytes;
    std::size_t size = std::size_t{1} << 16;
    while (size < want) size *= 2;
    if (blocks_.size() == 1 && blocks_[0].size >= size &&
        blocks_[0].size <= kMaxRetainBytes)
      return;
    blocks_.clear();
    Block b;
    b.mem = std::make_unique<std::byte[]>(size);
    b.size = size;
    blocks_.push_back(std::move(b));
    stats_.block_allocs += 1;
    stats_.retained = size;
  }

  ScratchArena() {
    Block b;
    b.size = std::size_t{1} << 16;
    b.mem = std::make_unique<std::byte[]>(b.size);
    stats_.retained = b.size;
    blocks_.push_back(std::move(b));
    // One process-wide hook: a counter snapshot publishes the collecting
    // thread's pending arena stats (other threads publish at their own
    // outermost-scope exits).
    static const bool hook_registered = [] {
      telemetry::register_collect_hook([] { local().publish_stats(); });
      return true;
    }();
    (void)hook_registered;
  }

  std::vector<Block> blocks_;
  std::vector<std::unique_ptr<std::byte[]>> large_;
  std::size_t live_ = 0;
  unsigned depth_ = 0;
  Stats stats_;
  Stats published_;  ///< values already pushed to the counter registry
};

/// RAII scratch scope on the calling thread's arena. Allocations made
/// through a scope are released (LIFO) when it destructs; spans must not
/// outlive their scope. Scopes nest freely across the level pipeline's
/// per-level / per-group / per-block call tree.
class ArenaScope {
 public:
  ArenaScope() : arena_(ScratchArena::local()) {
    arena_.stats_.scope_enters += 1;
    arena_.depth_ += 1;
    saved_blocks_ = arena_.blocks_.size();
    saved_used_ = arena_.blocks_.back().used;
    saved_live_ = arena_.live_;
    saved_large_ = arena_.large_.size();
  }

  ~ArenaScope() {
    // Blocks appended after entry only hold allocations made inside this
    // scope — all dead now.
    while (arena_.blocks_.size() > saved_blocks_) {
      arena_.stats_.retained -= arena_.blocks_.back().size;
      arena_.blocks_.pop_back();
    }
    arena_.blocks_.back().used = saved_used_;
    arena_.live_ = saved_live_;
    arena_.large_.resize(saved_large_);
    arena_.depth_ -= 1;
    if (arena_.depth_ == 0) {
      arena_.consolidate();
      arena_.publish_stats();
    }
  }

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  /// Uninitialized scratch span of `n` Ts (trivial types only).
  template <class T>
  [[nodiscard]] std::span<T> alloc(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>);
    if (n == 0) return {};
    return {static_cast<T*>(arena_.alloc_bytes(n * sizeof(T))), n};
  }

  /// Zero-initialized variant.
  template <class T>
  [[nodiscard]] std::span<T> alloc_zero(std::size_t n) {
    auto s = alloc<T>(n);
    std::memset(static_cast<void*>(s.data()), 0, s.size_bytes());
    return s;
  }

 private:
  ScratchArena& arena_;
  std::size_t saved_blocks_;
  std::size_t saved_used_;
  std::size_t saved_live_;
  std::size_t saved_large_;
};

}  // namespace tac

#endif  // TAC_COMMON_ARENA_HPP
