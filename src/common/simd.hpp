#ifndef TAC_COMMON_SIMD_HPP
#define TAC_COMMON_SIMD_HPP

/// \file simd.hpp
/// \brief Runtime SIMD dispatch for the hot kernels.
///
/// The vectorized kernels (sign-bit packing, range scans, CRC slicing)
/// never change *what* is computed — every SIMD path produces bit-identical
/// results to the scalar fallback, which is always compiled and exercised
/// by the equivalence tests. Dispatch is resolved once per process from
/// CPUID; `TAC_FORCE_SCALAR=1` (or `force_scalar(true)` from tests) pins
/// the scalar paths so both sides of the equivalence can run in one
/// process.

#include <atomic>
#include <cstdlib>

#if defined(__x86_64__) || defined(_M_X64)
#define TAC_SIMD_X86 1
#include <immintrin.h>
#else
#define TAC_SIMD_X86 0
#endif

namespace tac::simd {

/// Instruction-set tiers the kernels dispatch over. Higher tiers imply the
/// lower ones (AVX2 machines have SSE4.2).
enum class Level : int {
  kScalar = 0,
  kSSE42 = 1,
  kAVX2 = 2,
};

namespace detail {
inline Level detect() {
#if TAC_SIMD_X86 && defined(__GNUC__)
  if (__builtin_cpu_supports("avx2")) return Level::kAVX2;
  if (__builtin_cpu_supports("sse4.2")) return Level::kSSE42;
#endif
  return Level::kScalar;
}

inline std::atomic<int>& force_scalar_flag() {
  static std::atomic<int> flag = [] {
    const char* env = std::getenv("TAC_FORCE_SCALAR");
    return (env != nullptr && env[0] != '\0' && env[0] != '0') ? 1 : 0;
  }();
  return flag;
}
}  // namespace detail

/// Pins every dispatched kernel to its scalar fallback (used by the
/// equivalence tests to compare both paths in-process). Overrides the
/// TAC_FORCE_SCALAR environment knob.
inline void force_scalar(bool on) {
  detail::force_scalar_flag().store(on ? 1 : 0, std::memory_order_relaxed);
}

[[nodiscard]] inline bool scalar_forced() {
  return detail::force_scalar_flag().load(std::memory_order_relaxed) != 0;
}

/// The dispatch tier kernels should use for this call. CPUID is probed
/// once; the force-scalar knob is re-read so tests can flip it at runtime.
[[nodiscard]] inline Level active_level() {
  static const Level detected = detail::detect();
  return scalar_forced() ? Level::kScalar : detected;
}

/// Interior rows the fast-profile Lorenzo wavefront keeps in flight
/// (sz.cpp). Four independent loop-carried chains cover the quantize
/// round-trip latency; measured A/B against 6- and 8-row variants, wider
/// fronts spill the per-row pointer/carry state past the 16 general
/// registers and run up to 14% slower on 128^3 grids. NOT dispatched at
/// runtime: the wavefront is a pure reschedule of the scalar dataflow,
/// so scalar and SIMD builds produce identical bytes.
inline constexpr std::size_t kWavefrontRows = 4;

[[nodiscard]] inline const char* level_name(Level l) {
  switch (l) {
    case Level::kAVX2: return "avx2";
    case Level::kSSE42: return "sse4.2";
    default: return "scalar";
  }
}

}  // namespace tac::simd

#endif  // TAC_COMMON_SIMD_HPP
