#pragma once

/// Pipeline telemetry: RAII scoped spans, monotonic stage counters, and
/// two exporters (human-readable stage tree, Chrome tracing JSON).
///
/// Design constraints, in order:
///   1. Zero cost when off. `TAC_TRACE` is unset for every production
///      decode, so the disabled path of a span or counter is one relaxed
///      atomic load and a predictable branch — no clock reads, no
///      allocation, no thread-local ring touch. Compiling with
///      -DTAC_TELEMETRY=0 removes even that load: the macros expand to
///      nothing and the API degrades to inline stubs.
///   2. No locks on the hot path. Spans append to a fixed-capacity
///      thread-local ring (single writer, release-published size);
///      per-name stage totals accumulate in a thread-local open-address
///      table. The only mutex sits on the cold paths: first-use
///      registration of a thread's buffers and counter-name lookup, both
///      amortised behind function-local statics at the call sites.
///   3. Observation only. Telemetry must never change compressed bytes —
///      the determinism suite (containers byte-identical across thread
///      counts and SIMD tiers) runs with tracing on and off.
///
/// Runtime gate (`TAC_TRACE`, or telemetry::set_mode):
///   off      — default; spans and counters compile to the disabled check.
///   counters — monotonic counters plus per-stage time/byte totals
///              (aggregated, no per-event memory).
///   spans    — everything above plus per-event records for the Chrome
///              tracing exporter.
///
/// See docs/TELEMETRY.md for the span naming conventions and the counter
/// catalogue.

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#ifndef TAC_TELEMETRY
#define TAC_TELEMETRY 1
#endif

namespace tac::telemetry {

enum class Mode : int { kOff = 0, kCounters = 1, kSpans = 2 };

/// One named monotonic counter. Addresses are stable for the process
/// lifetime, so call sites cache `Counter&` in a function-local static.
class Counter {
 public:
  void add(std::uint64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Raise the counter to at least `v` (high-water style counters).
  void record_max(std::uint64_t v) noexcept {
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::uint64_t load() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A merged span event, as returned by collect_spans().
struct Span {
  std::string name;
  std::uint64_t t0_ns = 0;  ///< start, relative to the process trace epoch
  std::uint64_t t1_ns = 0;  ///< end
  std::uint64_t bytes = 0;  ///< optional payload attribution (0 = none)
  std::uint32_t tid = 0;    ///< small sequential thread id
  std::uint32_t depth = 0;  ///< nesting depth on its thread at open
};

/// Aggregated per-stage totals (one row per distinct span name).
struct StageStat {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t ns = 0;
  std::uint64_t bytes = 0;
};

struct CounterValue {
  std::string name;
  std::uint64_t value = 0;
};

#if TAC_TELEMETRY

namespace detail {
// Mode lives in a plain atomic so the disabled check inlines everywhere
// (thread_pool.hpp, arena.hpp). kUninit forces one env read on first use.
inline constexpr int kUninit = -1;
extern std::atomic<int> g_mode;
int init_mode_from_env();  // parses TAC_TRACE; warns once on unknown values

inline int mode_raw() noexcept {
  int m = g_mode.load(std::memory_order_relaxed);
  if (m == kUninit) m = init_mode_from_env();
  return m;
}

std::uint64_t span_begin() noexcept;  // clock read + depth push
void span_end(const char* name, std::uint64_t t0_ns,
              std::uint64_t bytes) noexcept;
}  // namespace detail

[[nodiscard]] inline Mode mode() { return static_cast<Mode>(detail::mode_raw()); }
[[nodiscard]] inline bool counters_enabled() {
  return detail::mode_raw() >= static_cast<int>(Mode::kCounters);
}
[[nodiscard]] inline bool spans_enabled() {
  return detail::mode_raw() >= static_cast<int>(Mode::kSpans);
}

/// Programmatic override (CLI --trace, benches, tests). Returns the
/// previous mode so callers can restore it.
Mode set_mode(Mode m);

/// Look up (registering on first use) a named counter. Cold path: takes
/// the registry mutex. Cache the reference in a static at hot call sites.
Counter& counter(std::string_view name);

/// Register a hook run at the start of collect_counters(): used by
/// thread-local sources (e.g. the scratch arena) to publish pending
/// stats for the collecting thread before the snapshot.
void register_collect_hook(std::function<void()> hook);

/// RAII span. Construction snapshots the clock when telemetry is at
/// least in counters mode; destruction folds the duration into the
/// per-stage table and, in spans mode, appends an event to the calling
/// thread's ring buffer. `name` must be a string literal (the ring
/// stores the pointer).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, std::uint64_t bytes = 0)
      : name_(name), bytes_(bytes) {
    if (detail::mode_raw() > 0) {
      active_ = true;
      t0_ = detail::span_begin();
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (active_) detail::span_end(name_, t0_, bytes_);
  }
  /// Attribute payload bytes discovered after the work (e.g. compressed
  /// output size).
  void set_bytes(std::uint64_t n) noexcept { bytes_ = n; }
  void add_bytes(std::uint64_t n) noexcept { bytes_ += n; }

 private:
  const char* name_;
  std::uint64_t bytes_;
  std::uint64_t t0_ = 0;
  bool active_ = false;
};

// ---- collection (cold; call when the instrumented region is quiescent) ----

/// Merge every thread's ring into one list sorted by (t0, tid, name).
/// Deterministic for a fixed set of recorded events.
[[nodiscard]] std::vector<Span> collect_spans();

/// Merge every thread's stage table by name, sorted by name.
[[nodiscard]] std::vector<StageStat> collect_stages();

/// Snapshot the counter registry, sorted by name. Publishes pending
/// thread-local sources (e.g. this thread's arena stats) first.
[[nodiscard]] std::vector<CounterValue> collect_counters();

void reset_spans();
void reset_stages();
void reset_counters();
void reset_all();  ///< spans + stages + counters

// ---- exporters ----

/// Human-readable per-stage tree: time, throughput, percent-of-parent.
/// Built from span nesting when span events exist, otherwise a flat
/// table from the stage aggregation.
void print_stage_tree(std::ostream& os);

/// Counter registry dump (name = value, sorted).
void print_counters(std::ostream& os);

/// Chrome `chrome://tracing` / Perfetto JSON: one complete ("ph":"X")
/// event per span, counters and wall_ns in "otherData".
void write_chrome_trace(std::ostream& os);

/// Convenience wrapper: write_chrome_trace to `path`. Returns false on
/// I/O failure.
bool write_chrome_trace_file(const std::string& path);

#else  // !TAC_TELEMETRY — stubs; macros below compile to nothing.

[[nodiscard]] inline Mode mode() { return Mode::kOff; }
[[nodiscard]] inline bool counters_enabled() { return false; }
[[nodiscard]] inline bool spans_enabled() { return false; }
inline Mode set_mode(Mode) { return Mode::kOff; }
inline Counter& counter(std::string_view) {
  static Counter c;
  return c;
}
inline void register_collect_hook(std::function<void()>) {}
class ScopedSpan {
 public:
  explicit ScopedSpan(const char*, std::uint64_t = 0) {}
  void set_bytes(std::uint64_t) noexcept {}
  void add_bytes(std::uint64_t) noexcept {}
};
[[nodiscard]] inline std::vector<Span> collect_spans() { return {}; }
[[nodiscard]] inline std::vector<StageStat> collect_stages() { return {}; }
[[nodiscard]] inline std::vector<CounterValue> collect_counters() {
  return {};
}
inline void reset_spans() {}
inline void reset_stages() {}
inline void reset_counters() {}
inline void reset_all() {}
inline void print_stage_tree(std::ostream&) {}
inline void print_counters(std::ostream&) {}
inline void write_chrome_trace(std::ostream&) {}
inline bool write_chrome_trace_file(const std::string&) { return true; }

#endif  // TAC_TELEMETRY

}  // namespace tac::telemetry

// ---- instrumentation macros ------------------------------------------------
// TAC_SPAN("layer.op"): RAII span for the rest of the enclosing scope.
// TAC_SPAN_BYTES("layer.op", n): same, with byte attribution.
// TAC_SPAN_NAMED(var, "layer.op"): span bound to a local so the call site
//   can set_bytes()/add_bytes() before it closes.
// TAC_COUNTER_ADD("name", n) / TAC_COUNTER_MAX("name", v): registry
//   counters; the lookup is amortised behind a function-local static.
#define TAC_TELEMETRY_CAT2(a, b) a##b
#define TAC_TELEMETRY_CAT(a, b) TAC_TELEMETRY_CAT2(a, b)

#if TAC_TELEMETRY
#define TAC_SPAN(name) \
  ::tac::telemetry::ScopedSpan TAC_TELEMETRY_CAT(tac_span_, __LINE__)(name)
#define TAC_SPAN_BYTES(name, n)                                       \
  ::tac::telemetry::ScopedSpan TAC_TELEMETRY_CAT(tac_span_, __LINE__)( \
      name, static_cast<std::uint64_t>(n))
#define TAC_SPAN_NAMED(var, name) ::tac::telemetry::ScopedSpan var(name)
#define TAC_COUNTER_ADD(name, n)                                          \
  do {                                                                    \
    if (::tac::telemetry::counters_enabled()) {                           \
      static ::tac::telemetry::Counter& tac_counter_ =                    \
          ::tac::telemetry::counter(name);                                \
      tac_counter_.add(static_cast<std::uint64_t>(n));                    \
    }                                                                     \
  } while (0)
#define TAC_COUNTER_MAX(name, v)                                          \
  do {                                                                    \
    if (::tac::telemetry::counters_enabled()) {                           \
      static ::tac::telemetry::Counter& tac_counter_ =                    \
          ::tac::telemetry::counter(name);                                \
      tac_counter_.record_max(static_cast<std::uint64_t>(v));             \
    }                                                                     \
  } while (0)
#else
// sizeof keeps the operands name-checked (and silences set-but-unused
// warnings) without evaluating them.
#define TAC_SPAN(name) ((void)sizeof(name))
#define TAC_SPAN_BYTES(name, n) ((void)sizeof(name), (void)sizeof(n))
#define TAC_SPAN_NAMED(var, name) ::tac::telemetry::ScopedSpan var(name)
#define TAC_COUNTER_ADD(name, n) ((void)sizeof(name), (void)sizeof(n))
#define TAC_COUNTER_MAX(name, v) ((void)sizeof(name), (void)sizeof(v))
#endif
