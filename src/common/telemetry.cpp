#include "common/telemetry.hpp"

#if TAC_TELEMETRY

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iomanip>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>

namespace tac::telemetry {
namespace {

using Clock = std::chrono::steady_clock;

/// Trace epoch: every timestamp is relative to the first telemetry
/// activation, keeping Chrome trace `ts` values small and stable.
Clock::time_point epoch() {
  static const Clock::time_point t0 = Clock::now();
  return t0;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch())
          .count());
}

std::atomic<std::uint32_t> g_next_tid{0};

std::uint32_t local_tid() {
  thread_local const std::uint32_t tid =
      g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

thread_local std::uint32_t tl_depth = 0;

// ---- per-thread span ring -------------------------------------------------
// Single writer (the owning thread); readers see a consistent prefix via
// the release-published size. Fixed capacity: overflow drops the event
// and bumps telemetry.spans_dropped instead of allocating mid-span.

constexpr std::size_t kRingCapacity = std::size_t{1} << 16;

struct SpanRec {
  const char* name;
  std::uint64_t t0_ns;
  std::uint64_t t1_ns;
  std::uint64_t bytes;
  std::uint32_t depth;
};

struct SpanRing {
  std::unique_ptr<SpanRec[]> buf{new SpanRec[kRingCapacity]};
  std::atomic<std::size_t> size{0};
  std::uint32_t tid = 0;

  void append(const char* name, std::uint64_t t0, std::uint64_t t1,
              std::uint64_t bytes, std::uint32_t depth) noexcept {
    const std::size_t idx = size.load(std::memory_order_relaxed);
    if (idx >= kRingCapacity) {
      counter("telemetry.spans_dropped").add(1);
      return;
    }
    buf[idx] = SpanRec{name, t0, t1, bytes, depth};
    size.store(idx + 1, std::memory_order_release);
  }
};

// ---- per-thread stage aggregation -----------------------------------------
// Open-address table keyed by the span-name pointer (string literals have
// stable addresses within a TU; collect_stages() re-merges by content so
// the same name from two TUs still lands in one row). Values are relaxed
// atomics only so the cold reader can snapshot mid-run without UB — the
// owning thread is the sole writer.

constexpr std::size_t kStageSlots = 512;  // far above the ~50 span names used

struct StageSlot {
  std::atomic<const char*> name{nullptr};
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> ns{0};
  std::atomic<std::uint64_t> bytes{0};
};

struct StageTable {
  StageSlot slots[kStageSlots];

  void add(const char* name, std::uint64_t ns, std::uint64_t bytes) noexcept {
    auto h = reinterpret_cast<std::uintptr_t>(name);
    h ^= h >> 9;
    for (std::size_t probe = 0; probe < kStageSlots; ++probe) {
      StageSlot& s = slots[(h + probe) & (kStageSlots - 1)];
      const char* cur = s.name.load(std::memory_order_relaxed);
      if (cur == nullptr) {
        // Sole writer: a plain claim would do, but CAS keeps the slot
        // protocol valid if a future caller shares tables.
        if (!s.name.compare_exchange_strong(cur, name,
                                            std::memory_order_relaxed) &&
            cur != name)
          continue;
      } else if (cur != name) {
        continue;
      }
      s.count.fetch_add(1, std::memory_order_relaxed);
      s.ns.fetch_add(ns, std::memory_order_relaxed);
      s.bytes.fetch_add(bytes, std::memory_order_relaxed);
      return;
    }
    counter("telemetry.stages_dropped").add(1);
  }
};

// ---- global registries ----------------------------------------------------

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<SpanRing>> rings;
  std::vector<std::shared_ptr<StageTable>> tables;
  std::map<std::string, Counter, std::less<>> counters;
  std::vector<std::function<void()>> collect_hooks;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: outlives thread exit order
  return *r;
}

SpanRing& ring_local() {
  thread_local const std::shared_ptr<SpanRing> ring = [] {
    auto r = std::make_shared<SpanRing>();
    r->tid = local_tid();
    std::lock_guard lock(registry().mu);
    registry().rings.push_back(r);
    return r;
  }();
  return *ring;
}

StageTable& stage_table_local() {
  thread_local const std::shared_ptr<StageTable> table = [] {
    auto t = std::make_shared<StageTable>();
    std::lock_guard lock(registry().mu);
    registry().tables.push_back(t);
    return t;
  }();
  return *table;
}

void json_escape(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

double mbs(std::uint64_t bytes, std::uint64_t ns) {
  if (ns == 0) return 0.0;
  return (static_cast<double>(bytes) / 1e6) / (static_cast<double>(ns) / 1e9);
}

}  // namespace

namespace detail {

std::atomic<int> g_mode{kUninit};

int init_mode_from_env() {
  int parsed = static_cast<int>(Mode::kOff);
  if (const char* env = std::getenv("TAC_TRACE"); env && *env) {
    const std::string_view v(env);
    if (v == "off")
      parsed = static_cast<int>(Mode::kOff);
    else if (v == "counters")
      parsed = static_cast<int>(Mode::kCounters);
    else if (v == "spans")
      parsed = static_cast<int>(Mode::kSpans);
    else
      // First use can be deep inside a decode on any thread, so a typo
      // must not throw: warn once and fall back to off.
      std::fprintf(stderr,
                   "tac: ignoring unknown TAC_TRACE=\"%s\" "
                   "(expected off|counters|spans)\n",
                   env);
  }
  if (parsed > 0) (void)epoch();  // anchor timestamps before the first span
  int expected = kUninit;
  g_mode.compare_exchange_strong(expected, parsed,
                                 std::memory_order_relaxed);
  return g_mode.load(std::memory_order_relaxed);
}

std::uint64_t span_begin() noexcept {
  ++tl_depth;
  return now_ns();
}

void span_end(const char* name, std::uint64_t t0_ns,
              std::uint64_t bytes) noexcept {
  const std::uint64_t t1 = now_ns();
  const std::uint32_t depth = --tl_depth;
  stage_table_local().add(name, t1 - t0_ns, bytes);
  if (g_mode.load(std::memory_order_relaxed) >=
      static_cast<int>(Mode::kSpans))
    ring_local().append(name, t0_ns, t1, bytes, depth);
}

}  // namespace detail

Mode set_mode(Mode m) {
  if (m > Mode::kOff) (void)epoch();
  int prev = detail::g_mode.exchange(static_cast<int>(m),
                                     std::memory_order_relaxed);
  if (prev == detail::kUninit) prev = static_cast<int>(Mode::kOff);
  return static_cast<Mode>(prev);
}

Counter& counter(std::string_view name) {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  const auto it = r.counters.find(name);
  if (it != r.counters.end()) return it->second;
  return r.counters.try_emplace(std::string(name)).first->second;
}

void register_collect_hook(std::function<void()> hook) {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  r.collect_hooks.push_back(std::move(hook));
}

std::vector<Span> collect_spans() {
  std::vector<std::shared_ptr<SpanRing>> rings;
  {
    std::lock_guard lock(registry().mu);
    rings = registry().rings;
  }
  std::vector<Span> out;
  for (const auto& ring : rings) {
    const std::size_t n = ring->size.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      const SpanRec& rec = ring->buf[i];
      Span s;
      s.name = rec.name;
      s.t0_ns = rec.t0_ns;
      s.t1_ns = rec.t1_ns;
      s.bytes = rec.bytes;
      s.tid = ring->tid;
      s.depth = rec.depth;
      out.push_back(std::move(s));
    }
  }
  // Deterministic merge order for a fixed event set: start time, thread,
  // then depth so a parent sharing its child's start sorts first.
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    if (a.t0_ns != b.t0_ns) return a.t0_ns < b.t0_ns;
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.depth != b.depth) return a.depth < b.depth;
    return a.name < b.name;
  });
  return out;
}

std::vector<StageStat> collect_stages() {
  std::vector<std::shared_ptr<StageTable>> tables;
  {
    std::lock_guard lock(registry().mu);
    tables = registry().tables;
  }
  std::map<std::string, StageStat> merged;
  for (const auto& table : tables) {
    for (const StageSlot& slot : table->slots) {
      const char* name = slot.name.load(std::memory_order_relaxed);
      if (name == nullptr) continue;
      const std::uint64_t count = slot.count.load(std::memory_order_relaxed);
      if (count == 0) continue;
      StageStat& st = merged[name];
      st.name = name;
      st.count += count;
      st.ns += slot.ns.load(std::memory_order_relaxed);
      st.bytes += slot.bytes.load(std::memory_order_relaxed);
    }
  }
  std::vector<StageStat> out;
  out.reserve(merged.size());
  for (auto& [_, st] : merged) out.push_back(std::move(st));
  return out;
}

std::vector<CounterValue> collect_counters() {
  std::vector<std::function<void()>> hooks;
  {
    std::lock_guard lock(registry().mu);
    hooks = registry().collect_hooks;
  }
  // Hooks publish thread-local sources (e.g. the calling thread's arena
  // stats) into the registry before the snapshot. Run them unlocked —
  // they call counter().
  for (const auto& hook : hooks) hook();
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  std::vector<CounterValue> out;
  out.reserve(r.counters.size());
  for (const auto& [name, c] : r.counters)
    out.push_back(CounterValue{name, c.load()});
  return out;
}

void reset_spans() {
  std::lock_guard lock(registry().mu);
  for (const auto& ring : registry().rings)
    ring->size.store(0, std::memory_order_release);
}

void reset_stages() {
  std::lock_guard lock(registry().mu);
  for (const auto& table : registry().tables) {
    for (StageSlot& slot : table->slots) {
      // Keep claimed names (the owner may be mid-probe); zero the values.
      slot.count.store(0, std::memory_order_relaxed);
      slot.ns.store(0, std::memory_order_relaxed);
      slot.bytes.store(0, std::memory_order_relaxed);
    }
  }
}

void reset_counters() {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  for (auto& [_, c] : r.counters) c.reset();
}

void reset_all() {
  reset_spans();
  reset_stages();
  reset_counters();
}

// ---- human-readable stage tree --------------------------------------------

namespace {

struct TreeNode {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t ns = 0;
  std::uint64_t bytes = 0;
  std::map<std::string, std::size_t> lookup;  // child name -> nodes index
  std::vector<std::size_t> children;
};

void print_node(std::ostream& os, const std::vector<TreeNode>& nodes,
                std::size_t idx, std::uint64_t parent_ns, int indent) {
  const TreeNode& n = nodes[idx];
  std::ostringstream label;
  for (int i = 0; i < indent; ++i) label << "  ";
  label << n.name;
  os << std::left << std::setw(36) << label.str() << std::right;
  os << std::setw(9) << n.count;
  os << std::setw(12) << std::fixed << std::setprecision(3)
     << static_cast<double>(n.ns) / 1e6;
  if (parent_ns > 0)
    os << std::setw(7) << std::setprecision(1)
       << 100.0 * static_cast<double>(n.ns) / static_cast<double>(parent_ns)
       << '%';
  else
    os << std::setw(8) << "-";
  if (n.bytes > 0)
    os << std::setw(12) << std::setprecision(1) << mbs(n.bytes, n.ns);
  os << '\n';
  std::vector<std::size_t> kids = n.children;
  std::sort(kids.begin(), kids.end(), [&](std::size_t a, std::size_t b) {
    return nodes[a].ns > nodes[b].ns;
  });
  for (const std::size_t kid : kids)
    print_node(os, nodes, kid, n.ns, indent + 1);
}

}  // namespace

void print_stage_tree(std::ostream& os) {
  const std::vector<Span> spans = collect_spans();
  os << std::left << std::setw(36) << "stage" << std::right << std::setw(9)
     << "calls" << std::setw(12) << "ms" << std::setw(8) << "%parent"
     << std::setw(12) << "MB/s" << '\n';
  if (spans.empty()) {
    // Counters mode (or nothing recorded): flat per-stage table.
    for (const StageStat& st : collect_stages()) {
      os << std::left << std::setw(36) << st.name << std::right
         << std::setw(9) << st.count << std::setw(12) << std::fixed
         << std::setprecision(3) << static_cast<double>(st.ns) / 1e6
         << std::setw(8) << "-";
      if (st.bytes > 0)
        os << std::setw(12) << std::setprecision(1) << mbs(st.bytes, st.ns);
      os << '\n';
    }
    return;
  }
  // Rebuild the call tree from (tid, start-order, depth) and merge the
  // per-thread trees by path so parallel workers fold into one row.
  std::vector<Span> ordered = spans;
  std::sort(ordered.begin(), ordered.end(),
            [](const Span& a, const Span& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.t0_ns != b.t0_ns) return a.t0_ns < b.t0_ns;
              return a.depth < b.depth;
            });
  std::vector<TreeNode> nodes(1);  // 0 = virtual root
  std::vector<std::size_t> stack;  // node indices along the current path
  std::uint32_t cur_tid = 0;
  bool first = true;
  for (const Span& s : ordered) {
    if (first || s.tid != cur_tid) {
      stack.clear();
      cur_tid = s.tid;
      first = false;
    }
    while (stack.size() > s.depth) stack.pop_back();
    const std::size_t parent = stack.empty() ? 0 : stack.back();
    std::size_t idx;
    const auto it = nodes[parent].lookup.find(s.name);
    if (it != nodes[parent].lookup.end()) {
      idx = it->second;
    } else {
      idx = nodes.size();
      nodes.emplace_back();
      nodes[idx].name = s.name;
      nodes[parent].lookup.emplace(s.name, idx);
      nodes[parent].children.push_back(idx);
    }
    nodes[idx].count += 1;
    nodes[idx].ns += s.t1_ns - s.t0_ns;
    nodes[idx].bytes += s.bytes;
    stack.push_back(idx);
  }
  for (const std::size_t kid : nodes[0].children) nodes[0].ns += nodes[kid].ns;
  std::vector<std::size_t> roots = nodes[0].children;
  std::sort(roots.begin(), roots.end(), [&](std::size_t a, std::size_t b) {
    return nodes[a].ns > nodes[b].ns;
  });
  for (const std::size_t root : roots)
    print_node(os, nodes, root, nodes[0].ns, 0);
}

void print_counters(std::ostream& os) {
  for (const CounterValue& c : collect_counters())
    os << std::left << std::setw(36) << c.name << " = " << c.value << '\n';
}

// ---- Chrome tracing / Perfetto exporter -----------------------------------

void write_chrome_trace(std::ostream& os) {
  const std::vector<Span> spans = collect_spans();
  std::uint64_t lo = 0, hi = 0;
  if (!spans.empty()) {
    lo = spans.front().t0_ns;
    hi = lo;
    for (const Span& s : spans) hi = std::max(hi, s.t1_ns);
  }
  os << "{\n  \"traceEvents\": [";
  bool first_event = true;
  for (const Span& s : spans) {
    if (!first_event) os << ',';
    first_event = false;
    os << "\n    {\"name\": \"";
    json_escape(os, s.name);
    // Complete ("X") events in microseconds; three decimals keep the
    // original nanosecond resolution.
    os << "\", \"cat\": \"tac\", \"ph\": \"X\", \"ts\": " << std::fixed
       << std::setprecision(3) << static_cast<double>(s.t0_ns) / 1e3
       << ", \"dur\": " << static_cast<double>(s.t1_ns - s.t0_ns) / 1e3
       << ", \"pid\": 1, \"tid\": " << s.tid << ", \"args\": {\"depth\": "
       << s.depth;
    if (s.bytes > 0) os << ", \"bytes\": " << s.bytes;
    os << "}}";
  }
  os << "\n  ],\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {\n"
     << "    \"wall_ns\": " << (hi - lo) << ",\n    \"counters\": {";
  bool first_counter = true;
  for (const CounterValue& c : collect_counters()) {
    if (!first_counter) os << ',';
    first_counter = false;
    os << "\n      \"";
    json_escape(os, c.name);
    os << "\": " << c.value;
  }
  os << "\n    },\n    \"stages\": {";
  bool first_stage = true;
  for (const StageStat& st : collect_stages()) {
    if (!first_stage) os << ',';
    first_stage = false;
    os << "\n      \"";
    json_escape(os, st.name);
    os << "\": {\"count\": " << st.count << ", \"ns\": " << st.ns
       << ", \"bytes\": " << st.bytes << "}";
  }
  os << "\n    }\n  }\n}\n";
}

bool write_chrome_trace_file(const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  write_chrome_trace(os);
  os.flush();
  return static_cast<bool>(os);
}

}  // namespace tac::telemetry

#endif  // TAC_TELEMETRY
