#ifndef TAC_COMMON_THREAD_POOL_HPP
#define TAC_COMMON_THREAD_POOL_HPP

/// \file thread_pool.hpp
/// \brief Lazily-created shared worker pool backing tac::parallel_for on
/// the non-OpenMP path.
///
/// parallel_for used to spawn (and join) fresh std::threads on every call;
/// with the level pipeline issuing nested loops per container that cost
/// shows up as thousands of short-lived threads. The pool keeps one set of
/// hardware_concurrency workers alive and hands them *loops*: a loop is a
/// chunk counter plus a run_chunk callable, and every idle worker claims
/// chunks from the front loop until it is exhausted (work stealing at
/// chunk granularity — a single enqueue fans out to all workers).
///
/// Deadlock-freedom with nested loops: the thread that submits a loop
/// drains it itself (claims chunks until none remain) and only then sleeps
/// waiting for chunks other threads claimed. A claimed chunk is always
/// actively executing on some thread's stack, and nesting depth is finite
/// (the budget in parallel.hpp shrinks to 1, which runs inline), so every
/// wait resolves. Workers never block on anything except the queue.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/telemetry.hpp"

namespace tac::detail {

class ThreadPool {
 public:
  /// One parallel loop: chunks [0, chunks) claimed via an atomic ticket.
  struct Loop {
    std::function<void(std::size_t)> run_chunk;
    std::size_t chunks = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> unfinished{0};
  };

  /// The process-wide pool, created on first parallel_for that goes wide.
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  /// Makes `loop` visible to the workers and wakes them.
  void submit(const std::shared_ptr<Loop>& loop) {
    {
      const std::lock_guard<std::mutex> lock(m_);
      loops_.push_back(loop);
      TAC_COUNTER_ADD("pool.loops_submitted", 1);
      TAC_COUNTER_MAX("pool.queue_depth_peak", loops_.size());
    }
    cv_.notify_all();
  }

  /// Caller-side drain: claim and run chunks of `loop` until none are
  /// left unclaimed. The caller participates instead of oversubscribing
  /// with an extra idle thread.
  void drain(Loop& loop) {
    std::size_t ran = 0;
    for (;;) {
      const std::size_t c = loop.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= loop.chunks) break;
      ++ran;
      run_one(loop, c);
    }
    TAC_COUNTER_ADD("pool.chunks_inline", ran);
  }

  /// Blocks until every chunk of `loop` has finished (claimed chunks are
  /// executing on other threads; drain() must have been called first).
  void wait(const Loop& loop) {
    if (loop.unfinished.load(std::memory_order_acquire) == 0) return;
    std::unique_lock<std::mutex> lock(m_);
    cv_.wait(lock, [&] {
      return loop.unfinished.load(std::memory_order_acquire) == 0;
    });
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  ThreadPool() {
    unsigned n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ~ThreadPool() {
    {
      const std::lock_guard<std::mutex> lock(m_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  void run_one(Loop& loop, std::size_t chunk) {
    loop.run_chunk(chunk);
    if (loop.unfinished.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last chunk: wake the submitter sleeping in wait(). Lock to pair
      // with the predicate check, so the wakeup cannot be missed.
      const std::lock_guard<std::mutex> lock(m_);
      cv_.notify_all();
    }
  }

  void worker_loop() {
    std::unique_lock<std::mutex> lock(m_);
    for (;;) {
      cv_.wait(lock, [this] { return stop_ || !loops_.empty(); });
      if (stop_) return;
      // Claim a chunk from the front loop; pop loops that are fully
      // claimed (their remaining chunks are executing elsewhere).
      std::shared_ptr<Loop> loop = loops_.front();
      std::size_t c = loop->next.fetch_add(1, std::memory_order_relaxed);
      while (c >= loop->chunks) {
        if (!loops_.empty() && loops_.front() == loop) loops_.pop_front();
        if (loops_.empty()) {
          loop = nullptr;
          break;
        }
        loop = loops_.front();
        c = loop->next.fetch_add(1, std::memory_order_relaxed);
      }
      if (!loop) continue;
      lock.unlock();
      // A chunk claimed here ran on a pool worker rather than the
      // submitting thread: a steal, in work-stealing terms.
      TAC_COUNTER_ADD("pool.chunks_stolen", 1);
      run_one(*loop, c);
      lock.lock();
    }
  }

  std::mutex m_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Loop>> loops_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace tac::detail

#endif  // TAC_COMMON_THREAD_POOL_HPP
