#ifndef TAC_COMMON_TIMER_HPP
#define TAC_COMMON_TIMER_HPP

/// \file timer.hpp
/// \brief Wall-clock timing for the throughput metrics (Table 2).

#include <chrono>

namespace tac {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Throughput in MB/s given bytes processed and elapsed seconds, following
/// the paper's convention (original size / time, MB = 1e6 bytes).
[[nodiscard]] inline double throughput_mbs(std::size_t bytes, double secs) {
  return secs > 0 ? static_cast<double>(bytes) / 1e6 / secs : 0.0;
}

}  // namespace tac

#endif  // TAC_COMMON_TIMER_HPP
