#ifndef TAC_COMMON_PARALLEL_HPP
#define TAC_COMMON_PARALLEL_HPP

/// \file parallel.hpp
/// \brief Minimal shared-memory parallel loop used by compression batches
/// and field generation.
///
/// Uses OpenMP when compiled with it (the HPC-standard path), otherwise a
/// lazily-created shared thread pool (common/thread_pool.hpp) that claims
/// fixed chunks work-stealing style — no per-call thread spawns. Results
/// must not depend on iteration order; every call site partitions disjoint
/// output ranges, so the worker count never changes what is computed —
/// only how fast.
///
/// Loops nest (the level pipeline runs per-group compression inside
/// per-level workers, which call into sz's internal loops): a single
/// process-wide thread budget is divided across nesting levels, so an
/// outer loop over 3 levels on a 16-core machine leaves ~5 workers for
/// each level's inner loops instead of starving them or oversubscribing.
///
/// The worker count can be pinned with set_parallelism (or scoped via
/// ParallelismGuard); the level-pipeline determinism tests sweep it to
/// prove compressed containers are byte-identical at any thread count.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#if defined(_OPENMP)
#include <omp.h>
#else
#include "common/thread_pool.hpp"
#endif

namespace tac {

namespace detail {
inline std::atomic<unsigned>& parallelism_override() {
  static std::atomic<unsigned> n{0};  // 0 = use the hardware count
  return n;
}

/// Workers of an enclosing parallel_for carry the thread budget left for
/// loops they run themselves; 0 means "not inside a loop, full budget".
inline thread_local unsigned tl_nested_budget = 0;
}  // namespace detail

/// Number of workers to use for data-parallel loops: the pinned count if
/// set_parallelism was called with a non-zero value, else the hardware
/// concurrency.
[[nodiscard]] inline unsigned hardware_parallelism() {
  const unsigned pinned =
      detail::parallelism_override().load(std::memory_order_relaxed);
  if (pinned != 0) return pinned;
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

/// Pins the worker count for subsequent parallel_for calls (0 restores the
/// hardware default). Thread-safe; affects the whole process.
inline void set_parallelism(unsigned n) {
  detail::parallelism_override().store(n, std::memory_order_relaxed);
}

/// RAII worker-count pin: restores the previous setting on destruction.
class ParallelismGuard {
 public:
  explicit ParallelismGuard(unsigned n)
      : previous_(detail::parallelism_override().load(
            std::memory_order_relaxed)) {
    set_parallelism(n);
  }
  ~ParallelismGuard() { set_parallelism(previous_); }
  ParallelismGuard(const ParallelismGuard&) = delete;
  ParallelismGuard& operator=(const ParallelismGuard&) = delete;

 private:
  unsigned previous_;
};

/// Runs body(i) for i in [begin, end) across threads. `grain` is the
/// smallest worthwhile chunk; short loops run inline. If any iteration
/// throws, one of the thrown exceptions is rethrown on the calling thread
/// after the loop completes (workers are never abandoned mid-flight).
template <class Body>
void parallel_for(std::size_t begin, std::size_t end, const Body& body,
                  std::size_t grain = 1024) {
  const std::size_t n = end > begin ? end - begin : 0;
  if (n == 0) return;
  const unsigned budget = detail::tl_nested_budget != 0
                              ? detail::tl_nested_budget
                              : hardware_parallelism();
  const std::size_t chunks = std::min<std::size_t>(budget, n / grain);
  if (chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  // Budget left for loops the workers run themselves.
  const unsigned sub_budget =
      std::max<unsigned>(1, budget / static_cast<unsigned>(chunks));
  std::exception_ptr error;
  std::mutex error_mutex;
  const auto guarded = [&](std::size_t i) {
    try {
      body(i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!error) error = std::current_exception();
    }
  };
#if defined(_OPENMP)
  // Nested regions are budgeted, not forbidden: an inner loop with
  // sub_budget 1 never opens a region (chunks <= 1 above), so raising the
  // active-level cap cannot oversubscribe.
  if (!omp_in_parallel()) omp_set_max_active_levels(8);
#pragma omp parallel num_threads(static_cast<int>(chunks))
  {
    // OpenMP pools and reuses threads, so save/restore the budget.
    const unsigned saved = detail::tl_nested_budget;
    detail::tl_nested_budget = sub_budget;
#pragma omp for schedule(static)
    for (std::size_t i = begin; i < end; ++i) guarded(i);
    detail::tl_nested_budget = saved;
  }
#else
  // Shared-pool fan-out: one Loop object describes all chunks; idle pool
  // workers steal chunks while the calling thread drains the rest itself,
  // then sleeps only for chunks already executing elsewhere. Chunk c
  // always covers the same index range, so outputs (and therefore
  // containers) are byte-identical at any worker count.
  detail::ThreadPool& pool = detail::ThreadPool::instance();
  auto loop = std::make_shared<detail::ThreadPool::Loop>();
  const std::size_t per = n / chunks;
  loop->chunks = chunks;
  loop->unfinished.store(chunks, std::memory_order_relaxed);
  loop->run_chunk = [begin, end, per, chunks, sub_budget,
                     &guarded](std::size_t c) {
    const std::size_t lo = begin + c * per;
    const std::size_t hi = (c + 1 == chunks) ? end : lo + per;
    // Pool threads (and the helping caller) are reused across loops:
    // save/restore the nested budget exactly like the OpenMP branch.
    const unsigned saved = detail::tl_nested_budget;
    detail::tl_nested_budget = sub_budget;
    for (std::size_t i = lo; i < hi; ++i) guarded(i);
    detail::tl_nested_budget = saved;
  };
  pool.submit(loop);
  pool.drain(*loop);
  pool.wait(*loop);
#endif
  if (error) std::rethrow_exception(error);
}

}  // namespace tac

#endif  // TAC_COMMON_PARALLEL_HPP
