#ifndef TAC_COMMON_PARALLEL_HPP
#define TAC_COMMON_PARALLEL_HPP

/// \file parallel.hpp
/// \brief Minimal shared-memory parallel loop used by compression batches
/// and field generation.
///
/// Uses OpenMP when compiled with it (the HPC-standard path), otherwise a
/// std::thread block fan-out. Results must not depend on iteration order;
/// every call site partitions disjoint output ranges.

#include <algorithm>
#include <cstddef>
#include <thread>
#include <vector>

namespace tac {

/// Number of workers to use for data-parallel loops.
[[nodiscard]] inline unsigned hardware_parallelism() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

/// Runs body(i) for i in [begin, end) across threads. `grain` is the
/// smallest worthwhile chunk; short loops run inline.
template <class Body>
void parallel_for(std::size_t begin, std::size_t end, const Body& body,
                  std::size_t grain = 1024) {
  const std::size_t n = end > begin ? end - begin : 0;
  if (n == 0) return;
  const unsigned max_threads = hardware_parallelism();
  const std::size_t chunks = std::min<std::size_t>(max_threads, n / grain);
  if (chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
#if defined(_OPENMP)
#pragma omp parallel for schedule(static)
  for (std::size_t i = begin; i < end; ++i) body(i);
#else
  std::vector<std::thread> workers;
  workers.reserve(chunks);
  const std::size_t per = n / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * per;
    const std::size_t hi = (c + 1 == chunks) ? end : lo + per;
    workers.emplace_back([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    });
  }
  for (auto& w : workers) w.join();
#endif
}

}  // namespace tac

#endif  // TAC_COMMON_PARALLEL_HPP
