#ifndef TAC_COMMON_BITIO_HPP
#define TAC_COMMON_BITIO_HPP

/// \file bitio.hpp
/// \brief MSB-first bit-level writer/reader over byte buffers.
///
/// Used by the Huffman coder (variable-length codes up to 64 bits) and the
/// LZSS token stream. Codes are written most-significant-bit first so that
/// canonical Huffman decoding can peek a fixed-width window.

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace tac {

/// Accumulates bits MSB-first into a byte vector.
class BitWriter {
 public:
  /// Appends the low `nbits` bits of `bits` (MSB of that field first).
  void write(std::uint64_t bits, unsigned nbits) {
    while (nbits > 0) {
      unsigned take = 8 - fill_;
      if (take > nbits) take = nbits;
      const unsigned shift = nbits - take;
      cur_ = static_cast<std::uint8_t>(
          cur_ << take | ((bits >> shift) & ((1u << take) - 1u)));
      fill_ += take;
      nbits -= take;
      if (fill_ == 8) {
        out_.push_back(cur_);
        cur_ = 0;
        fill_ = 0;
      }
    }
  }

  void write_bit(bool b) { write(b ? 1u : 0u, 1); }

  /// Flushes any partial byte (zero-padded) and returns the buffer.
  [[nodiscard]] std::vector<std::uint8_t> finish() {
    if (fill_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(cur_ << (8 - fill_)));
      cur_ = 0;
      fill_ = 0;
    }
    return std::move(out_);
  }

  [[nodiscard]] std::size_t bit_count() const {
    return out_.size() * 8 + fill_;
  }

 private:
  std::vector<std::uint8_t> out_;
  std::uint8_t cur_ = 0;
  unsigned fill_ = 0;  // bits currently held in cur_
};

/// Reads bits MSB-first from a byte span. Reading past the end throws.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint64_t read(unsigned nbits) {
    std::uint64_t v = 0;
    for (unsigned i = 0; i < nbits; ++i)
      v = v << 1 | (read_bit() ? 1u : 0u);
    return v;
  }

  [[nodiscard]] bool read_bit() {
    if (pos_ >= data_.size())
      throw std::out_of_range("BitReader: read past end of stream");
    const bool b = (data_[pos_] >> (7 - fill_)) & 1u;
    if (++fill_ == 8) {
      fill_ = 0;
      ++pos_;
    }
    return b;
  }

  [[nodiscard]] std::size_t bits_consumed() const {
    return pos_ * 8 + fill_;
  }
  [[nodiscard]] bool exhausted() const { return pos_ >= data_.size(); }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  unsigned fill_ = 0;
};

}  // namespace tac

#endif  // TAC_COMMON_BITIO_HPP
