#ifndef TAC_COMMON_BITIO_HPP
#define TAC_COMMON_BITIO_HPP

/// \file bitio.hpp
/// \brief MSB-first bit-level writer/reader over byte buffers.
///
/// Used by the Huffman coder (variable-length codes up to 64 bits) and the
/// LZSS token stream. Codes are written most-significant-bit first so that
/// canonical Huffman decoding can peek a fixed-width window.
///
/// Both sides batch through 64-bit accumulators: the writer flushes whole
/// bytes from a pending word instead of assembling them bit by bit, and
/// the reader serves read()/peek() from an 8-byte big-endian window that
/// is refilled per word, not per bit. The byte streams produced/consumed
/// are identical to the historical bit-at-a-time implementation.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

namespace tac {

/// Accumulates bits MSB-first into a byte vector.
class BitWriter {
 public:
  /// Appends the low `nbits` bits of `bits` (MSB of that field first).
  void write(std::uint64_t bits, unsigned nbits) {
    if (nbits == 0) return;
    if (nbits > 56) {  // split so the accumulator never overflows
      const unsigned hi = nbits - 56;
      write(bits >> 56, hi);
      nbits = 56;
    }
    if (nbits < 64) bits &= (std::uint64_t{1} << nbits) - 1;
    while (fill_ + nbits > 64) flush_byte();
    acc_ = (acc_ << nbits) | bits;
    fill_ += nbits;
    while (fill_ >= 8) flush_byte();
  }

  void write_bit(bool b) { write(b ? 1u : 0u, 1); }

  /// Flushes any partial byte (zero-padded) and returns the buffer.
  [[nodiscard]] std::vector<std::uint8_t> finish() {
    if (fill_ > 0) {
      out_.push_back(
          static_cast<std::uint8_t>((acc_ << (8 - fill_)) & 0xFFu));
      acc_ = 0;
      fill_ = 0;
    }
    return std::move(out_);
  }

  [[nodiscard]] std::size_t bit_count() const {
    return out_.size() * 8 + fill_;
  }

 private:
  void flush_byte() {
    out_.push_back(static_cast<std::uint8_t>((acc_ >> (fill_ - 8)) & 0xFFu));
    fill_ -= 8;
  }

  std::vector<std::uint8_t> out_;
  std::uint64_t acc_ = 0;  // low fill_ bits are pending, oldest highest
  unsigned fill_ = 0;
};

/// Reads bits MSB-first from a byte span. Reading past the end throws.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data)
      : data_(data), total_bits_(data.size() * 8) {}

  [[nodiscard]] std::uint64_t read(unsigned nbits) {
    if (nbits == 0) return 0;
    if (pos_ + nbits > total_bits_)
      throw std::out_of_range("BitReader: read past end of stream");
    if (nbits > 56) {
      const std::uint64_t hi = read(56);
      const unsigned rest = nbits - 56;
      return (hi << rest) | read(rest);
    }
    const std::uint64_t v = peek_window() >> (64 - nbits);
    pos_ += nbits;
    return v;
  }

  [[nodiscard]] bool read_bit() {
    if (pos_ >= total_bits_)
      throw std::out_of_range("BitReader: read past end of stream");
    const bool b =
        (data_[pos_ >> 3] >> (7 - (pos_ & 7))) & 1u;
    ++pos_;
    return b;
  }

  /// Next ≤56 bits left-aligned in a 64-bit word, zero-padded past the end
  /// of the stream; does not consume. The Huffman table decoder probes
  /// this window and then consumes the matched length.
  [[nodiscard]] std::uint64_t peek_window() const {
    const std::size_t byte = pos_ >> 3;
    std::uint64_t w = 0;
    if (byte + 8 <= data_.size()) {
      std::memcpy(&w, data_.data() + byte, 8);
      w = byteswap64(w);
    } else {
      for (std::size_t i = 0; i < 8; ++i)
        w = (w << 8) |
            (byte + i < data_.size() ? data_[byte + i] : std::uint8_t{0});
    }
    return w << (pos_ & 7);
  }

  /// Consumes `nbits` previously peeked bits; throws if that crosses the
  /// end of the stream (same contract as read()). Takes size_t so a bulk
  /// decoder can retire a whole fast-loop region in one call.
  void consume(std::size_t nbits) {
    if (pos_ + nbits > total_bits_)
      throw std::out_of_range("BitReader: read past end of stream");
    pos_ += nbits;
  }

  [[nodiscard]] std::size_t bits_consumed() const { return pos_; }
  [[nodiscard]] std::size_t bits_total() const { return total_bits_; }
  [[nodiscard]] bool exhausted() const { return pos_ >= total_bits_; }

 private:
  static std::uint64_t byteswap64(std::uint64_t v) {
    return __builtin_bswap64(v);
  }

  std::span<const std::uint8_t> data_;
  std::size_t total_bits_ = 0;
  std::size_t pos_ = 0;  // absolute bit position
};

}  // namespace tac

#endif  // TAC_COMMON_BITIO_HPP
