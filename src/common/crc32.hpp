#ifndef TAC_COMMON_CRC32_HPP
#define TAC_COMMON_CRC32_HPP

/// \file crc32.hpp
/// \brief CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
///
/// Used for the per-payload checksums of container format v2: a flipped
/// bit anywhere in a compressed payload is reported as a checksum error
/// instead of surfacing as a misparse (or worse, silently wrong data)
/// deep inside a decoder.

#include <array>
#include <cstdint>
#include <span>

namespace tac {

namespace detail {
inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace detail

/// CRC-32 of `data`. Pass a previous result as `crc` to checksum a byte
/// stream incrementally (chunked file verification).
[[nodiscard]] inline std::uint32_t crc32(std::span<const std::uint8_t> data,
                                         std::uint32_t crc = 0) {
  const auto& table = detail::crc32_table();
  crc ^= 0xFFFFFFFFu;
  for (const std::uint8_t b : data)
    crc = table[(crc ^ b) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace tac

#endif  // TAC_COMMON_CRC32_HPP
