#ifndef TAC_COMMON_CRC32_HPP
#define TAC_COMMON_CRC32_HPP

/// \file crc32.hpp
/// \brief CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
///
/// Used for the per-payload checksums of container format v2: a flipped
/// bit anywhere in a compressed payload is reported as a checksum error
/// instead of surfacing as a misparse (or worse, silently wrong data)
/// deep inside a decoder.
///
/// The hot entry point uses slicing-by-8: eight 256-entry tables let the
/// loop fold one aligned 8-byte word per step instead of one byte, an
/// ~6x throughput gain with bit-identical results (pinned by known-answer
/// tests so v2 container checksums can never drift).

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <span>

namespace tac {

namespace detail {
inline const std::array<std::array<std::uint32_t, 256>, 8>& crc32_tables() {
  static const std::array<std::array<std::uint32_t, 256>, 8> tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i)
      for (std::size_t s = 1; s < 8; ++s)
        t[s][i] = t[0][t[s - 1][i] & 0xFFu] ^ (t[s - 1][i] >> 8);
    return t;
  }();
  return tables;
}

/// One-table reference implementation; kept as the slicing oracle for the
/// known-answer tests and the micro benchmark.
[[nodiscard]] inline std::uint32_t crc32_bytewise(
    std::span<const std::uint8_t> data, std::uint32_t crc = 0) {
  const auto& table = crc32_tables()[0];
  crc ^= 0xFFFFFFFFu;
  for (const std::uint8_t b : data)
    crc = table[(crc ^ b) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}
}  // namespace detail

/// CRC-32 of `data`. Pass a previous result as `crc` to checksum a byte
/// stream incrementally (chunked file verification).
[[nodiscard]] inline std::uint32_t crc32(std::span<const std::uint8_t> data,
                                         std::uint32_t crc = 0) {
  const auto& t = detail::crc32_tables();
  crc ^= 0xFFFFFFFFu;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  // Little-endian word folding: crc ^ next 4 bytes, then 4 more bytes,
  // each byte routed through its distance-specific table.
  while (std::endian::native == std::endian::little && n >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
          t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
    --n;
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace tac

#endif  // TAC_COMMON_CRC32_HPP
