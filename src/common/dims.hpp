#ifndef TAC_COMMON_DIMS_HPP
#define TAC_COMMON_DIMS_HPP

/// \file dims.hpp
/// \brief 3D extents and integer boxes used throughout the library.

#include <cstddef>
#include <cstdint>
#include <ostream>

namespace tac {

/// Extents of a 3D grid. A value of 1 in trailing axes describes lower
/// dimensional data (nz == 1 -> 2D, ny == nz == 1 -> 1D).
struct Dims3 {
  std::size_t nx = 0;
  std::size_t ny = 0;
  std::size_t nz = 0;

  [[nodiscard]] constexpr std::size_t volume() const { return nx * ny * nz; }

  /// Number of axes with extent > 1, clamped to at least 1 for non-empty
  /// grids; used to select the predictor dimensionality.
  [[nodiscard]] constexpr int dimensionality() const {
    int d = 0;
    if (nx > 1) ++d;
    if (ny > 1) ++d;
    if (nz > 1) ++d;
    return d == 0 ? 1 : d;
  }

  [[nodiscard]] constexpr std::size_t index(std::size_t x, std::size_t y,
                                            std::size_t z) const {
    return x + nx * (y + ny * z);
  }

  friend constexpr bool operator==(const Dims3&, const Dims3&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const Dims3& d) {
  return os << d.nx << "x" << d.ny << "x" << d.nz;
}

/// Half-open axis-aligned box of cells: [lo, hi) in each axis.
struct Box3 {
  std::size_t x0 = 0, y0 = 0, z0 = 0;
  std::size_t x1 = 0, y1 = 0, z1 = 0;

  [[nodiscard]] constexpr Dims3 extents() const {
    return {x1 - x0, y1 - y0, z1 - z0};
  }
  [[nodiscard]] constexpr std::size_t volume() const {
    return extents().volume();
  }
  [[nodiscard]] constexpr bool empty() const {
    return x1 <= x0 || y1 <= y0 || z1 <= z0;
  }
  [[nodiscard]] constexpr bool contains(std::size_t x, std::size_t y,
                                        std::size_t z) const {
    return x >= x0 && x < x1 && y >= y0 && y < y1 && z >= z0 && z < z1;
  }

  friend constexpr bool operator==(const Box3&, const Box3&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const Box3& b) {
  return os << "[" << b.x0 << "," << b.x1 << ")x[" << b.y0 << "," << b.y1
            << ")x[" << b.z0 << "," << b.z1 << ")";
}

/// Ceiling division for grid/block arithmetic.
[[nodiscard]] constexpr std::size_t ceil_div(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}

}  // namespace tac

#endif  // TAC_COMMON_DIMS_HPP
