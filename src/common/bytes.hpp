#ifndef TAC_COMMON_BYTES_HPP
#define TAC_COMMON_BYTES_HPP

/// \file bytes.hpp
/// \brief Little-endian byte buffer serialization with bounds checking.
///
/// All on-disk / in-container structures in this library are serialized
/// through ByteWriter/ByteReader so the format is platform independent and
/// truncated inputs fail loudly instead of reading garbage.

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace tac {

class ByteWriter {
 public:
  template <class T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& v) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  /// LEB128-style unsigned varint; compact for the many small counts in
  /// block metadata.
  void put_varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80u);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void put_bytes(std::span<const std::uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  /// Length-prefixed byte blob.
  void put_blob(std::span<const std::uint8_t> bytes) {
    put_varint(bytes.size());
    put_bytes(bytes);
  }

  void put_string(const std::string& s) {
    put_varint(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Appends `n` zero bytes and returns their offset, for fields whose
  /// values are only known later (payload index tables): write the rest of
  /// the buffer, then `patch` the reserved range.
  std::size_t reserve(std::size_t n) {
    const std::size_t pos = buf_.size();
    buf_.resize(pos + n, 0);
    return pos;
  }

  /// Overwrites previously written (or reserved) bytes at `pos`. Throws if
  /// the value would extend past the current end — patching never grows
  /// the buffer.
  template <class T>
    requires std::is_trivially_copyable_v<T>
  void patch(std::size_t pos, const T& v) {
    if (pos + sizeof(T) > buf_.size())
      throw std::out_of_range("ByteWriter::patch: range past end of buffer");
    std::memcpy(buf_.data() + pos, &v, sizeof(T));
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] const std::vector<std::uint8_t>& buffer() const {
    return buf_;
  }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  template <class T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] T get() {
    require(sizeof(T));
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  [[nodiscard]] std::uint64_t get_varint() {
    std::uint64_t v = 0;
    unsigned shift = 0;
    for (;;) {
      require(1);
      const std::uint8_t b = data_[pos_++];
      if (shift >= 64)
        throw std::runtime_error("ByteReader: varint overflow");
      v |= static_cast<std::uint64_t>(b & 0x7Fu) << shift;
      if (!(b & 0x80u)) return v;
      shift += 7;
    }
  }

  [[nodiscard]] std::span<const std::uint8_t> get_bytes(std::size_t n) {
    require(n);
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  [[nodiscard]] std::span<const std::uint8_t> get_blob() {
    const std::uint64_t n = get_varint();
    return get_bytes(static_cast<std::size_t>(n));
  }

  [[nodiscard]] std::string get_string() {
    const auto s = get_blob();
    return {reinterpret_cast<const char*>(s.data()), s.size()};
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }

  /// Repositions the cursor (random access into indexed containers).
  /// Seeking to size() is allowed (the "everything consumed" position).
  void seek(std::size_t pos) {
    if (pos > data_.size())
      throw std::out_of_range("ByteReader::seek: position past end");
    pos_ = pos;
  }

 private:
  void require(std::size_t n) const {
    // Phrased to avoid overflow when a corrupt varint asks for a length
    // near SIZE_MAX.
    if (n > data_.size() - pos_)
      throw std::runtime_error("ByteReader: truncated input");
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace tac

#endif  // TAC_COMMON_BYTES_HPP
