#ifndef TAC_COMMON_ARRAY3D_HPP
#define TAC_COMMON_ARRAY3D_HPP

/// \file array3d.hpp
/// \brief Owning row-major 3D array with x as the fastest axis.

#include <cassert>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "common/dims.hpp"

namespace tac {

/// Dense 3D array stored contiguously; index (x, y, z) maps to
/// x + nx * (y + ny * z). Degenerates naturally to 2D/1D when trailing
/// extents are 1.
template <class T>
class Array3D {
 public:
  Array3D() = default;
  explicit Array3D(Dims3 dims, T fill = T{})
      : dims_(dims), data_(dims.volume(), fill) {}
  Array3D(Dims3 dims, std::vector<T> data)
      : dims_(dims), data_(std::move(data)) {
    assert(data_.size() == dims_.volume());
  }

  [[nodiscard]] const Dims3& dims() const { return dims_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] T& operator()(std::size_t x, std::size_t y, std::size_t z) {
    assert(x < dims_.nx && y < dims_.ny && z < dims_.nz);
    return data_[dims_.index(x, y, z)];
  }
  [[nodiscard]] const T& operator()(std::size_t x, std::size_t y,
                                    std::size_t z) const {
    assert(x < dims_.nx && y < dims_.ny && z < dims_.nz);
    return data_[dims_.index(x, y, z)];
  }

  [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }

  [[nodiscard]] std::span<T> span() { return data_; }
  [[nodiscard]] std::span<const T> span() const { return data_; }
  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }
  [[nodiscard]] std::vector<T>& storage() { return data_; }
  [[nodiscard]] const std::vector<T>& storage() const { return data_; }

  void fill(const T& v) { data_.assign(data_.size(), v); }

  /// Copies the half-open box `src_box` of this array into a new array of
  /// matching extents.
  [[nodiscard]] Array3D<T> extract(const Box3& src_box) const {
    Array3D<T> out(src_box.extents());
    for (std::size_t z = src_box.z0; z < src_box.z1; ++z)
      for (std::size_t y = src_box.y0; y < src_box.y1; ++y)
        for (std::size_t x = src_box.x0; x < src_box.x1; ++x)
          out(x - src_box.x0, y - src_box.y0, z - src_box.z0) =
              (*this)(x, y, z);
    return out;
  }

  /// Writes `block` into this array with its origin at (x0, y0, z0).
  void insert(const Array3D<T>& block, std::size_t x0, std::size_t y0,
              std::size_t z0) {
    const Dims3& b = block.dims();
    assert(x0 + b.nx <= dims_.nx && y0 + b.ny <= dims_.ny &&
           z0 + b.nz <= dims_.nz);
    for (std::size_t z = 0; z < b.nz; ++z)
      for (std::size_t y = 0; y < b.ny; ++y)
        for (std::size_t x = 0; x < b.nx; ++x)
          (*this)(x0 + x, y0 + y, z0 + z) = block(x, y, z);
  }

  friend bool operator==(const Array3D&, const Array3D&) = default;

 private:
  Dims3 dims_;
  std::vector<T> data_;
};

}  // namespace tac

#endif  // TAC_COMMON_ARRAY3D_HPP
