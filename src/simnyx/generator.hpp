#ifndef TAC_SIMNYX_GENERATOR_HPP
#define TAC_SIMNYX_GENERATOR_HPP

/// \file generator.hpp
/// \brief Synthetic Nyx-like AMR dataset generation.
///
/// Builds tree-structured AMR datasets whose per-level densities match
/// targets (Table 1 of the paper). Refinement is assigned at aligned
/// block-region granularity by ranking regions on the density field — the
/// same "refine where the value is large" criterion AMR codes use — so the
/// highest-density regions land on the finest level, exactly the structure
/// the paper's z5..z2 evolution shows.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "amr/dataset.hpp"
#include "common/dims.hpp"

namespace tac::simnyx {

struct GeneratorConfig {
  Dims3 finest_dims{128, 128, 128};
  /// Target fraction of the domain volume stored at each level, finest
  /// first. Must have >= 1 entry; the coarsest level absorbs rounding.
  std::vector<double> level_densities{0.23, 0.77};
  /// Refinement-region side length in finest cells; must be a multiple of
  /// ratio^(levels-1) so regions are whole cells on every level.
  std::size_t region_size = 16;
  int refinement_ratio = 2;
  std::uint64_t seed = 0x5EEDULL;

  // Field shaping (baryon density: log-normal with large dynamic range,
  // mean chosen so the paper's absolute error bounds 1e8..1e10 are
  // meaningful fractions of the value range).
  double spectral_index = -2.5;
  double lognormal_sigma = 2.0;
  double mean_density = 1e9;
  /// Gaussian spectral cutoff as a fraction of the grid extent; smaller =
  /// smoother fields. 1/16 leaves ~16-cell features, matching the
  /// large-scale coherence (and hence compressibility) of real Nyx
  /// snapshots much better than white-ish small-scale noise.
  double k_cutoff_fraction = 1.0 / 16.0;
};

/// The Nyx field set the paper lists (§4.1).
struct NyxFieldSet {
  amr::AmrDataset baryon_density;
  amr::AmrDataset dark_matter_density;
  amr::AmrDataset temperature;
  amr::AmrDataset velocity_x;
  amr::AmrDataset velocity_y;
  amr::AmrDataset velocity_z;
};

/// Generates the baryon density dataset (the field every experiment in the
/// paper's evaluation uses).
[[nodiscard]] amr::AmrDataset generate_baryon_density(
    const GeneratorConfig& cfg);

/// Generates all six Nyx fields on a shared refinement structure.
[[nodiscard]] NyxFieldSet generate_fields(const GeneratorConfig& cfg);

/// A named dataset preset mirroring one row of the paper's Table 1.
struct DatasetPreset {
  std::string name;
  Dims3 finest_dims;
  std::vector<double> level_densities;  ///< finest first
};

/// The seven Table-1 datasets, scaled down by `scale_shift` powers of two
/// per axis (default 512^3 -> 128^3) to keep experiment runtimes short.
/// Densities are preserved exactly.
[[nodiscard]] std::vector<DatasetPreset> table1_presets(
    unsigned scale_shift = 2);

/// Generates a preset's baryon density field.
[[nodiscard]] amr::AmrDataset generate_preset(const DatasetPreset& preset,
                                              std::uint64_t seed = 0x5EEDULL);

}  // namespace tac::simnyx

#endif  // TAC_SIMNYX_GENERATOR_HPP
