#ifndef TAC_SIMNYX_GRF_HPP
#define TAC_SIMNYX_GRF_HPP

/// \file grf.hpp
/// \brief Gaussian random fields with power-law spectra.
///
/// The substitution substrate for Nyx snapshot fields: cosmological density
/// fields are, to first order, log-normal transforms of Gaussian random
/// fields whose power spectrum falls off with wavenumber. We shape white
/// noise in Fourier space — P(k) ∝ k^n · exp(-(k/k_cut)^2) — which gives
/// smooth, large-scale-correlated fields with the spatial coherence that
/// prediction-based compressors exploit in real simulation data.

#include <cstdint>

#include "common/array3d.hpp"
#include "common/dims.hpp"

namespace tac::simnyx {

struct GrfConfig {
  /// Spectral index n in P(k) ∝ k^n; more negative = smoother field.
  double spectral_index = -2.5;
  /// Gaussian cutoff (in integer wavenumber units) suppressing grid-scale
  /// noise; 0 disables the cutoff.
  double k_cutoff = 0.0;
  std::uint64_t seed = 0x5EEDULL;
};

/// Generates a zero-mean, unit-variance Gaussian random field on a
/// power-of-two grid. Deterministic in (config, dims).
[[nodiscard]] Array3D<double> gaussian_random_field(Dims3 dims,
                                                    const GrfConfig& cfg);

}  // namespace tac::simnyx

#endif  // TAC_SIMNYX_GRF_HPP
