#include "simnyx/generator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <span>
#include <stdexcept>

#include "common/parallel.hpp"
#include "simnyx/grf.hpp"

namespace tac::simnyx {
namespace {

/// Box-averages `fine` by an integer factor per axis.
Array3D<double> downsample_avg(const Array3D<double>& fine, std::size_t s) {
  const Dims3 fd = fine.dims();
  const Dims3 cd{fd.nx / s, fd.ny / s, fd.nz / s};
  Array3D<double> out(cd);
  const double inv = 1.0 / static_cast<double>(s * s * s);
  parallel_for(0, cd.nz, [&](std::size_t z) {
    for (std::size_t y = 0; y < cd.ny; ++y)
      for (std::size_t x = 0; x < cd.nx; ++x) {
        double sum = 0;
        for (std::size_t dz = 0; dz < s; ++dz)
          for (std::size_t dy = 0; dy < s; ++dy)
            for (std::size_t dx = 0; dx < s; ++dx)
              sum += fine(x * s + dx, y * s + dy, z * s + dz);
        out(x, y, z) = sum * inv;
      }
  }, /*grain=*/1);
  return out;
}

/// Per-region refinement level chosen by ranking regions on their peak
/// field value: the top `density[0]` fraction of the domain refines to the
/// finest level, and so on. Returns the region->level map.
Array3D<std::uint8_t> assign_levels(const Array3D<double>& field,
                                    std::size_t region_size,
                                    std::span<const double> densities) {
  const Dims3 fd = field.dims();
  const Dims3 rd{fd.nx / region_size, fd.ny / region_size,
                 fd.nz / region_size};
  const std::size_t nregions = rd.volume();
  const std::size_t nlevels = densities.size();

  std::vector<double> score(nregions, 0.0);
  parallel_for(0, rd.nz, [&](std::size_t rz) {
    for (std::size_t ry = 0; ry < rd.ny; ++ry)
      for (std::size_t rx = 0; rx < rd.nx; ++rx) {
        double mx = -std::numeric_limits<double>::infinity();
        for (std::size_t dz = 0; dz < region_size; ++dz)
          for (std::size_t dy = 0; dy < region_size; ++dy)
            for (std::size_t dx = 0; dx < region_size; ++dx)
              mx = std::max(mx, field(rx * region_size + dx,
                                      ry * region_size + dy,
                                      rz * region_size + dz));
        score[rd.index(rx, ry, rz)] = mx;
      }
  }, /*grain=*/1);

  std::vector<std::size_t> order(nregions);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return score[a] > score[b];
  });

  // Region counts per level; finer levels (all but the coarsest) get at
  // least one region so scaled-down ultra-sparse presets stay non-empty.
  std::vector<std::size_t> counts(nlevels, 0);
  std::size_t assigned = 0;
  for (std::size_t l = 0; l + 1 < nlevels; ++l) {
    const auto want = static_cast<std::size_t>(
        std::llround(densities[l] * static_cast<double>(nregions)));
    counts[l] = std::max<std::size_t>(1, want);
    assigned += counts[l];
  }
  if (assigned >= nregions)
    throw std::invalid_argument(
        "assign_levels: densities leave no room for the coarsest level");
  counts[nlevels - 1] = nregions - assigned;

  Array3D<std::uint8_t> level_of(rd);
  std::size_t pos = 0;
  for (std::size_t l = 0; l < nlevels; ++l)
    for (std::size_t i = 0; i < counts[l]; ++i)
      level_of[order[pos++]] = static_cast<std::uint8_t>(l);
  return level_of;
}

/// Builds one AMR dataset from a finest-resolution field and a region ->
/// level assignment. Values at coarse levels are box-averages of the
/// finest field (how AMR codes represent unrefined regions).
amr::AmrDataset build_dataset(const std::string& name,
                              const Array3D<double>& finest_field,
                              const Array3D<std::uint8_t>& level_of,
                              std::size_t region_size, std::size_t nlevels,
                              int ratio) {
  const Dims3 fd = finest_field.dims();
  const Dims3 rd = level_of.dims();
  std::vector<amr::AmrLevel> levels;
  levels.reserve(nlevels);

  std::size_t scale = 1;
  for (std::size_t l = 0; l < nlevels; ++l) {
    const Dims3 ld{fd.nx / scale, fd.ny / scale, fd.nz / scale};
    amr::AmrLevel lv(ld);
    const Array3D<double> field_l =
        scale == 1 ? finest_field : downsample_avg(finest_field, scale);
    const std::size_t rs_l = region_size / scale;  // region side at level l
    for (std::size_t rz = 0; rz < rd.nz; ++rz)
      for (std::size_t ry = 0; ry < rd.ny; ++ry)
        for (std::size_t rx = 0; rx < rd.nx; ++rx) {
          if (level_of(rx, ry, rz) != l) continue;
          for (std::size_t dz = 0; dz < rs_l; ++dz)
            for (std::size_t dy = 0; dy < rs_l; ++dy)
              for (std::size_t dx = 0; dx < rs_l; ++dx) {
                const std::size_t x = rx * rs_l + dx;
                const std::size_t y = ry * rs_l + dy;
                const std::size_t z = rz * rs_l + dz;
                lv.mask(x, y, z) = 1;
                lv.data(x, y, z) = field_l(x, y, z);
              }
        }
    levels.push_back(std::move(lv));
    scale *= static_cast<std::size_t>(ratio);
  }
  return amr::AmrDataset(name, std::move(levels), ratio);
}

void check_config(const GeneratorConfig& cfg) {
  const std::size_t nlevels = cfg.level_densities.size();
  if (nlevels == 0)
    throw std::invalid_argument("generator: need at least one level");
  std::size_t min_region = 1;
  for (std::size_t l = 1; l < nlevels; ++l)
    min_region *= static_cast<std::size_t>(cfg.refinement_ratio);
  if (cfg.region_size % min_region != 0)
    throw std::invalid_argument(
        "generator: region_size must be a multiple of ratio^(levels-1)");
  if (cfg.finest_dims.nx % cfg.region_size ||
      cfg.finest_dims.ny % cfg.region_size ||
      cfg.finest_dims.nz % cfg.region_size)
    throw std::invalid_argument(
        "generator: finest dims must be a multiple of region_size");
}

/// Log-normal transform with approximately unit mean before scaling.
Array3D<double> lognormal(const Array3D<double>& g, double sigma,
                          double scale) {
  Array3D<double> out(g.dims());
  const double correction = -0.5 * sigma * sigma;  // E[exp(σg - σ²/2)] = 1
  for (std::size_t i = 0; i < g.size(); ++i)
    out[i] = scale * std::exp(sigma * g[i] + correction);
  return out;
}

}  // namespace

amr::AmrDataset generate_baryon_density(const GeneratorConfig& cfg) {
  check_config(cfg);
  const GrfConfig grf{
      .spectral_index = cfg.spectral_index,
      .k_cutoff =
          static_cast<double>(cfg.finest_dims.nx) * cfg.k_cutoff_fraction,
      .seed = cfg.seed};
  const auto g = gaussian_random_field(cfg.finest_dims, grf);
  const auto rho = lognormal(g, cfg.lognormal_sigma, cfg.mean_density);
  const auto level_of =
      assign_levels(rho, cfg.region_size, cfg.level_densities);
  return build_dataset("baryon_density", rho, level_of, cfg.region_size,
                       cfg.level_densities.size(), cfg.refinement_ratio);
}

NyxFieldSet generate_fields(const GeneratorConfig& cfg) {
  check_config(cfg);
  const double kc =
      static_cast<double>(cfg.finest_dims.nx) * cfg.k_cutoff_fraction;
  const auto g = gaussian_random_field(
      cfg.finest_dims,
      {.spectral_index = cfg.spectral_index, .k_cutoff = kc, .seed = cfg.seed});
  const auto g2 = gaussian_random_field(
      cfg.finest_dims, {.spectral_index = cfg.spectral_index,
                        .k_cutoff = kc,
                        .seed = cfg.seed + 1});
  const auto gv = [&](std::uint64_t off) {
    return gaussian_random_field(cfg.finest_dims,
                                 {.spectral_index = cfg.spectral_index - 0.5,
                                  .k_cutoff = kc,
                                  .seed = cfg.seed + off});
  };

  const auto rho = lognormal(g, cfg.lognormal_sigma, cfg.mean_density);
  // Refinement structure is decided once, on baryon density, and shared by
  // all fields — AMR codes refine the whole grid hierarchy, not per field.
  const auto level_of =
      assign_levels(rho, cfg.region_size, cfg.level_densities);
  const std::size_t nlevels = cfg.level_densities.size();

  // Dark matter traces baryons with extra small-scale power.
  Array3D<double> dm(cfg.finest_dims);
  for (std::size_t i = 0; i < dm.size(); ++i) {
    const double mixed = 0.85 * g[i] + 0.53 * g2[i];
    dm[i] = cfg.mean_density * 5.0 *
            std::exp(1.1 * cfg.lognormal_sigma * mixed -
                     0.5 * 1.21 * cfg.lognormal_sigma * cfg.lognormal_sigma);
  }
  // Temperature–density relation T ∝ ρ^0.6 with scatter.
  Array3D<double> temp(cfg.finest_dims);
  for (std::size_t i = 0; i < temp.size(); ++i)
    temp[i] = 1e4 * std::pow(rho[i] / cfg.mean_density, 0.6) *
              std::exp(0.3 * g2[i]);
  // Peculiar velocities: Gaussian, ~1e7 cm/s scale, signed.
  const auto vxg = gv(11), vyg = gv(12), vzg = gv(13);
  Array3D<double> vx(cfg.finest_dims), vy(cfg.finest_dims),
      vz(cfg.finest_dims);
  for (std::size_t i = 0; i < vx.size(); ++i) {
    vx[i] = 1e7 * vxg[i];
    vy[i] = 1e7 * vyg[i];
    vz[i] = 1e7 * vzg[i];
  }

  auto make = [&](const std::string& name, const Array3D<double>& f) {
    return build_dataset(name, f, level_of, cfg.region_size, nlevels,
                         cfg.refinement_ratio);
  };
  return NyxFieldSet{.baryon_density = make("baryon_density", rho),
                     .dark_matter_density = make("dark_matter_density", dm),
                     .temperature = make("temperature", temp),
                     .velocity_x = make("velocity_x", vx),
                     .velocity_y = make("velocity_y", vy),
                     .velocity_z = make("velocity_z", vz)};
}

std::vector<DatasetPreset> table1_presets(unsigned scale_shift) {
  const auto dim = [scale_shift](std::size_t base) {
    const std::size_t d = base >> scale_shift;
    return Dims3{d, d, d};
  };
  return {
      {"Run1_Z10", dim(512), {0.23, 0.77}},
      {"Run1_Z5", dim(512), {0.58, 0.42}},
      {"Run1_Z3", dim(512), {0.64, 0.36}},
      {"Run1_Z2", dim(512), {0.63, 0.37}},
      {"Run2_T2", dim(256), {0.002, 0.998}},
      {"Run2_T3", dim(512), {0.0002, 0.0056, 0.9942}},
      {"Run2_T4", dim(1024), {3e-5, 0.0002, 0.022, 0.9777}},
  };
}

amr::AmrDataset generate_preset(const DatasetPreset& preset,
                                std::uint64_t seed) {
  GeneratorConfig cfg;
  cfg.finest_dims = preset.finest_dims;
  cfg.level_densities = preset.level_densities;
  cfg.seed = seed;
  std::size_t min_region = 1;
  for (std::size_t l = 1; l < preset.level_densities.size(); ++l)
    min_region *= 2;
  cfg.region_size = std::max<std::size_t>(8, min_region);
  return generate_baryon_density(cfg);
}

}  // namespace tac::simnyx
