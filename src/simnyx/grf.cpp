#include "simnyx/grf.hpp"

#include <cmath>
#include <random>

#include "fft/fft.hpp"

namespace tac::simnyx {

Array3D<double> gaussian_random_field(Dims3 dims, const GrfConfig& cfg) {
  // Real white noise -> forward FFT -> spectral shaping -> inverse FFT.
  // Starting from real noise keeps the spectrum Hermitian, so the inverse
  // transform is real up to rounding.
  std::mt19937_64 rng(cfg.seed);
  std::normal_distribution<double> normal(0.0, 1.0);
  Array3D<fft::Complex> spec(dims);
  for (std::size_t i = 0; i < spec.size(); ++i)
    spec[i] = fft::Complex(normal(rng), 0.0);
  fft::fft_3d(spec, /*inverse=*/false);

  const auto half_k = [](std::size_t i, std::size_t n) {
    const auto k = static_cast<double>(i);
    return i <= n / 2 ? k : k - static_cast<double>(n);
  };
  for (std::size_t z = 0; z < dims.nz; ++z)
    for (std::size_t y = 0; y < dims.ny; ++y)
      for (std::size_t x = 0; x < dims.nx; ++x) {
        const double kx = half_k(x, dims.nx);
        const double ky = half_k(y, dims.ny);
        const double kz = half_k(z, dims.nz);
        const double k2 = kx * kx + ky * ky + kz * kz;
        double amp = 0.0;
        if (k2 > 0) {
          amp = std::pow(std::sqrt(k2), cfg.spectral_index / 2.0);
          if (cfg.k_cutoff > 0)
            amp *= std::exp(-k2 / (cfg.k_cutoff * cfg.k_cutoff));
        }
        spec(x, y, z) *= amp;  // zero mean: amp(k=0) = 0
      }
  fft::fft_3d(spec, /*inverse=*/true);

  Array3D<double> field(dims);
  double sum = 0, sum2 = 0;
  for (std::size_t i = 0; i < field.size(); ++i) {
    field[i] = spec[i].real();
    sum += field[i];
    sum2 += field[i] * field[i];
  }
  const double n = static_cast<double>(field.size());
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  const double inv_sd = var > 0 ? 1.0 / std::sqrt(var) : 1.0;
  for (std::size_t i = 0; i < field.size(); ++i)
    field[i] = (field[i] - mean) * inv_sd;
  return field;
}

}  // namespace tac::simnyx
