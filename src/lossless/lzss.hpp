#ifndef TAC_LOSSLESS_LZSS_HPP
#define TAC_LOSSLESS_LZSS_HPP

/// \file lzss.hpp
/// \brief LZSS byte compressor: 64 KiB sliding window, hash-chain matching.
///
/// Plays the role Zstandard plays in SZ's pipeline — a fast generic
/// dictionary stage after entropy coding. Huffman output over smooth data
/// degenerates to long constant-byte runs which this stage folds up.

#include <cstdint>
#include <span>
#include <vector>

namespace tac::lossless {

struct LzssConfig {
  unsigned max_chain = 64;  ///< cap on hash-chain walks per position
};

/// Compresses `input`. Output always decodes back exactly; incompressible
/// input grows by ~1/8 (flag bits) plus a small header.
[[nodiscard]] std::vector<std::uint8_t> lzss_compress(
    std::span<const std::uint8_t> input, const LzssConfig& cfg = {});

[[nodiscard]] std::vector<std::uint8_t> lzss_decompress(
    std::span<const std::uint8_t> compressed);

/// LZSS v2: the fast-profile stream (see `lossless::CodecProfile`). Same
/// 64 KiB window and hash-chain index as v1, but a byte-aligned token
/// format (no flag-bit stream), one-step lazy matching, unbounded match
/// lengths, and a skip heuristic that accelerates through incompressible
/// runs instead of probing every byte.
///
/// Stream layout: varint uncompressed size, then tokens. Each token is a
/// control byte `(literal_run << 4) | (match_len - 4)` — either nibble
/// saturates at 15 and continues in LZ4-style extension bytes (add each
/// byte, stop on a byte != 255) — followed by the literal bytes, then a
/// 2-byte little-endian offset-minus-1 (window 1..65536) and the match
/// length extension. The final token carries literals only; the decoder
/// stops once the declared size is reached.
[[nodiscard]] std::vector<std::uint8_t> lzss2_compress(
    std::span<const std::uint8_t> input, const LzssConfig& cfg = {});

[[nodiscard]] std::vector<std::uint8_t> lzss2_decompress(
    std::span<const std::uint8_t> compressed);

}  // namespace tac::lossless

#endif  // TAC_LOSSLESS_LZSS_HPP
