#ifndef TAC_LOSSLESS_LZSS_HPP
#define TAC_LOSSLESS_LZSS_HPP

/// \file lzss.hpp
/// \brief LZSS byte compressor: 64 KiB sliding window, hash-chain matching.
///
/// Plays the role Zstandard plays in SZ's pipeline — a fast generic
/// dictionary stage after entropy coding. Huffman output over smooth data
/// degenerates to long constant-byte runs which this stage folds up.

#include <cstdint>
#include <span>
#include <vector>

namespace tac::lossless {

struct LzssConfig {
  unsigned max_chain = 64;  ///< cap on hash-chain walks per position
};

/// Compresses `input`. Output always decodes back exactly; incompressible
/// input grows by ~1/8 (flag bits) plus a small header.
[[nodiscard]] std::vector<std::uint8_t> lzss_compress(
    std::span<const std::uint8_t> input, const LzssConfig& cfg = {});

[[nodiscard]] std::vector<std::uint8_t> lzss_decompress(
    std::span<const std::uint8_t> compressed);

}  // namespace tac::lossless

#endif  // TAC_LOSSLESS_LZSS_HPP
