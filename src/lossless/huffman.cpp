#include "lossless/huffman.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <queue>
#include <stdexcept>
#include <unordered_map>

#include "common/bitio.hpp"
#include "common/bytes.hpp"

namespace tac::lossless {
namespace {

/// Computes optimal code lengths for the given (symbol, freq) pairs using
/// the standard two-queue merge over sorted leaves; O(n log n) from the
/// sort, O(n) merge.
std::vector<std::uint8_t> code_lengths(
    std::vector<std::pair<std::uint64_t, std::uint32_t>>& freq_sym) {
  const std::size_t n = freq_sym.size();
  std::vector<std::uint8_t> lengths(n, 0);
  if (n == 1) {
    lengths[0] = 1;  // a lone symbol still needs one bit to terminate decode
    return lengths;
  }
  std::sort(freq_sym.begin(), freq_sym.end());

  // Internal tree built over indices: leaves are [0, n), internals appended.
  struct Node {
    std::uint64_t freq;
    int left, right;  // children indices; -1 marks a leaf
  };
  std::vector<Node> nodes;
  nodes.reserve(2 * n);
  for (const auto& [f, s] : freq_sym) nodes.push_back({f, -1, -1});

  std::size_t leaf_next = 0;
  std::vector<int> merged;  // queue of internal node ids (freqs ascending)
  merged.reserve(n);
  std::size_t merged_next = 0;

  auto pop_min = [&]() -> int {
    const bool leaf_ok = leaf_next < n;
    const bool int_ok = merged_next < merged.size();
    if (leaf_ok &&
        (!int_ok || nodes[leaf_next].freq <= nodes[merged[merged_next]].freq))
      return static_cast<int>(leaf_next++);
    return merged[merged_next++];
  };

  for (std::size_t i = 0; i + 1 < n; ++i) {
    const int a = pop_min();
    const int b = pop_min();
    nodes.push_back({nodes[a].freq + nodes[b].freq, a, b});
    merged.push_back(static_cast<int>(nodes.size()) - 1);
  }

  // Depth-first assignment of depths to leaves.
  std::vector<std::pair<int, std::uint8_t>> stack{
      {static_cast<int>(nodes.size()) - 1, 0}};
  while (!stack.empty()) {
    auto [id, depth] = stack.back();
    stack.pop_back();
    const Node& nd = nodes[static_cast<std::size_t>(id)];
    if (nd.left < 0) {
      lengths[static_cast<std::size_t>(id)] = depth == 0 ? 1 : depth;
    } else {
      stack.push_back({nd.left, static_cast<std::uint8_t>(depth + 1)});
      stack.push_back({nd.right, static_cast<std::uint8_t>(depth + 1)});
    }
  }
  return lengths;
}

struct CanonicalCodes {
  // Parallel to table.symbols.
  std::vector<std::uint64_t> codes;
  std::array<std::uint64_t, HuffmanTable::kMaxLen + 2> first_code{};
  std::array<std::uint32_t, HuffmanTable::kMaxLen + 2> offset{};
  std::array<std::uint32_t, HuffmanTable::kMaxLen + 2> count{};
  std::vector<std::uint32_t> by_length;  // symbol ids sorted by (len, sym)
};

/// Assigns canonical codes: shorter codes first, ties broken by symbol
/// value. Standard DEFLATE-style construction.
CanonicalCodes canonicalize(const HuffmanTable& table) {
  CanonicalCodes cc;
  const std::size_t n = table.symbols.size();
  cc.codes.resize(n);
  cc.by_length.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    cc.by_length[i] = static_cast<std::uint32_t>(i);
  std::sort(cc.by_length.begin(), cc.by_length.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (table.lengths[a] != table.lengths[b])
                return table.lengths[a] < table.lengths[b];
              return table.symbols[a] < table.symbols[b];
            });
  for (std::size_t i = 0; i < n; ++i) ++cc.count[table.lengths[i]];

  std::uint64_t code = 0;
  std::uint32_t off = 0;
  for (unsigned len = 1; len <= HuffmanTable::kMaxLen; ++len) {
    code <<= 1;
    cc.first_code[len] = code;
    cc.offset[len] = off;
    code += cc.count[len];
    off += cc.count[len];
  }
  std::uint32_t assigned = 0;
  for (unsigned len = 1; len <= HuffmanTable::kMaxLen; ++len) {
    std::uint64_t c = cc.first_code[len];
    for (std::uint32_t k = 0; k < cc.count[len]; ++k) {
      cc.codes[cc.by_length[assigned]] = c++;
      ++assigned;
    }
  }
  return cc;
}

}  // namespace

HuffmanTable huffman_build(std::span<const std::uint32_t> symbols) {
  std::unordered_map<std::uint32_t, std::uint64_t> freq;
  for (const std::uint32_t s : symbols) ++freq[s];

  HuffmanTable table;
  if (freq.empty()) return table;

  std::vector<std::pair<std::uint64_t, std::uint32_t>> freq_sym;
  freq_sym.reserve(freq.size());
  for (const auto& [sym, f] : freq) freq_sym.emplace_back(f, sym);

  // Length-limit by halving frequencies until the deepest code fits the
  // writer; depth > 57 needs pathological Fibonacci-like counts, so this
  // loop effectively never runs more than once.
  std::vector<std::uint8_t> lengths;
  for (;;) {
    auto fs = freq_sym;
    lengths = code_lengths(fs);
    const std::uint8_t maxlen =
        *std::max_element(lengths.begin(), lengths.end());
    if (maxlen <= HuffmanTable::kMaxLen) {
      freq_sym = std::move(fs);
      break;
    }
    for (auto& [f, s] : freq_sym) f = (f + 1) / 2;
  }

  std::vector<std::pair<std::uint32_t, std::uint8_t>> sym_len(freq_sym.size());
  for (std::size_t i = 0; i < freq_sym.size(); ++i)
    sym_len[i] = {freq_sym[i].second, lengths[i]};
  std::sort(sym_len.begin(), sym_len.end());

  table.symbols.reserve(sym_len.size());
  table.lengths.reserve(sym_len.size());
  for (const auto& [sym, len] : sym_len) {
    table.symbols.push_back(sym);
    table.lengths.push_back(len);
  }
  return table;
}

std::vector<std::uint8_t> huffman_encode(
    const HuffmanTable& table, std::span<const std::uint32_t> symbols) {
  if (symbols.empty()) return {};
  const CanonicalCodes cc = canonicalize(table);
  std::unordered_map<std::uint32_t, std::pair<std::uint64_t, std::uint8_t>>
      enc;
  enc.reserve(table.symbols.size());
  for (std::size_t i = 0; i < table.symbols.size(); ++i)
    enc[table.symbols[i]] = {cc.codes[i], table.lengths[i]};

  BitWriter bw;
  for (const std::uint32_t s : symbols) {
    const auto it = enc.find(s);
    if (it == enc.end())
      throw std::invalid_argument("huffman_encode: symbol not in table");
    bw.write(it->second.first, it->second.second);
  }
  return bw.finish();
}

std::vector<std::uint32_t> huffman_decode(const HuffmanTable& table,
                                          std::span<const std::uint8_t> payload,
                                          std::size_t count) {
  std::vector<std::uint32_t> out;
  out.reserve(count);
  if (count == 0) return out;
  if (table.empty())
    throw std::invalid_argument("huffman_decode: empty table");

  const CanonicalCodes cc = canonicalize(table);
  BitReader br(payload);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t code = 0;
    unsigned len = 0;
    for (;;) {
      code = code << 1 | (br.read_bit() ? 1u : 0u);
      ++len;
      if (len > HuffmanTable::kMaxLen)
        throw std::runtime_error("huffman_decode: corrupt stream");
      const std::uint64_t rel = code - cc.first_code[len];
      if (cc.count[len] != 0 && code >= cc.first_code[len] &&
          rel < cc.count[len]) {
        const std::uint32_t id = cc.by_length[cc.offset[len] + rel];
        out.push_back(table.symbols[id]);
        break;
      }
    }
  }
  return out;
}

std::vector<std::uint8_t> huffman_table_serialize(const HuffmanTable& table) {
  ByteWriter w;
  w.put_varint(table.symbols.size());
  std::uint32_t prev = 0;
  for (std::size_t i = 0; i < table.symbols.size(); ++i) {
    w.put_varint(table.symbols[i] - prev);  // ascending -> small deltas
    prev = table.symbols[i];
    w.put<std::uint8_t>(table.lengths[i]);
  }
  return w.take();
}

HuffmanTable huffman_table_deserialize(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  const std::uint64_t n = r.get_varint();
  HuffmanTable table;
  table.symbols.reserve(n);
  table.lengths.reserve(n);
  std::uint32_t prev = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    prev += static_cast<std::uint32_t>(r.get_varint());
    const auto len = r.get<std::uint8_t>();
    if (len == 0 || len > HuffmanTable::kMaxLen)
      throw std::runtime_error("huffman table: invalid code length");
    table.symbols.push_back(prev);
    table.lengths.push_back(len);
  }
  return table;
}

std::vector<std::uint8_t> huffman_compress(
    std::span<const std::uint32_t> symbols) {
  const HuffmanTable table = huffman_build(symbols);
  ByteWriter w;
  w.put_varint(symbols.size());
  const auto tbl = huffman_table_serialize(table);
  w.put_blob(tbl);
  const auto payload = huffman_encode(table, symbols);
  w.put_blob(payload);
  return w.take();
}

std::vector<std::uint32_t> huffman_decompress(
    std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  const std::uint64_t count = r.get_varint();
  const auto tbl_bytes = r.get_blob();
  const HuffmanTable table = huffman_table_deserialize(tbl_bytes);
  const auto payload = r.get_blob();
  return huffman_decode(table, payload, static_cast<std::size_t>(count));
}

}  // namespace tac::lossless
