#include "lossless/huffman.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <queue>
#include <stdexcept>
#include <unordered_map>

#include "common/arena.hpp"
#include "common/bitio.hpp"
#include "common/bytes.hpp"
#include "common/telemetry.hpp"

namespace tac::lossless {
namespace {

/// Alphabets whose value range fits under this bound use dense
/// (array-indexed) frequency counts and encode tables instead of hash
/// maps. Quantization codes cluster around the quant radius, so the SZ
/// path is always dense.
constexpr std::uint64_t kDenseRange = std::uint64_t{1} << 18;

struct SymbolRange {
  std::uint32_t min = 0;
  std::uint32_t max = 0;
  [[nodiscard]] std::uint64_t width() const {
    return std::uint64_t{max} - min + 1;
  }
};

SymbolRange scan_symbol_range(std::span<const std::uint32_t> symbols) {
  SymbolRange r{symbols[0], symbols[0]};
  for (const std::uint32_t s : symbols) {
    if (s < r.min) r.min = s;
    if (s > r.max) r.max = s;
  }
  return r;
}

/// Computes optimal code lengths for the given (symbol, freq) pairs using
/// the standard two-queue merge over sorted leaves; O(n log n) from the
/// sort, O(n) merge.
std::vector<std::uint8_t> code_lengths(
    std::vector<std::pair<std::uint64_t, std::uint32_t>>& freq_sym) {
  const std::size_t n = freq_sym.size();
  std::vector<std::uint8_t> lengths(n, 0);
  if (n == 1) {
    lengths[0] = 1;  // a lone symbol still needs one bit to terminate decode
    return lengths;
  }
  std::sort(freq_sym.begin(), freq_sym.end());

  // Internal tree built over indices: leaves are [0, n), internals appended.
  struct Node {
    std::uint64_t freq;
    int left, right;  // children indices; -1 marks a leaf
  };
  std::vector<Node> nodes;
  nodes.reserve(2 * n);
  for (const auto& [f, s] : freq_sym) nodes.push_back({f, -1, -1});

  std::size_t leaf_next = 0;
  std::vector<int> merged;  // queue of internal node ids (freqs ascending)
  merged.reserve(n);
  std::size_t merged_next = 0;

  auto pop_min = [&]() -> int {
    const bool leaf_ok = leaf_next < n;
    const bool int_ok = merged_next < merged.size();
    if (leaf_ok &&
        (!int_ok || nodes[leaf_next].freq <= nodes[merged[merged_next]].freq))
      return static_cast<int>(leaf_next++);
    return merged[merged_next++];
  };

  for (std::size_t i = 0; i + 1 < n; ++i) {
    const int a = pop_min();
    const int b = pop_min();
    nodes.push_back({nodes[a].freq + nodes[b].freq, a, b});
    merged.push_back(static_cast<int>(nodes.size()) - 1);
  }

  // Depth-first assignment of depths to leaves.
  std::vector<std::pair<int, std::uint8_t>> stack{
      {static_cast<int>(nodes.size()) - 1, 0}};
  while (!stack.empty()) {
    auto [id, depth] = stack.back();
    stack.pop_back();
    const Node& nd = nodes[static_cast<std::size_t>(id)];
    if (nd.left < 0) {
      lengths[static_cast<std::size_t>(id)] = depth == 0 ? 1 : depth;
    } else {
      stack.push_back({nd.left, static_cast<std::uint8_t>(depth + 1)});
      stack.push_back({nd.right, static_cast<std::uint8_t>(depth + 1)});
    }
  }
  return lengths;
}

struct CanonicalCodes {
  // Parallel to table.symbols.
  std::vector<std::uint64_t> codes;
  std::array<std::uint64_t, HuffmanTable::kMaxLen + 2> first_code{};
  std::array<std::uint32_t, HuffmanTable::kMaxLen + 2> offset{};
  std::array<std::uint32_t, HuffmanTable::kMaxLen + 2> count{};
  std::vector<std::uint32_t> by_length;  // symbol ids sorted by (len, sym)
  unsigned min_len = 1;
  unsigned max_len = 1;
};

/// Assigns canonical codes: shorter codes first, ties broken by symbol
/// value. Standard DEFLATE-style construction. Symbols are stored sorted
/// ascending, so the (length, symbol) order falls out of one stable pass
/// instead of a comparison sort.
CanonicalCodes canonicalize(const HuffmanTable& table) {
  CanonicalCodes cc;
  const std::size_t n = table.symbols.size();
  cc.codes.resize(n);
  cc.by_length.resize(n);
  for (std::size_t i = 0; i < n; ++i) ++cc.count[table.lengths[i]];

  cc.min_len = 1;
  while (cc.min_len < HuffmanTable::kMaxLen && cc.count[cc.min_len] == 0)
    ++cc.min_len;
  cc.max_len = HuffmanTable::kMaxLen;
  while (cc.max_len > 1 && cc.count[cc.max_len] == 0) --cc.max_len;

  std::uint64_t code = 0;
  std::uint32_t off = 0;
  for (unsigned len = 1; len <= HuffmanTable::kMaxLen; ++len) {
    code <<= 1;
    cc.first_code[len] = code;
    cc.offset[len] = off;
    code += cc.count[len];
    off += cc.count[len];
  }
  // Counting sort by length: table.symbols is ascending, so ids of equal
  // length arrive in symbol order — exactly the canonical tie-break.
  std::array<std::uint32_t, HuffmanTable::kMaxLen + 2> next = cc.offset;
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned len = table.lengths[i];
    const std::uint32_t slot = next[len]++;
    cc.by_length[slot] = static_cast<std::uint32_t>(i);
    cc.codes[i] = cc.first_code[len] + (slot - cc.offset[len]);
  }
  return cc;
}

}  // namespace

HuffmanTable huffman_build(std::span<const std::uint32_t> symbols) {
  HuffmanTable table;
  if (symbols.empty()) return table;

  // Frequency count: dense array over the value range when it is compact
  // (always true for quantization codes), hash map otherwise.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> freq_sym;
  const SymbolRange range = scan_symbol_range(symbols);
  if (range.width() <= kDenseRange) {
    ArenaScope scratch;
    const auto counts = scratch.alloc_zero<std::uint64_t>(
        static_cast<std::size_t>(range.width()));
    for (const std::uint32_t s : symbols) ++counts[s - range.min];
    for (std::size_t i = 0; i < counts.size(); ++i)
      if (counts[i] != 0)
        freq_sym.emplace_back(counts[i],
                              range.min + static_cast<std::uint32_t>(i));
  } else {
    std::unordered_map<std::uint32_t, std::uint64_t> freq;
    for (const std::uint32_t s : symbols) ++freq[s];
    freq_sym.reserve(freq.size());
    for (const auto& [sym, f] : freq) freq_sym.emplace_back(f, sym);
  }

  // Length-limit by halving frequencies until the deepest code fits the
  // writer; depth > 57 needs pathological Fibonacci-like counts, so this
  // loop effectively never runs more than once.
  std::vector<std::uint8_t> lengths;
  for (;;) {
    auto fs = freq_sym;
    lengths = code_lengths(fs);
    const std::uint8_t maxlen =
        *std::max_element(lengths.begin(), lengths.end());
    if (maxlen <= HuffmanTable::kMaxLen) {
      freq_sym = std::move(fs);
      break;
    }
    for (auto& [f, s] : freq_sym) f = (f + 1) / 2;
  }

  std::vector<std::pair<std::uint32_t, std::uint8_t>> sym_len(freq_sym.size());
  for (std::size_t i = 0; i < freq_sym.size(); ++i)
    sym_len[i] = {freq_sym[i].second, lengths[i]};
  std::sort(sym_len.begin(), sym_len.end());

  table.symbols.reserve(sym_len.size());
  table.lengths.reserve(sym_len.size());
  for (const auto& [sym, len] : sym_len) {
    table.symbols.push_back(sym);
    table.lengths.push_back(len);
  }
  return table;
}

std::vector<std::uint8_t> huffman_encode(
    const HuffmanTable& table, std::span<const std::uint32_t> symbols) {
  if (symbols.empty()) return {};
  const CanonicalCodes cc = canonicalize(table);
  const std::size_t n = table.symbols.size();

  BitWriter bw;
  const SymbolRange range{table.symbols.front(), table.symbols.back()};
  if (range.width() <= kDenseRange) {
    // Dense encode table indexed by (symbol - min): code<<6 | length.
    // Length 0 marks a symbol absent from the table.
    ArenaScope scratch;
    const auto enc = scratch.alloc_zero<std::uint64_t>(
        static_cast<std::size_t>(range.width()));
    for (std::size_t i = 0; i < n; ++i)
      enc[table.symbols[i] - range.min] =
          (cc.codes[i] << 6) | table.lengths[i];
    // Two symbols per accumulator push: MSB-first writes concatenate, so
    // write(a,la); write(b,lb) == write(a<<lb | b, la+lb) — identical
    // stream, half the accumulator updates. Skewed quantization codes are
    // 1-2 bits, so the combined length virtually always fits.
    const auto lookup = [&](std::uint32_t s) {
      const std::uint64_t e =
          (s >= range.min && s <= range.max) ? enc[s - range.min] : 0;
      if (e == 0)
        throw std::invalid_argument("huffman_encode: symbol not in table");
      return e;
    };
    std::size_t j = 0;
    for (; j + 1 < symbols.size(); j += 2) {
      const std::uint64_t e1 = lookup(symbols[j]);
      const std::uint64_t e2 = lookup(symbols[j + 1]);
      const unsigned len1 = static_cast<unsigned>(e1 & 63u);
      const unsigned len2 = static_cast<unsigned>(e2 & 63u);
      if (len1 + len2 <= 56) {
        bw.write(((e1 >> 6) << len2) | (e2 >> 6), len1 + len2);
      } else {
        bw.write(e1 >> 6, len1);
        bw.write(e2 >> 6, len2);
      }
    }
    if (j < symbols.size()) {
      const std::uint64_t e = lookup(symbols[j]);
      bw.write(e >> 6, static_cast<unsigned>(e & 63u));
    }
  } else {
    std::unordered_map<std::uint32_t, std::pair<std::uint64_t, std::uint8_t>>
        enc;
    enc.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      enc[table.symbols[i]] = {cc.codes[i], table.lengths[i]};
    for (const std::uint32_t s : symbols) {
      const auto it = enc.find(s);
      if (it == enc.end())
        throw std::invalid_argument("huffman_encode: symbol not in table");
      bw.write(it->second.first, it->second.second);
    }
  }
  return bw.finish();
}

std::vector<std::uint32_t> huffman_decode_reference(
    const HuffmanTable& table, std::span<const std::uint8_t> payload,
    std::size_t count) {
  std::vector<std::uint32_t> out;
  out.reserve(count);
  if (count == 0) return out;
  if (table.empty())
    throw std::invalid_argument("huffman_decode: empty table");

  const CanonicalCodes cc = canonicalize(table);
  BitReader br(payload);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t code = 0;
    unsigned len = 0;
    for (;;) {
      code = code << 1 | (br.read_bit() ? 1u : 0u);
      ++len;
      if (len > HuffmanTable::kMaxLen)
        throw std::runtime_error("huffman_decode: corrupt stream");
      const std::uint64_t rel = code - cc.first_code[len];
      if (cc.count[len] != 0 && code >= cc.first_code[len] &&
          rel < cc.count[len]) {
        const std::uint32_t id = cc.by_length[cc.offset[len] + rel];
        out.push_back(table.symbols[id]);
        break;
      }
    }
  }
  return out;
}

std::vector<std::uint32_t> huffman_decode(const HuffmanTable& table,
                                          std::span<const std::uint8_t> payload,
                                          std::size_t count) {
  if (count == 0) return {};
  if (table.empty())
    throw std::invalid_argument("huffman_decode: empty table");

  const CanonicalCodes cc = canonicalize(table);

  // Up-front sanity: `count` symbols need at least count * min_len bits.
  // A truncated payload fails here immediately instead of spinning the
  // decode loop to the end of the (possibly large) symbol count. The
  // error type matches what the bit reader throws on a mid-symbol
  // truncation.
  const std::size_t total_bits = payload.size() * 8;
  if (static_cast<std::uint64_t>(count) * cc.min_len > total_bits)
    throw std::out_of_range(
        "huffman_decode: payload too short for declared symbol count");

  // Primary table: every code of length <= kPrimaryBits owns all its
  // suffix extensions, so one 12-bit probe resolves it. Longer codes fall
  // through to the canonical by-length walk (they are rare by
  // construction: a 12-bit code needs frequency < data/4096).
  //
  // Entries pack up to TWO symbols: quantization codes are heavily skewed
  // (average length 1-2 bits), so a whole second code usually fits in the
  // probed window and one lookup retires two symbols. Layout (64-bit):
  //   bits  0..5   total consumed length (one or both symbols)
  //   bits  6..11  length of the first symbol alone
  //   bit   12     pair flag
  //   bits 13..37  first symbol id
  //   bits 38..62  second symbol id (pair entries only)
  constexpr unsigned kPrimaryBits = 12;
  ArenaScope scratch;
  const auto primary =
      scratch.alloc_zero<std::uint64_t>(std::size_t{1} << kPrimaryBits);
  const std::size_t n = table.symbols.size();
  const bool ids_fit = n < (std::size_t{1} << 25);
  for (std::size_t id = 0; id < n; ++id) {
    const unsigned len = table.lengths[id];
    if (len > kPrimaryBits) continue;
    const std::uint64_t base = cc.codes[id] << (kPrimaryBits - len);
    const std::size_t fan = std::size_t{1} << (kPrimaryBits - len);
    const std::uint64_t entry =
        (static_cast<std::uint64_t>(id) << 13) | (std::uint64_t{len} << 6) |
        len;
    for (std::size_t k = 0; k < fan; ++k) primary[base + k] = entry;
  }
  if (ids_fit) {
    // Overlay pair entries: for each (first, second) with len1 + len2 <=
    // kPrimaryBits, every slot whose prefix is code1·code2 decodes both.
    // Total writes are bounded by Kraft: sum fan(id1, id2) <= 2^12.
    for (std::size_t id1 = 0; id1 < n; ++id1) {
      const unsigned len1 = table.lengths[id1];
      if (len1 >= kPrimaryBits) continue;
      const std::uint64_t base1 = cc.codes[id1] << (kPrimaryBits - len1);
      for (unsigned len2 = 1; len2 + len1 <= kPrimaryBits; ++len2) {
        for (std::uint32_t s = 0; s < cc.count[len2]; ++s) {
          const std::uint32_t id2 = cc.by_length[cc.offset[len2] + s];
          const unsigned total = len1 + len2;
          const std::uint64_t base =
              base1 | ((cc.first_code[len2] + s) << (kPrimaryBits - total));
          const std::size_t fan = std::size_t{1} << (kPrimaryBits - total);
          const std::uint64_t entry = (std::uint64_t{id2} << 38) |
                                      (std::uint64_t{id1} << 13) |
                                      (std::uint64_t{1} << 12) |
                                      (std::uint64_t{len1} << 6) | total;
          for (std::size_t k = 0; k < fan; ++k) primary[base + k] = entry;
        }
      }
    }
  }

  // Pre-sized output + raw index writes: push_back's capacity check and
  // size store per symbol are measurable at this loop's throughput.
  std::vector<std::uint32_t> out(count);
  std::uint32_t* const dst = out.data();
  const std::uint32_t* const sym = table.symbols.data();
  const std::uint8_t* const bytes = payload.data();
  const std::size_t nbytes = payload.size();
  BitReader br(payload);
  for (std::size_t i = 0; i < count;) {
    // Bulk region: while a full 8-byte window is readable and at least two
    // symbols remain wanted, a primary hit can consume at most
    // kPrimaryBits of the >= 56 peeked bits — every per-probe bounds
    // check (peek boundary, consume overrun) is provably dead, so the
    // loop runs with none. Long codes and the stream tail fall through to
    // the careful path below.
    {
      const std::size_t start = br.bits_consumed();
      std::size_t pos = start;
      bool fall_through = false;
      // 4 probes per window load: each consumes <= kPrimaryBits, and the
      // load supplies >= 57 valid bits, so bit offsets stay < 64 and the
      // serial pos -> address -> load -> probe dependency is paid once
      // per 4 probes instead of every probe. `i + 8` leaves room for 4
      // pair retires.
      while (!fall_through && i + 8 <= count && (pos >> 3) + 8 <= nbytes) {
        std::uint64_t w;
        std::memcpy(&w, bytes + (pos >> 3), 8);
        w = __builtin_bswap64(w) << (pos & 7);
        for (int k = 0; k < 4; ++k) {
          const std::uint64_t e = primary[w >> (64 - kPrimaryBits)];
          if (e == 0) {  // long code: resolve on the careful path
            fall_through = true;
            break;
          }
          // Branch-free retire: single entries carry id2 == 0 (id1 tops
          // out at bit 37) and total == len in bits 0..5, so writing both
          // slots and stepping by 1 + pair_flag is always correct — a
          // single probe's second write is overwritten next trip. The
          // pair/single mix is data-dependent and mispredicts as a branch.
          dst[i] = sym[(e >> 13) & 0x1FFFFFFu];
          dst[i + 1] = sym[e >> 38];
          i += 1 + ((e >> 12) & 1u);
          const unsigned len = e & 63u;
          w <<= len;
          pos += len;
        }
      }
      if (pos != start) br.consume(pos - start);
      if (i >= count) break;
    }
    const std::uint64_t w = br.peek_window();
    const std::uint64_t e = primary[w >> (64 - kPrimaryBits)];
    if (e != 0) {
      if ((e & (std::uint64_t{1} << 12)) != 0 && i + 1 < count) {
        br.consume(e & 63u);  // throws if the pair crosses the end
        dst[i] = sym[(e >> 13) & 0x1FFFFFFu];
        dst[i + 1] = sym[e >> 38];
        i += 2;
        continue;
      }
      br.consume((e >> 6) & 63u);  // throws if the symbol crosses the end
      dst[i] = sym[(e >> 13) & 0x1FFFFFFu];
      ++i;
      continue;
    }
    // Long-code path: compare the left-aligned window against the
    // canonical first-code ladder for lengths above the primary width.
    bool matched = false;
    for (unsigned len = kPrimaryBits + 1; len <= cc.max_len; ++len) {
      const std::uint64_t code = w >> (64 - len);
      const std::uint64_t rel = code - cc.first_code[len];
      if (cc.count[len] != 0 && code >= cc.first_code[len] &&
          rel < cc.count[len]) {
        br.consume(len);
        dst[i] = sym[cc.by_length[cc.offset[len] + rel]];
        ++i;
        matched = true;
        break;
      }
    }
    if (!matched) {
      // The per-bit reference reads until it runs out of payload, so a
      // garbage tail that never matches must surface as the same error.
      if (br.bits_total() - br.bits_consumed() < cc.max_len)
        throw std::out_of_range("BitReader: read past end of stream");
      throw std::runtime_error("huffman_decode: corrupt stream");
    }
  }
  return out;
}

std::vector<std::uint8_t> huffman_table_serialize(const HuffmanTable& table) {
  ByteWriter w;
  w.put_varint(table.symbols.size());
  std::uint32_t prev = 0;
  for (std::size_t i = 0; i < table.symbols.size(); ++i) {
    w.put_varint(table.symbols[i] - prev);  // ascending -> small deltas
    prev = table.symbols[i];
    w.put<std::uint8_t>(table.lengths[i]);
  }
  return w.take();
}

HuffmanTable huffman_table_deserialize(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  const std::uint64_t n = r.get_varint();
  HuffmanTable table;
  table.symbols.reserve(n);
  table.lengths.reserve(n);
  std::uint32_t prev = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    prev += static_cast<std::uint32_t>(r.get_varint());
    const auto len = r.get<std::uint8_t>();
    if (len == 0 || len > HuffmanTable::kMaxLen)
      throw std::runtime_error("huffman table: invalid code length");
    table.symbols.push_back(prev);
    table.lengths.push_back(len);
  }
  return table;
}

std::vector<std::uint8_t> huffman_compress(
    std::span<const std::uint32_t> symbols) {
  TAC_SPAN_NAMED(span, "huffman.compress");
  TAC_COUNTER_ADD("huffman.encode_symbols", symbols.size());
  ByteWriter w;
  w.put_varint(symbols.size());
  HuffmanTable table;
  {
    TAC_SPAN("huffman.build");
    table = huffman_build(symbols);
  }
  w.put_blob(huffman_table_serialize(table));
  {
    TAC_SPAN_BYTES("huffman.encode", symbols.size_bytes());
    w.put_blob(huffman_encode(table, symbols));
  }
  auto out = w.take();
  span.set_bytes(out.size());
  TAC_COUNTER_ADD("huffman.encode_bytes_out", out.size());
  return out;
}

std::vector<std::uint32_t> huffman_decompress(
    std::span<const std::uint8_t> bytes) {
  TAC_SPAN_NAMED(span, "huffman.decode");
  ByteReader r(bytes);
  const std::uint64_t count = r.get_varint();
  const auto tbl_bytes = r.get_blob();
  const HuffmanTable table = huffman_table_deserialize(tbl_bytes);
  const auto payload = r.get_blob();
  auto out = huffman_decode(table, payload, static_cast<std::size_t>(count));
  span.set_bytes(out.size() * sizeof(std::uint32_t));
  TAC_COUNTER_ADD("huffman.decode_symbols", out.size());
  return out;
}

}  // namespace tac::lossless
