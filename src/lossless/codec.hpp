#ifndef TAC_LOSSLESS_CODEC_HPP
#define TAC_LOSSLESS_CODEC_HPP

/// \file codec.hpp
/// \brief Byte-stream lossless codec used as the final compression stage.
///
/// Mirrors SZ's "customized Huffman + lossless" tail: the caller entropy
/// codes its symbols, then runs the whole payload through this dictionary
/// stage. Falls back to a stored block when compression does not pay.
///
/// Two codec profiles exist. `kLegacy` reproduces the original
/// bit-packed LZSS stream byte-for-byte (golden containers depend on it);
/// `kFast` selects the byte-aligned LZSS v2 stream (chained + lazy
/// matcher with a skip heuristic — see lzss.hpp). The profile of every
/// container payload is recorded in the v3 payload index, so readers can
/// validate that a stream carries the method bytes its profile promises.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace tac::lossless {

/// Which encoder family produced (or is expected in) a lossless stream.
/// The numeric values are serialized in the container v3 payload index —
/// never renumber.
enum class CodecProfile : std::uint8_t { kLegacy = 0, kFast = 1 };

/// Thrown when a stream's method byte disagrees with the profile the
/// container index declares for it, or when a profile byte itself is
/// out of range.
class ProfileError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

[[nodiscard]] const char* to_string(CodecProfile p);

/// Session default: `TAC_CODEC_PROFILE` env ("legacy" / "fast"), read
/// once; `kFast` when unset. Throws ProfileError on an unknown value.
[[nodiscard]] CodecProfile default_profile();

/// Test knob: overrides the env-derived default for subsequent
/// `default_profile()` calls (process-wide).
void set_default_profile(CodecProfile p);

/// Compresses arbitrary bytes; never loses data, never grows the payload by
/// more than one header byte plus the varint size.
[[nodiscard]] std::vector<std::uint8_t> compress(
    std::span<const std::uint8_t> input, CodecProfile profile);

[[nodiscard]] inline std::vector<std::uint8_t> compress(
    std::span<const std::uint8_t> input) {
  return compress(input, default_profile());
}

/// Lenient decode: dispatches on the stream's own method byte, accepting
/// any known method (v1/v2 containers carry no per-payload profile).
[[nodiscard]] std::vector<std::uint8_t> decompress(
    std::span<const std::uint8_t> compressed);

/// Strict decode: additionally requires the method byte to belong to
/// `expected` (legacy → stored/lzss, fast → stored/lzss2); a mismatch is
/// a ProfileError. Used when the container index records the profile.
[[nodiscard]] std::vector<std::uint8_t> decompress(
    std::span<const std::uint8_t> compressed, CodecProfile expected);

}  // namespace tac::lossless

#endif  // TAC_LOSSLESS_CODEC_HPP
