#ifndef TAC_LOSSLESS_CODEC_HPP
#define TAC_LOSSLESS_CODEC_HPP

/// \file codec.hpp
/// \brief Byte-stream lossless codec used as the final compression stage.
///
/// Mirrors SZ's "customized Huffman + lossless" tail: the caller entropy
/// codes its symbols, then runs the whole payload through this dictionary
/// stage. Falls back to a stored block when compression does not pay.

#include <cstdint>
#include <span>
#include <vector>

namespace tac::lossless {

/// Compresses arbitrary bytes; never loses data, never grows the payload by
/// more than one header byte plus the varint size.
[[nodiscard]] std::vector<std::uint8_t> compress(
    std::span<const std::uint8_t> input);

[[nodiscard]] std::vector<std::uint8_t> decompress(
    std::span<const std::uint8_t> compressed);

}  // namespace tac::lossless

#endif  // TAC_LOSSLESS_CODEC_HPP
