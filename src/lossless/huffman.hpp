#ifndef TAC_LOSSLESS_HUFFMAN_HPP
#define TAC_LOSSLESS_HUFFMAN_HPP

/// \file huffman.hpp
/// \brief Canonical Huffman coding over u32 symbols.
///
/// This is the entropy stage of the SZ-style compressor (quantization codes
/// use a 2^16 alphabet) and is reusable for byte streams. The table is
/// serialized sparsely — (symbol delta, code length) pairs — so tiny blocks
/// do not pay a dense-table header.

#include <cstdint>
#include <span>
#include <vector>

namespace tac::lossless {

/// Code lengths per distinct symbol; the canonical code assignment is
/// implied by (length, symbol) ordering.
struct HuffmanTable {
  std::vector<std::uint32_t> symbols;  ///< distinct symbols, ascending
  std::vector<std::uint8_t> lengths;   ///< code length per symbol, 1..kMaxLen

  static constexpr unsigned kMaxLen = 57;

  [[nodiscard]] bool empty() const { return symbols.empty(); }
};

/// Builds a length-limited Huffman table from symbol frequencies.
/// `alphabet_hint` only reserves memory. Symbols with zero frequency are
/// not included in the table.
[[nodiscard]] HuffmanTable huffman_build(
    std::span<const std::uint32_t> symbols);

/// Encodes `symbols` with the given table. Every symbol must appear in the
/// table (throws otherwise). Returns the bit-packed payload.
[[nodiscard]] std::vector<std::uint8_t> huffman_encode(
    const HuffmanTable& table, std::span<const std::uint32_t> symbols);

/// Decodes exactly `count` symbols from `payload` with a table-driven
/// canonical decoder (12-bit primary probe + by-length overflow walk).
/// Validates up front that the payload can possibly hold `count` symbols,
/// so truncated payloads fail in O(1) instead of after a full scan.
[[nodiscard]] std::vector<std::uint32_t> huffman_decode(
    const HuffmanTable& table, std::span<const std::uint8_t> payload,
    std::size_t count);

/// Bit-at-a-time reference decoder: the equivalence oracle for the table
/// decoder (fuzz tests, micro benchmark). Same results, ~an order of
/// magnitude slower.
[[nodiscard]] std::vector<std::uint32_t> huffman_decode_reference(
    const HuffmanTable& table, std::span<const std::uint8_t> payload,
    std::size_t count);

/// Sparse serialization of the table (varint symbol deltas + lengths).
[[nodiscard]] std::vector<std::uint8_t> huffman_table_serialize(
    const HuffmanTable& table);
[[nodiscard]] HuffmanTable huffman_table_deserialize(
    std::span<const std::uint8_t> bytes);

/// One-call helper: serialized table + payload, length-prefixed.
[[nodiscard]] std::vector<std::uint8_t> huffman_compress(
    std::span<const std::uint32_t> symbols);
[[nodiscard]] std::vector<std::uint32_t> huffman_decompress(
    std::span<const std::uint8_t> bytes);

}  // namespace tac::lossless

#endif  // TAC_LOSSLESS_HUFFMAN_HPP
