#include "lossless/lzss.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>

#include "common/arena.hpp"
#include "common/bitio.hpp"
#include "common/bytes.hpp"

namespace tac::lossless {
namespace {

constexpr std::size_t kWindow = 1u << 16;
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = kMinMatch + 255;  // length-4 fits a byte
constexpr std::size_t kHashBits = 16;
constexpr std::size_t kHashSize = 1u << kHashBits;

std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

/// Hash-head table that survives across calls on the same thread. Entries
/// are generation-stamped: bumping `gen` invalidates every slot in O(1),
/// so a tiny input no longer pays a 512 KB clear — the dominant cost when
/// the level pipeline compresses thousands of small group streams.
/// Positions occupy the low 40 bits (1 TB inputs), the generation the
/// high 24.
struct MatchTable {
  static constexpr unsigned kPosBits = 40;
  static constexpr std::uint64_t kPosMask =
      (std::uint64_t{1} << kPosBits) - 1;

  std::vector<std::uint64_t> head = std::vector<std::uint64_t>(kHashSize, 0);
  std::uint64_t gen = 0;

  void next_generation() {
    if (++gen >= (std::uint64_t{1} << (64 - kPosBits))) {
      std::fill(head.begin(), head.end(), 0);
      gen = 1;
    }
  }
  [[nodiscard]] std::uint64_t tag(std::size_t pos) const {
    return (gen << kPosBits) | pos;
  }
  [[nodiscard]] bool valid(std::uint64_t entry) const {
    return (entry >> kPosBits) == gen;
  }

  static MatchTable& local() {
    thread_local MatchTable t;
    return t;
  }
};

/// Common match length of input[a..] and input[b..], capped at `limit`,
/// comparing 8 bytes per step. Identical result to the byte loop.
std::size_t match_length(const std::uint8_t* input, std::size_t a,
                         std::size_t b, std::size_t limit) {
  std::size_t len = 0;
  while (len + 8 <= limit) {
    std::uint64_t x;
    std::uint64_t y;
    std::memcpy(&x, input + a + len, 8);
    std::memcpy(&y, input + b + len, 8);
    const std::uint64_t diff = x ^ y;
    if (diff != 0) {
      if constexpr (std::endian::native == std::endian::little)
        return len + static_cast<std::size_t>(std::countr_zero(diff)) / 8;
      else
        return len + static_cast<std::size_t>(std::countl_zero(diff)) / 8;
    }
    len += 8;
  }
  while (len < limit && input[a + len] == input[b + len]) ++len;
  return len;
}

}  // namespace

std::vector<std::uint8_t> lzss_compress(std::span<const std::uint8_t> input,
                                        const LzssConfig& cfg) {
  ByteWriter header;
  header.put_varint(input.size());

  BitWriter bw;
  const std::size_t n = input.size();
  MatchTable& mt = MatchTable::local();
  mt.next_generation();
  ArenaScope scratch;
  // prev[] entries are only read after being written this call (chains
  // reach only generation-tagged positions), so no clearing is needed.
  const auto prev = scratch.alloc<std::uint64_t>(n);

  std::size_t pos = 0;
  while (pos < n) {
    std::size_t best_len = 0;
    std::size_t best_off = 0;
    if (pos + kMinMatch <= n) {
      const std::uint32_t h = hash4(input.data() + pos);
      std::uint64_t entry = mt.head[h];
      unsigned walked = 0;
      const std::size_t limit = std::min(kMaxMatch, n - pos);
      while (mt.valid(entry) && walked < cfg.max_chain) {
        const auto c = static_cast<std::size_t>(entry & MatchTable::kPosMask);
        if (pos - c > kWindow) break;
        const std::size_t len = match_length(input.data(), c, pos, limit);
        if (len > best_len) {
          best_len = len;
          best_off = pos - c;
          if (len == limit) break;
        }
        entry = prev[c];
        ++walked;
      }
    }

    if (best_len >= kMinMatch) {
      bw.write_bit(true);
      bw.write(best_off - 1, 16);
      bw.write(best_len - kMinMatch, 8);
      // Insert all covered positions into the chains so future matches can
      // start inside this match (vital for run-like data).
      const std::size_t end = pos + best_len;
      while (pos < end) {
        if (pos + kMinMatch <= n) {
          const std::uint32_t h = hash4(input.data() + pos);
          prev[pos] = mt.head[h];
          mt.head[h] = mt.tag(pos);
        }
        ++pos;
      }
    } else {
      bw.write_bit(false);
      bw.write(input[pos], 8);
      if (pos + kMinMatch <= n) {
        const std::uint32_t h = hash4(input.data() + pos);
        prev[pos] = mt.head[h];
        mt.head[h] = mt.tag(pos);
      }
      ++pos;
    }
  }

  auto out = header.take();
  const auto payload = bw.finish();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

namespace {

// --- LZSS v2 (fast profile) -------------------------------------------
//
// The v1 encoder above is frozen: golden containers depend on its exact
// output bytes. Everything below is the fast-profile twin — shared hash
// chains, different stream format and search policy.

constexpr std::size_t kSkipTrigger = 6;  ///< skip step doubles every 64 misses
constexpr std::size_t kLazyCutoff = 64;  ///< lazy-probe only modest matches
constexpr std::size_t kDenseInsert = 128;  ///< chain-insert cap inside a match
constexpr std::size_t kGoodEnough = 128;   ///< stop the chain walk here

void put_ext(std::vector<std::uint8_t>& out, std::size_t v) {
  while (v >= 255) {
    out.push_back(255);
    v -= 255;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

}  // namespace

std::vector<std::uint8_t> lzss2_compress(std::span<const std::uint8_t> input,
                                         const LzssConfig& cfg) {
  const std::size_t n = input.size();
  const std::uint8_t* const in = input.data();

  ByteWriter header;
  header.put_varint(n);
  auto out = header.take();
  out.reserve(out.size() + n / 2 + 16);

  MatchTable& mt = MatchTable::local();
  mt.next_generation();
  ArenaScope scratch;
  const auto prev = scratch.alloc<std::uint64_t>(n);

  const auto insert = [&](std::size_t p) {
    const std::uint32_t h = hash4(in + p);
    prev[p] = mt.head[h];
    mt.head[h] = mt.tag(p);
  };
  // Best chain match at `p` (length 0 when none reaches kMinMatch).
  const auto find = [&](std::size_t p, std::size_t& off) -> std::size_t {
    std::size_t best_len = 0;
    const std::size_t limit = n - p;  // match lengths are unbounded in v2
    std::uint64_t entry = mt.head[hash4(in + p)];
    unsigned walked = 0;
    while (mt.valid(entry) && walked < cfg.max_chain) {
      const auto c = static_cast<std::size_t>(entry & MatchTable::kPosMask);
      if (p - c > kWindow) break;
      // One-byte probe at the current best length: a candidate that can't
      // beat best_len differs there, so most losers cost one compare
      // instead of a full match_length scan. (best_len < limit here —
      // len == limit broke out of the walk below.)
      if (in[c + best_len] == in[p + best_len]) {
        const std::size_t len = match_length(in, c, p, limit);
        if (len > best_len) {
          best_len = len;
          off = p - c;
          // Deep runs put hundreds of near-identical candidates on one
          // chain; once the match is long enough that the token cost is
          // negligible, walking on trades real time for ~nothing.
          if (len == limit || len >= kGoodEnough) break;
        }
      }
      entry = prev[c];
      ++walked;
    }
    return best_len >= kMinMatch ? best_len : 0;
  };
  const auto emit = [&](std::size_t lit_start, std::size_t lit_end,
                        std::size_t mlen, std::size_t off) {
    const std::size_t lits = lit_end - lit_start;
    const std::size_t ln = std::min<std::size_t>(lits, 15);
    const std::size_t mn =
        mlen == 0 ? 0 : std::min<std::size_t>(mlen - kMinMatch, 15);
    out.push_back(static_cast<std::uint8_t>((ln << 4) | mn));
    if (ln == 15) put_ext(out, lits - 15);
    out.insert(out.end(), in + lit_start, in + lit_end);
    if (mlen != 0) {
      const std::size_t o = off - 1;
      out.push_back(static_cast<std::uint8_t>(o & 0xff));
      out.push_back(static_cast<std::uint8_t>(o >> 8));
      if (mn == 15) put_ext(out, mlen - kMinMatch - 15);
    }
  };

  std::size_t pos = 0;
  std::size_t lit_start = 0;
  std::size_t acc = std::size_t{1} << kSkipTrigger;
  while (pos + kMinMatch <= n) {
    std::size_t off = 0;
    std::size_t len = find(pos, off);
    insert(pos);
    if (len == 0) {
      // Greedy skip: every 2^kSkipTrigger consecutive misses widen the
      // probe stride, so incompressible data costs ~O(n / stride) probes.
      pos += acc++ >> kSkipTrigger;
      continue;
    }
    acc = std::size_t{1} << kSkipTrigger;
    // One-step lazy: a strictly longer match starting one byte later wins;
    // the displaced byte joins the pending literal run.
    if (len < kLazyCutoff && pos + 1 + kMinMatch <= n) {
      std::size_t off1 = 0;
      const std::size_t len1 = find(pos + 1, off1);
      if (len1 > len) {
        insert(pos + 1);
        ++pos;
        len = len1;
        off = off1;
      }
    }
    emit(lit_start, pos, len, off);
    const std::size_t end = pos + len;
    // Index positions inside the match so later matches can start there;
    // cap the work for very long matches (the tail keeps chains alive
    // across the boundary).
    const std::size_t dense_end = std::min(end, pos + 1 + kDenseInsert);
    for (std::size_t p = pos + 1; p < dense_end && p + kMinMatch <= n; ++p)
      insert(p);
    if (end > dense_end)
      for (std::size_t p = std::max(dense_end, end - 3);
           p < end && p + kMinMatch <= n; ++p)
        insert(p);
    pos = end;
    lit_start = end;
  }
  emit(lit_start, n, 0, 0);
  return out;
}

std::vector<std::uint8_t> lzss2_decompress(
    std::span<const std::uint8_t> compressed) {
  ByteReader r(compressed);
  const auto n = static_cast<std::size_t>(r.get_varint());
  const auto payload = r.get_bytes(r.remaining());
  const std::uint8_t* p = payload.data();
  const std::uint8_t* const pe = p + payload.size();

  std::vector<std::uint8_t> out(n);
  std::size_t w = 0;
  const auto need = [&](std::size_t k) {
    if (static_cast<std::size_t>(pe - p) < k)
      throw std::runtime_error("lzss2: truncated stream");
  };
  const auto read_ext = [&]() {
    std::size_t v = 0;
    std::uint8_t b;
    do {
      need(1);
      b = *p++;
      v += b;
    } while (b == 255);
    return v;
  };
  while (w < n) {
    need(1);
    const std::uint8_t token = *p++;
    std::size_t lits = token >> 4;
    if (lits == 15) lits += read_ext();
    need(lits);
    if (lits > n - w) throw std::runtime_error("lzss2: size mismatch");
    std::memcpy(out.data() + w, p, lits);
    p += lits;
    w += lits;
    if (w == n) break;  // final token carries literals only
    need(2);
    const std::size_t off =
        (static_cast<std::size_t>(p[0]) |
         (static_cast<std::size_t>(p[1]) << 8)) +
        1;
    p += 2;
    std::size_t len = token & 0xf;
    if (len == 15) len += read_ext();
    len += kMinMatch;
    if (off > w)
      throw std::runtime_error("lzss2: match offset before stream start");
    if (len > n - w) throw std::runtime_error("lzss2: size mismatch");
    const std::size_t src = w - off;
    if (off >= len) {
      std::memcpy(out.data() + w, out.data() + src, len);
    } else if (off == 1) {
      std::memset(out.data() + w, out[src], len);
    } else {
      for (std::size_t i = 0; i < len; ++i) out[w + i] = out[src + i];
    }
    w += len;
  }
  return out;
}

std::vector<std::uint8_t> lzss_decompress(
    std::span<const std::uint8_t> compressed) {
  ByteReader r(compressed);
  const std::uint64_t n = r.get_varint();
  const auto payload = r.get_bytes(r.remaining());

  std::vector<std::uint8_t> out(static_cast<std::size_t>(n));
  std::size_t w = 0;
  BitReader br(payload);
  while (w < n) {
    if (br.read_bit()) {
      const std::size_t off = static_cast<std::size_t>(br.read(16)) + 1;
      std::size_t len = static_cast<std::size_t>(br.read(8)) + kMinMatch;
      if (off > w)
        throw std::runtime_error("lzss: match offset before stream start");
      if (len > n - w) throw std::runtime_error("lzss: size mismatch");
      const std::size_t src = w - off;
      if (off >= len) {
        std::memcpy(out.data() + w, out.data() + src, len);
        w += len;
      } else {
        // Overlapping match: replicate byte by byte.
        for (std::size_t i = 0; i < len; ++i) out[w + i] = out[src + i];
        w += len;
      }
    } else {
      out[w++] = static_cast<std::uint8_t>(br.read(8));
    }
  }
  return out;
}

}  // namespace tac::lossless
