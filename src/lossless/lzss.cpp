#include "lossless/lzss.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>

#include "common/arena.hpp"
#include "common/bitio.hpp"
#include "common/bytes.hpp"

namespace tac::lossless {
namespace {

constexpr std::size_t kWindow = 1u << 16;
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = kMinMatch + 255;  // length-4 fits a byte
constexpr std::size_t kHashBits = 16;
constexpr std::size_t kHashSize = 1u << kHashBits;

std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

/// Hash-head table that survives across calls on the same thread. Entries
/// are generation-stamped: bumping `gen` invalidates every slot in O(1),
/// so a tiny input no longer pays a 512 KB clear — the dominant cost when
/// the level pipeline compresses thousands of small group streams.
/// Positions occupy the low 40 bits (1 TB inputs), the generation the
/// high 24.
struct MatchTable {
  static constexpr unsigned kPosBits = 40;
  static constexpr std::uint64_t kPosMask =
      (std::uint64_t{1} << kPosBits) - 1;

  std::vector<std::uint64_t> head = std::vector<std::uint64_t>(kHashSize, 0);
  std::uint64_t gen = 0;

  void next_generation() {
    if (++gen >= (std::uint64_t{1} << (64 - kPosBits))) {
      std::fill(head.begin(), head.end(), 0);
      gen = 1;
    }
  }
  [[nodiscard]] std::uint64_t tag(std::size_t pos) const {
    return (gen << kPosBits) | pos;
  }
  [[nodiscard]] bool valid(std::uint64_t entry) const {
    return (entry >> kPosBits) == gen;
  }

  static MatchTable& local() {
    thread_local MatchTable t;
    return t;
  }
};

/// Common match length of input[a..] and input[b..], capped at `limit`,
/// comparing 8 bytes per step. Identical result to the byte loop.
std::size_t match_length(const std::uint8_t* input, std::size_t a,
                         std::size_t b, std::size_t limit) {
  std::size_t len = 0;
  while (len + 8 <= limit) {
    std::uint64_t x;
    std::uint64_t y;
    std::memcpy(&x, input + a + len, 8);
    std::memcpy(&y, input + b + len, 8);
    const std::uint64_t diff = x ^ y;
    if (diff != 0) {
      if constexpr (std::endian::native == std::endian::little)
        return len + static_cast<std::size_t>(std::countr_zero(diff)) / 8;
      else
        return len + static_cast<std::size_t>(std::countl_zero(diff)) / 8;
    }
    len += 8;
  }
  while (len < limit && input[a + len] == input[b + len]) ++len;
  return len;
}

}  // namespace

std::vector<std::uint8_t> lzss_compress(std::span<const std::uint8_t> input,
                                        const LzssConfig& cfg) {
  ByteWriter header;
  header.put_varint(input.size());

  BitWriter bw;
  const std::size_t n = input.size();
  MatchTable& mt = MatchTable::local();
  mt.next_generation();
  ArenaScope scratch;
  // prev[] entries are only read after being written this call (chains
  // reach only generation-tagged positions), so no clearing is needed.
  const auto prev = scratch.alloc<std::uint64_t>(n);

  std::size_t pos = 0;
  while (pos < n) {
    std::size_t best_len = 0;
    std::size_t best_off = 0;
    if (pos + kMinMatch <= n) {
      const std::uint32_t h = hash4(input.data() + pos);
      std::uint64_t entry = mt.head[h];
      unsigned walked = 0;
      const std::size_t limit = std::min(kMaxMatch, n - pos);
      while (mt.valid(entry) && walked < cfg.max_chain) {
        const auto c = static_cast<std::size_t>(entry & MatchTable::kPosMask);
        if (pos - c > kWindow) break;
        const std::size_t len = match_length(input.data(), c, pos, limit);
        if (len > best_len) {
          best_len = len;
          best_off = pos - c;
          if (len == limit) break;
        }
        entry = prev[c];
        ++walked;
      }
    }

    if (best_len >= kMinMatch) {
      bw.write_bit(true);
      bw.write(best_off - 1, 16);
      bw.write(best_len - kMinMatch, 8);
      // Insert all covered positions into the chains so future matches can
      // start inside this match (vital for run-like data).
      const std::size_t end = pos + best_len;
      while (pos < end) {
        if (pos + kMinMatch <= n) {
          const std::uint32_t h = hash4(input.data() + pos);
          prev[pos] = mt.head[h];
          mt.head[h] = mt.tag(pos);
        }
        ++pos;
      }
    } else {
      bw.write_bit(false);
      bw.write(input[pos], 8);
      if (pos + kMinMatch <= n) {
        const std::uint32_t h = hash4(input.data() + pos);
        prev[pos] = mt.head[h];
        mt.head[h] = mt.tag(pos);
      }
      ++pos;
    }
  }

  auto out = header.take();
  const auto payload = bw.finish();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<std::uint8_t> lzss_decompress(
    std::span<const std::uint8_t> compressed) {
  ByteReader r(compressed);
  const std::uint64_t n = r.get_varint();
  const auto payload = r.get_bytes(r.remaining());

  std::vector<std::uint8_t> out(static_cast<std::size_t>(n));
  std::size_t w = 0;
  BitReader br(payload);
  while (w < n) {
    if (br.read_bit()) {
      const std::size_t off = static_cast<std::size_t>(br.read(16)) + 1;
      std::size_t len = static_cast<std::size_t>(br.read(8)) + kMinMatch;
      if (off > w)
        throw std::runtime_error("lzss: match offset before stream start");
      if (len > n - w) throw std::runtime_error("lzss: size mismatch");
      const std::size_t src = w - off;
      if (off >= len) {
        std::memcpy(out.data() + w, out.data() + src, len);
        w += len;
      } else {
        // Overlapping match: replicate byte by byte.
        for (std::size_t i = 0; i < len; ++i) out[w + i] = out[src + i];
        w += len;
      }
    } else {
      out[w++] = static_cast<std::uint8_t>(br.read(8));
    }
  }
  return out;
}

}  // namespace tac::lossless
