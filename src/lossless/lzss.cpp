#include "lossless/lzss.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "common/bitio.hpp"
#include "common/bytes.hpp"

namespace tac::lossless {
namespace {

constexpr std::size_t kWindow = 1u << 16;
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = kMinMatch + 255;  // length-4 fits a byte
constexpr std::size_t kHashBits = 16;
constexpr std::size_t kHashSize = 1u << kHashBits;

std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

std::vector<std::uint8_t> lzss_compress(std::span<const std::uint8_t> input,
                                        const LzssConfig& cfg) {
  ByteWriter header;
  header.put_varint(input.size());

  BitWriter bw;
  const std::size_t n = input.size();
  std::vector<std::int64_t> head(kHashSize, -1);
  std::vector<std::int64_t> prev(n, -1);

  std::size_t pos = 0;
  while (pos < n) {
    std::size_t best_len = 0;
    std::size_t best_off = 0;
    if (pos + kMinMatch <= n) {
      const std::uint32_t h = hash4(input.data() + pos);
      std::int64_t cand = head[h];
      unsigned walked = 0;
      const std::size_t limit = std::min(kMaxMatch, n - pos);
      while (cand >= 0 && walked < cfg.max_chain &&
             pos - static_cast<std::size_t>(cand) <= kWindow) {
        const auto c = static_cast<std::size_t>(cand);
        std::size_t len = 0;
        while (len < limit && input[c + len] == input[pos + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_off = pos - c;
          if (len == limit) break;
        }
        cand = prev[c];
        ++walked;
      }
    }

    if (best_len >= kMinMatch) {
      bw.write_bit(true);
      bw.write(best_off - 1, 16);
      bw.write(best_len - kMinMatch, 8);
      // Insert all covered positions into the chains so future matches can
      // start inside this match (vital for run-like data).
      const std::size_t end = pos + best_len;
      while (pos < end) {
        if (pos + kMinMatch <= n) {
          const std::uint32_t h = hash4(input.data() + pos);
          prev[pos] = head[h];
          head[h] = static_cast<std::int64_t>(pos);
        }
        ++pos;
      }
    } else {
      bw.write_bit(false);
      bw.write(input[pos], 8);
      if (pos + kMinMatch <= n) {
        const std::uint32_t h = hash4(input.data() + pos);
        prev[pos] = head[h];
        head[h] = static_cast<std::int64_t>(pos);
      }
      ++pos;
    }
  }

  auto out = header.take();
  const auto payload = bw.finish();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<std::uint8_t> lzss_decompress(
    std::span<const std::uint8_t> compressed) {
  ByteReader r(compressed);
  const std::uint64_t n = r.get_varint();
  const auto payload = r.get_bytes(r.remaining());

  std::vector<std::uint8_t> out;
  out.reserve(static_cast<std::size_t>(n));
  BitReader br(payload);
  while (out.size() < n) {
    if (br.read_bit()) {
      const std::size_t off = static_cast<std::size_t>(br.read(16)) + 1;
      const std::size_t len =
          static_cast<std::size_t>(br.read(8)) + kMinMatch;
      if (off > out.size())
        throw std::runtime_error("lzss: match offset before stream start");
      // Byte-by-byte copy: matches may overlap themselves (off < len).
      std::size_t src = out.size() - off;
      for (std::size_t i = 0; i < len; ++i) out.push_back(out[src + i]);
    } else {
      out.push_back(static_cast<std::uint8_t>(br.read(8)));
    }
  }
  if (out.size() != n) throw std::runtime_error("lzss: size mismatch");
  return out;
}

}  // namespace tac::lossless
