#include "lossless/codec.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "common/bytes.hpp"
#include "common/telemetry.hpp"
#include "lossless/lzss.hpp"

namespace tac::lossless {
namespace {
enum class Method : std::uint8_t { kStored = 0, kLzss = 1, kLzss2 = 2 };

// -1 = follow the environment; otherwise a CodecProfile value.
std::atomic<int> g_profile_override{-1};

CodecProfile profile_from_env() {
  const char* env = std::getenv("TAC_CODEC_PROFILE");
  if (env == nullptr || *env == '\0') return CodecProfile::kFast;
  const std::string v(env);
  if (v == "legacy" || v == "0") return CodecProfile::kLegacy;
  if (v == "fast" || v == "1") return CodecProfile::kFast;
  throw ProfileError("TAC_CODEC_PROFILE: unknown value \"" + v +
                     "\" (expected \"legacy\" or \"fast\")");
}

bool method_allowed(Method m, CodecProfile profile) {
  switch (profile) {
    case CodecProfile::kLegacy:
      return m == Method::kStored || m == Method::kLzss;
    case CodecProfile::kFast:
      return m == Method::kStored || m == Method::kLzss2;
  }
  return false;
}

std::vector<std::uint8_t> decode_method(Method method, ByteReader& r) {
  TAC_SPAN_NAMED(span, "lzss.decompress");
  TAC_COUNTER_ADD("lzss.bytes_in", r.remaining());
  std::vector<std::uint8_t> out;
  switch (method) {
    case Method::kLzss:
      out = lzss_decompress(r.get_bytes(r.remaining()));
      break;
    case Method::kLzss2:
      out = lzss2_decompress(r.get_bytes(r.remaining()));
      break;
    case Method::kStored: {
      const std::uint64_t n = r.get_varint();
      const auto bytes = r.get_bytes(static_cast<std::size_t>(n));
      out.assign(bytes.begin(), bytes.end());
      break;
    }
    default:
      throw std::runtime_error("lossless: unknown method byte");
  }
  span.set_bytes(out.size());
  TAC_COUNTER_ADD("lzss.bytes_out", out.size());
  return out;
}

}  // namespace

const char* to_string(CodecProfile p) {
  switch (p) {
    case CodecProfile::kLegacy:
      return "legacy";
    case CodecProfile::kFast:
      return "fast";
  }
  return "unknown";
}

CodecProfile default_profile() {
  const int ov = g_profile_override.load(std::memory_order_relaxed);
  if (ov >= 0) return static_cast<CodecProfile>(ov);
  static const CodecProfile env_profile = profile_from_env();
  return env_profile;
}

void set_default_profile(CodecProfile p) {
  g_profile_override.store(static_cast<int>(p), std::memory_order_relaxed);
}

std::vector<std::uint8_t> compress(std::span<const std::uint8_t> input,
                                   CodecProfile profile) {
  TAC_SPAN_BYTES("lzss.compress", input.size());
  TAC_COUNTER_ADD("lzss.compress_bytes_in", input.size());
  auto packed = profile == CodecProfile::kFast ? lzss2_compress(input)
                                               : lzss_compress(input);
  ByteWriter w;
  if (packed.size() < input.size()) {
    w.put<std::uint8_t>(static_cast<std::uint8_t>(
        profile == CodecProfile::kFast ? Method::kLzss2 : Method::kLzss));
    w.put_bytes(packed);
  } else {
    w.put<std::uint8_t>(static_cast<std::uint8_t>(Method::kStored));
    w.put_varint(input.size());
    w.put_bytes(input);
  }
  auto out = w.take();
  TAC_COUNTER_ADD("lzss.compress_bytes_out", out.size());
  return out;
}

std::vector<std::uint8_t> decompress(
    std::span<const std::uint8_t> compressed) {
  ByteReader r(compressed);
  const auto method = static_cast<Method>(r.get<std::uint8_t>());
  return decode_method(method, r);
}

std::vector<std::uint8_t> decompress(std::span<const std::uint8_t> compressed,
                                     CodecProfile expected) {
  ByteReader r(compressed);
  const auto method = static_cast<Method>(r.get<std::uint8_t>());
  if (!method_allowed(method, expected))
    throw ProfileError(
        std::string("lossless: stream method byte ") +
        std::to_string(static_cast<int>(method)) +
        " does not belong to the declared codec profile \"" +
        to_string(expected) + "\"");
  return decode_method(method, r);
}

}  // namespace tac::lossless
