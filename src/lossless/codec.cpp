#include "lossless/codec.hpp"

#include <stdexcept>

#include "common/bytes.hpp"
#include "lossless/lzss.hpp"

namespace tac::lossless {
namespace {
enum class Method : std::uint8_t { kStored = 0, kLzss = 1 };
}  // namespace

std::vector<std::uint8_t> compress(std::span<const std::uint8_t> input) {
  auto packed = lzss_compress(input);
  ByteWriter w;
  if (packed.size() < input.size()) {
    w.put<std::uint8_t>(static_cast<std::uint8_t>(Method::kLzss));
    w.put_bytes(packed);
  } else {
    w.put<std::uint8_t>(static_cast<std::uint8_t>(Method::kStored));
    w.put_varint(input.size());
    w.put_bytes(input);
  }
  return w.take();
}

std::vector<std::uint8_t> decompress(
    std::span<const std::uint8_t> compressed) {
  ByteReader r(compressed);
  const auto method = static_cast<Method>(r.get<std::uint8_t>());
  switch (method) {
    case Method::kLzss:
      return lzss_decompress(r.get_bytes(r.remaining()));
    case Method::kStored: {
      const std::uint64_t n = r.get_varint();
      const auto bytes = r.get_bytes(static_cast<std::size_t>(n));
      return {bytes.begin(), bytes.end()};
    }
  }
  throw std::runtime_error("lossless: unknown method byte");
}

}  // namespace tac::lossless
