/// \file fig16_ordering_smoothness.cpp
/// \brief Reproduces the Figure 16 analysis: why zMesh helps
/// block-structured AMR but hurts tree-structured AMR.
///
/// We measure the smoothness (total variation per element and the
/// resulting 1D SZ compressed size) of the 1D orderings on tree-structured
/// data: per-level raster (the 1D baseline) vs level-interleaved traversal
/// (zMesh). Paper: on tree-structured data zMesh's interleaving introduces
/// extra jumps between levels, so it is slightly WORSE than the 1D
/// baseline — the opposite of its block-structured motivation.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "sz/sz.hpp"

namespace {

double total_variation_per_element(const std::vector<double>& v) {
  if (v.size() < 2) return 0;
  double acc = 0;
  for (std::size_t i = 1; i < v.size(); ++i)
    acc += std::fabs(v[i] - v[i - 1]);
  return acc / static_cast<double>(v.size() - 1);
}

}  // namespace

int main() {
  using namespace tac;
  bench::print_header(
      "Figure 16: 1D orderings on tree-structured AMR\n"
      "paper: zMesh's interleaving adds level-boundary jumps -> slightly "
      "worse than the naive per-level 1D ordering");

  simnyx::GeneratorConfig gc;
  gc.finest_dims = {64, 64, 64};
  gc.level_densities = {0.3, 0.7};
  gc.region_size = 8;
  const auto ds = simnyx::generate_baryon_density(gc);

  // Ordering 1: per-level raster (what the 1D baseline compresses).
  std::vector<double> per_level;
  per_level.reserve(ds.total_valid());
  for (std::size_t l = 0; l < ds.num_levels(); ++l) {
    const auto vals = ds.level(l).gather_valid();
    per_level.insert(per_level.end(), vals.begin(), vals.end());
  }
  // Ordering 2: zMesh traversal.
  const auto interleaved = core::zmesh_gather(ds);

  const sz::SzConfig cfg{.mode = sz::ErrorBoundMode::kRelative,
                         .error_bound = 1e-4};
  const auto c1 = sz::compress<double>(
      per_level, Dims3{per_level.size(), 1, 1}, cfg);
  const auto c2 = sz::compress<double>(
      interleaved, Dims3{interleaved.size(), 1, 1}, cfg);

  std::printf("%-22s %18s %16s\n", "ordering", "TV per element",
              "1D SZ bytes");
  std::printf("%-22s %18.4e %16zu\n", "per-level (1D base)",
              total_variation_per_element(per_level), c1.size());
  std::printf("%-22s %18.4e %16zu\n", "interleaved (zMesh)",
              total_variation_per_element(interleaved), c2.size());
  std::printf("\nshape check: zMesh bytes >= 1D bytes on tree-structured "
              "data: %s\n", c2.size() >= c1.size() ? "yes" : "NO");
  return 0;
}
