/// \file fig13_preprocess_time.cpp
/// \brief Reproduces Figure 13: pre-processing time (extraction only,
/// compression excluded) of OpST vs AKDTree as density grows.
///
/// Paper result: AKDTree's time is flat in density while OpST's grows
/// roughly linearly, crossing AKDTree around 50% — the basis for
/// threshold T1.

#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "core/extraction.hpp"

int main() {
  using namespace tac;
  bench::print_header(
      "Figure 13: OpST vs AKDTree pre-processing time vs density\n"
      "paper: AKDTree flat, OpST grows with density, crossover ~50%");

  std::printf("%-8s %14s %14s %10s\n", "density", "OpST(ms)", "AKDTree(ms)",
              "ratio");
  for (const double density :
       {0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95, 0.999}) {
    simnyx::GeneratorConfig gc;
    gc.finest_dims = {128, 128, 128};
    gc.level_densities = {density, 1.0 - density};
    gc.region_size = 8;
    const auto ds = simnyx::generate_baryon_density(gc);
    const auto& fine = ds.level(0);
    const core::BlockGrid grid(fine.dims(), 4);  // 32^3 unit blocks
    const auto occ = core::block_occupancy(fine, grid);

    // Median of three runs to tame scheduler noise.
    auto timed = [&](auto&& fn) {
      double best = 1e300;
      for (int rep = 0; rep < 3; ++rep) {
        Timer t;
        const auto subs = fn(occ);
        best = std::min(best, t.seconds());
        if (subs.empty() && density > 0) std::printf("(empty extraction?)");
      }
      return best * 1e3;
    };
    const double opst_ms = timed(core::opst_extract);
    const double akd_ms = timed(core::akdtree_extract);
    std::printf("%-8.3f %14.2f %14.2f %10.2f\n", density, opst_ms, akd_ms,
                opst_ms / akd_ms);
  }
  std::printf("\nshape check: OpST(d=0.999) should far exceed "
              "OpST(d=0.05); AKDTree roughly flat.\n");
  return 0;
}
