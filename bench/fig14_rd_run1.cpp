/// \file fig14_rd_run1.cpp
/// \brief Reproduces Figure 14: rate-distortion of TAC vs the 1D, zMesh
/// and 3D baselines on the four run-1 datasets (Z10, Z5, Z3, Z2).
///
/// Paper result: TAC dominates 1D and zMesh everywhere; zMesh trails even
/// the naive 1D baseline on tree-structured data; the 3D baseline is
/// competitive — and slightly ahead at low bit-rates — when the finest
/// level is dense (Z3/Z2, d >= 63%), with TAC overtaking as bit-rate grows.

#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace tac;
  bench::print_header(
      "Figure 14: rate-distortion on run1 (Z10, Z5, Z3, Z2)\n"
      "paper: TAC > 1D > zMesh; 3D baseline competitive at high finest "
      "density");

  const auto presets = simnyx::table1_presets(/*scale_shift=*/2);
  for (std::size_t i = 0; i < 4; ++i) {  // Run1_Z10, Z5, Z3, Z2
    const auto& preset = presets[i];
    const auto ds = simnyx::generate_preset(preset);
    const auto uniform = amr::compose_uniform(ds);
    std::printf("\n--- %s (finest density %.0f%%, %zu^3 finest) ---\n",
                preset.name.c_str(), 100.0 * preset.level_densities[0],
                ds.finest_dims().nx);
    bench::print_rd_table_header();
    for (const double eb : bench::eb_ladder(1e7, 1e10, 4)) {
      for (const auto method :
           {core::Method::kTac, core::Method::kOneD, core::Method::kZMesh,
            core::Method::kUpsample3D}) {
        const auto p = bench::measure_method(ds, uniform, method, eb);
        bench::print_rd_point(core::to_string(method), p);
      }
    }
  }
  return 0;
}
