/// \file fig07_nast_vs_opst.cpp
/// \brief Reproduces Figure 7: NaST vs OpST compression quality on a
/// z10-like fine level (23% density), same compressor, same error bound.
///
/// Paper result: OpST achieves BOTH higher CR and higher PSNR than NaST
/// (CR 233.8 -> 241.1, PSNR 76.9 -> 77.8 dB on their data) because larger
/// sub-blocks leave fewer poorly-predicted boundary points.

#include <cstdio>

#include "bench_util.hpp"
#include "core/extraction.hpp"
#include "sz/sz.hpp"

namespace {

using namespace tac;

struct StrategyResult {
  double cr = 0;
  double psnr = 0;
  std::size_t sub_blocks = 0;
};

StrategyResult run(const amr::AmrLevel& level, const core::BlockGrid& grid,
                   const Array3D<std::uint8_t>& occ, bool optimized,
                   double rel_eb) {
  const auto subs =
      optimized ? core::opst_extract(occ) : core::nast_extract(occ);
  tac::ArenaScope scratch;
  const auto groups = core::gather_groups(level, grid, subs, scratch);

  const auto [lo, hi] = level.valid_range();
  const sz::SzConfig cfg{.mode = sz::ErrorBoundMode::kAbsolute,
                         .error_bound = rel_eb * (hi - lo)};

  std::size_t compressed_bytes = 0;
  std::vector<core::BlockGroup> recon_groups;
  for (const auto& g : groups) {
    const auto stream = sz::compress<double>(g.buffer, g.block_cell_dims,
                                             cfg, g.members.size());
    compressed_bytes += stream.size();
    core::BlockGroup rg;
    rg.block_cell_dims = g.block_cell_dims;
    rg.members = g.members;
    rg.owned = sz::decompress<double>(stream);
    rg.buffer = rg.owned;
    recon_groups.push_back(std::move(rg));
  }

  amr::AmrLevel recon(level.dims());
  recon.mask = level.mask;
  core::scatter_groups(recon, grid, recon_groups);

  const auto orig = level.gather_valid();
  recon.mask = level.mask;
  std::vector<double> back;
  back.reserve(orig.size());
  for (std::size_t i = 0; i < recon.data.size(); ++i)
    if (level.mask[i]) back.push_back(recon.data[i]);

  StrategyResult r;
  r.sub_blocks = subs.size();
  r.cr = analysis::compression_ratio(orig.size() * sizeof(double),
                                     compressed_bytes);
  r.psnr = analysis::distortion(orig, back).psnr;
  return r;
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 7: NaST vs OpST on the z10-like fine level (23% density)\n"
      "paper: OpST wins both CR and PSNR (233.8/76.9dB -> 241.1/77.8dB)");

  simnyx::GeneratorConfig gc;
  gc.finest_dims = {128, 128, 128};
  gc.level_densities = {0.23, 0.77};
  const auto ds = simnyx::generate_baryon_density(gc);
  const auto& fine = ds.level(0);
  const core::BlockGrid grid(fine.dims(), 8);
  const auto occ = core::block_occupancy(fine, grid);

  std::printf("fine-level block density: %.1f%%\n\n",
              100.0 * core::occupancy_density(occ));
  std::printf("%-10s %-8s %10s %10s %12s\n", "rel_eb", "method", "CR",
              "PSNR(dB)", "sub-blocks");
  // The paper's Figure 7 bound (4.8e-4) plus a tighter bound; on our
  // (rougher) synthetic field the prediction-quality advantage of larger
  // sub-blocks shows at tighter bounds, where boundary cells cost real
  // bits. At very loose bounds the two are within noise of each other.
  bool tight_ok = false;
  for (const double rel_eb : {4.8e-4, 1e-5}) {
    const auto nast = run(fine, grid, occ, /*optimized=*/false, rel_eb);
    const auto opst = run(fine, grid, occ, /*optimized=*/true, rel_eb);
    std::printf("%-10.1e %-8s %10.1f %10.2f %12zu\n", rel_eb, "NaST",
                nast.cr, nast.psnr, nast.sub_blocks);
    std::printf("%-10.1e %-8s %10.1f %10.2f %12zu\n", rel_eb, "OpST",
                opst.cr, opst.psnr, opst.sub_blocks);
    if (rel_eb < 1e-4)
      tight_ok = opst.cr >= nast.cr && opst.psnr >= nast.psnr * 0.999 &&
                 opst.sub_blocks * 4 < nast.sub_blocks;
  }
  std::printf("\nshape check (tight bound): OpST CR >= NaST CR, PSNR "
              "comparable, far fewer sub-blocks: %s\n",
              tight_ok ? "yes" : "NO");
  return 0;
}
