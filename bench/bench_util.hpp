#ifndef TAC_BENCH_BENCH_UTIL_HPP
#define TAC_BENCH_BENCH_UTIL_HPP

/// \file bench_util.hpp
/// \brief Shared plumbing for the figure/table reproduction harnesses.
///
/// Experiments run on scaled-down Table-1 presets (see DESIGN.md): grid
/// extents shrink by the scale shift, per-level densities are preserved,
/// so rate-distortion *shapes* (who wins, where the curves cross) carry
/// over even though absolute byte counts do not.

#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/timer.hpp"

#include "amr/uniform.hpp"
#include "analysis/metrics.hpp"
#include "core/adaptive.hpp"
#include "core/backend.hpp"
#include "core/baselines.hpp"
#include "core/tac.hpp"
#include "simnyx/generator.hpp"

namespace tac::bench {

/// One point of a rate-distortion curve.
struct RdPoint {
  double error_bound = 0;  ///< absolute bound fed to the compressor
  double bit_rate = 0;     ///< bits per stored (valid) value
  double psnr = 0;         ///< on the composed uniform grid
  double cr = 0;           ///< original bytes / compressed bytes
  double compress_seconds = 0;
  double decompress_seconds = 0;
};

/// Compress+decompress once with `method` and measure rate/distortion on
/// the uniform-resolution reconstruction (how the paper evaluates all
/// methods on common ground). Any registered backend works — methods are
/// resolved through the CompressorBackend registry.
inline RdPoint measure_method(const amr::AmrDataset& ds,
                              const Array3D<double>& uniform_truth,
                              core::Method method, double abs_eb,
                              std::size_t block_size = 8) {
  core::TacConfig tcfg;
  tcfg.sz = {.mode = sz::ErrorBoundMode::kAbsolute, .error_bound = abs_eb};
  tcfg.block_size = block_size;

  Timer t;
  const core::CompressedAmr compressed =
      core::backend_for(method).compress(ds, tcfg);
  RdPoint p;
  p.compress_seconds = t.seconds();
  t.reset();
  const auto recon = core::decompress_any(compressed.bytes);
  p.decompress_seconds = t.seconds();

  const auto uniform_recon = amr::compose_uniform(recon);
  const auto stats =
      analysis::distortion(uniform_truth.span(), uniform_recon.span());
  p.error_bound = abs_eb;
  p.psnr = stats.psnr;
  p.bit_rate = analysis::bit_rate(ds.total_valid(), compressed.bytes.size());
  p.cr = analysis::compression_ratio(ds.original_bytes(),
                                     compressed.bytes.size());
  return p;
}

/// Geometric ladder of absolute error bounds spanning the interesting
/// range for the synthetic baryon density (mean ~1e9, range ~1e7..1e12).
inline std::vector<double> eb_ladder(double lo = 1e7, double hi = 1e10,
                                     std::size_t points = 4) {
  std::vector<double> out;
  if (points == 1) {
    out.push_back(lo);
    return out;
  }
  const double step = std::pow(hi / lo, 1.0 / static_cast<double>(points - 1));
  double eb = lo;
  for (std::size_t i = 0; i < points; ++i) {
    out.push_back(eb);
    eb *= step;
  }
  return out;
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_rd_table_header() {
  std::printf("%-10s %12s %10s %10s %9s\n", "method", "abs_eb", "bitrate",
              "PSNR(dB)", "CR");
}

inline void print_rd_point(const char* method, const RdPoint& p) {
  std::printf("%-10s %12.3e %10.3f %10.2f %9.1f\n", method, p.error_bound,
              p.bit_rate, p.psnr, p.cr);
}

}  // namespace tac::bench

#endif  // TAC_BENCH_BENCH_UTIL_HPP
