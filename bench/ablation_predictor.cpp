/// \file ablation_predictor.cpp
/// \brief Ablation: SZ-1.4-style pure Lorenzo vs SZ-2-style hybrid
/// (Lorenzo/regression per tile) as TAC's compression substrate.
///
/// Two questions: (1) what does the hybrid predictor buy on the Nyx-like
/// fields, and (2) does it change the GSP-vs-ZF picture on the
/// high-density level (EXPERIMENTS.md documents that pure Lorenzo
/// neutralizes zero padding on aligned slabs). Measured answer: on these
/// block-aligned masks the hybrid's tile selector selects Lorenzo at the
/// zero boundaries too (mixed tiles fit planes poorly), so the deviation
/// is geometry-driven, not predictor-driven.

#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace tac;

struct Row {
  double bitrate = 0;
  double psnr = 0;
};

Row run(const amr::AmrDataset& ds, const Array3D<double>& uniform,
        sz::Predictor predictor,
        std::optional<core::Strategy> forced = std::nullopt) {
  core::TacConfig cfg;
  cfg.sz.mode = sz::ErrorBoundMode::kAbsolute;
  cfg.sz.error_bound = 1e8;
  cfg.sz.predictor = predictor;
  cfg.force_strategy = forced;
  const auto compressed = core::tac_compress(ds, cfg);
  const auto recon = core::decompress_any(compressed.bytes);
  const auto uniform_recon = amr::compose_uniform(recon);
  Row r;
  r.bitrate = analysis::bit_rate(ds.total_valid(), compressed.bytes.size());
  r.psnr = analysis::distortion(uniform.span(), uniform_recon.span()).psnr;
  return r;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: Lorenzo (SZ1.4-style) vs hybrid Lorenzo+regression "
      "(SZ2-style) substrate");

  std::printf("%-20s %12s %12s\n", "dataset (hybrid vs lorenzo)",
              "lorenzo", "hybrid");
  for (const double density : {0.23, 0.58, 0.63}) {
    simnyx::GeneratorConfig gc;
    gc.finest_dims = {64, 64, 64};
    gc.level_densities = {density, 1.0 - density};
    gc.region_size = 8;
    const auto ds = simnyx::generate_baryon_density(gc);
    const auto uniform = amr::compose_uniform(ds);
    const Row lor = run(ds, uniform, sz::Predictor::kLorenzo);
    const Row hyb = run(ds, uniform, sz::Predictor::kHybrid);
    std::printf("d=%-17.2f %9.3f bpv %9.3f bpv\n", density, lor.bitrate,
                hyb.bitrate);
  }

  std::printf("\nGSP vs ZF on the z10-like coarse level under each "
              "substrate (the Figure 12 deviation study):\n");
  simnyx::GeneratorConfig gc;
  gc.finest_dims = {128, 128, 128};
  gc.level_densities = {0.23, 0.77};
  auto full = simnyx::generate_baryon_density(gc);
  std::vector<amr::AmrLevel> one;
  one.push_back(full.level(1));
  const amr::AmrDataset coarse("coarse", std::move(one));
  const auto uniform = amr::compose_uniform(coarse);

  std::printf("%-10s %12s %12s %14s\n", "predictor", "ZF (bpv)",
              "GSP (bpv)", "GSP gain");
  for (const auto predictor :
       {sz::Predictor::kLorenzo, sz::Predictor::kHybrid}) {
    const Row zf = run(coarse, uniform, predictor, core::Strategy::kZF);
    const Row gsp = run(coarse, uniform, predictor, core::Strategy::kGSP);
    std::printf("%-10s %12.3f %12.3f %+13.2f%%\n",
                predictor == sz::Predictor::kLorenzo ? "lorenzo" : "hybrid",
                zf.bitrate, gsp.bitrate,
                100.0 * (zf.bitrate / gsp.bitrate - 1.0));
  }
  return 0;
}
