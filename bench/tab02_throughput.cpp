/// \file tab02_throughput.cpp
/// \brief Reproduces Table 2: overall compression+decompression throughput
/// (MB/s) of the 1D baseline, the 3D baseline and TAC on all seven
/// datasets at three absolute error bounds.
///
/// Paper result: 1D is fastest (no pre-processing); TAC sits close behind;
/// the 3D baseline collapses on the run-2 datasets (up to ~75x slower than
/// TAC) because up-sampling inflates the data volume by ratio^3 per level
/// gap when coarse levels dominate.
///
/// Besides the console table, the run emits machine-readable
/// BENCH_tab02.json (per-row throughput, compressed size and v2 payload
/// index overhead) so successive PRs can track the performance trajectory,
/// and asserts the index overhead stays under 1% of every container.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/telemetry.hpp"
#include "core/backend.hpp"

namespace {

using namespace tac;

struct Measurement {
  double throughput_mbs = 0;
  double seconds = 0;  ///< timed compress + decompress, generation excluded
  std::size_t compressed_bytes = 0;
  std::size_t index_bytes = 0;
  double compress_seconds = 0;   ///< compress wall time alone
  double selection_seconds = 0;  ///< auto only: summed trial time
  std::string winners;           ///< auto only: per-level picks, finest first
  std::vector<telemetry::StageStat> stages;  ///< per-stage time/byte totals
};

Measurement measure(const amr::AmrDataset& ds, core::Method method,
                    double abs_eb) {
  core::TacConfig tcfg;
  tcfg.sz = {.mode = sz::ErrorBoundMode::kAbsolute, .error_bound = abs_eb};

  // The run executes under telemetry counters mode (set in main): stage
  // spans aggregate into per-name totals with no per-event memory, so the
  // JSON can carry a per-method stage breakdown. Reset per measurement so
  // each row's stages cover exactly its own compress + decompress.
  telemetry::reset_stages();
  Timer t;
  const core::CompressedAmr compressed =
      core::backend_for(method).compress(ds, tcfg);
  (void)core::decompress_any(compressed.bytes);
  const double secs = t.seconds();

  Measurement m;
  m.stages = telemetry::collect_stages();
  m.throughput_mbs = throughput_mbs(ds.original_bytes(), secs);
  m.seconds = secs;
  m.compressed_bytes = compressed.bytes.size();
  m.compress_seconds = compressed.report.seconds;
  for (const core::LevelReport& lr : compressed.report.levels) {
    m.selection_seconds += lr.selection_seconds;
    if (method == core::Method::kAuto) {
      if (!m.winners.empty()) m.winners += ",";
      m.winners += core::to_string(lr.method);
    }
  }
  ByteReader r(compressed.bytes);
  const core::CommonHeader h = core::read_common_header(r);
  m.index_bytes = h.payload_offset - h.index_offset;
  return m;
}

struct JsonRow {
  std::string dataset;
  double abs_eb;
  const char* method;
  Measurement m;
};

/// Stage totals per method, merged over every (dataset, eb) row. Keyed by
/// stage name; deterministic iteration keeps the JSON diffable.
using StageAggregate =
    std::map<std::string, std::map<std::string, telemetry::StageStat>>;

void merge_stages(StageAggregate& agg, const char* method,
                  const std::vector<telemetry::StageStat>& stages) {
  auto& per_method = agg[method];
  for (const auto& s : stages) {
    auto& dst = per_method[s.name];
    dst.name = s.name;
    dst.count += s.count;
    dst.ns += s.ns;
    dst.bytes += s.bytes;
  }
}

bool write_json(const std::vector<JsonRow>& rows, const StageAggregate& stages,
                double aggregate_overhead, double aggregate_seconds,
                const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return false;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"tab02_throughput\",\n"
               "  \"index_overhead_aggregate\": %.6f,\n"
               "  \"aggregate_measure_seconds\": %.3f,\n  \"rows\": [\n",
               aggregate_overhead, aggregate_seconds);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const JsonRow& row = rows[i];
    std::fprintf(
        f,
        "    {\"dataset\": \"%s\", \"abs_eb\": %.3e, \"method\": \"%s\", "
        "\"throughput_mbs\": %.2f, \"seconds\": %.4f, "
        "\"compressed_bytes\": %zu, "
        "\"index_bytes\": %zu, \"index_overhead\": %.6f",
        row.dataset.c_str(), row.abs_eb, row.method, row.m.throughput_mbs,
        row.m.seconds, row.m.compressed_bytes, row.m.index_bytes,
        static_cast<double>(row.m.index_bytes) /
            static_cast<double>(row.m.compressed_bytes));
    if (!row.m.winners.empty())  // auto rows: the per-level picks
      std::fprintf(f, ", \"winners\": \"%s\", \"selection_seconds\": %.4f",
                   row.m.winners.c_str(), row.m.selection_seconds);
    std::fprintf(f, "}%s\n", i + 1 == rows.size() ? "" : ",");
  }
  // Per-method stage breakdown (telemetry counters mode), a separate
  // top-level key so row-matching consumers (compare_bench.py) are
  // unaffected by stage additions and renames.
  std::fprintf(f, "  ],\n  \"stages\": {\n");
  std::size_t mi = 0;
  for (const auto& [method, per_stage] : stages) {
    std::fprintf(f, "    \"%s\": {\n", method.c_str());
    std::size_t si = 0;
    for (const auto& [name, s] : per_stage) {
      std::fprintf(f,
                   "      \"%s\": {\"calls\": %llu, \"seconds\": %.6f, "
                   "\"bytes\": %llu}%s\n",
                   name.c_str(), static_cast<unsigned long long>(s.count),
                   static_cast<double>(s.ns) * 1e-9,
                   static_cast<unsigned long long>(s.bytes),
                   ++si == per_stage.size() ? "" : ",");
    }
    std::fprintf(f, "    }%s\n", ++mi == stages.size() ? "" : ",");
  }
  std::fprintf(f, "  }\n}\n");
  return std::fclose(f) == 0;
}

}  // namespace

int main() {
  bench::print_header(
      "Table 2: overall (de)compression throughput in MB/s\n"
      "paper: 1D fastest; TAC close; 3D collapses on sparse-finest run2 "
      "data (up to ~75x slower than TAC)");

  // Run1 at 128^3 finest, run2 at one more scale step (T4 -> 128^3 finest)
  // to keep the 3D baseline's blown-up uniform grids affordable.
  const auto run1 = simnyx::table1_presets(/*scale_shift=*/2);
  const auto run2 = simnyx::table1_presets(/*scale_shift=*/3);
  std::vector<simnyx::DatasetPreset> presets(run1.begin(), run1.begin() + 4);
  presets.insert(presets.end(), run2.begin() + 4, run2.end());

  // Counters mode for the whole run: per-stage totals with no per-event
  // memory. The spans the pipeline crosses are coarse (per level / per
  // stream), so the mode's clock reads are noise next to the work timed.
  telemetry::set_mode(telemetry::Mode::kCounters);

  const double ebs[] = {1e8, 1e9, 1e10};
  std::vector<JsonRow> rows;
  StageAggregate stage_agg;
  double max_overhead = 0;
  double total_seconds = 0;
  std::size_t total_index = 0, total_compressed = 0;
  // Acceptance tracking for the auto selector: aggregate compressed size
  // per method (auto must beat or match the best fixed backend) and the
  // selection overhead as a fraction of auto's compression wall time.
  std::size_t total_1d = 0, total_3d = 0, total_tac = 0, total_auto = 0;
  double auto_selection_seconds = 0, auto_compress_seconds = 0;
  std::printf("%-10s %12s %10s %10s %10s %10s %12s\n", "dataset", "abs_eb",
              "1D", "3D", "TAC", "auto", "TAC/3D");
  for (const auto& preset : presets) {
    const auto ds = simnyx::generate_preset(preset);
    for (const double eb : ebs) {
      const Measurement m1d = measure(ds, core::Method::kOneD, eb);
      const Measurement m3d = measure(ds, core::Method::kUpsample3D, eb);
      const Measurement mtac = measure(ds, core::Method::kTac, eb);
      const Measurement mauto = measure(ds, core::Method::kAuto, eb);
      std::printf("%-10s %12.1e %10.1f %10.1f %10.1f %10.1f %11.1fx\n",
                  preset.name.c_str(), eb, m1d.throughput_mbs,
                  m3d.throughput_mbs, mtac.throughput_mbs,
                  mauto.throughput_mbs,
                  mtac.throughput_mbs / m3d.throughput_mbs);
      rows.push_back({preset.name, eb, "1D", m1d});
      rows.push_back({preset.name, eb, "3D", m3d});
      rows.push_back({preset.name, eb, "TAC", mtac});
      rows.push_back({preset.name, eb, "auto", mauto});
      merge_stages(stage_agg, "1D", m1d.stages);
      merge_stages(stage_agg, "3D", m3d.stages);
      merge_stages(stage_agg, "TAC", mtac.stages);
      merge_stages(stage_agg, "auto", mauto.stages);
      total_1d += m1d.compressed_bytes;
      total_3d += m3d.compressed_bytes;
      total_tac += mtac.compressed_bytes;
      total_auto += mauto.compressed_bytes;
      auto_selection_seconds += mauto.selection_seconds;
      auto_compress_seconds += mauto.compress_seconds;
      for (const Measurement* m : {&m1d, &m3d, &mtac, &mauto}) {
        max_overhead = std::max(
            max_overhead, static_cast<double>(m->index_bytes) /
                              static_cast<double>(m->compressed_bytes));
        total_index += m->index_bytes;
        total_compressed += m->compressed_bytes;
        total_seconds += m->seconds;
      }
    }
  }
  // Aggregate across the workload: per-row overhead can spike on the
  // degenerate loose-bound containers (a few hundred bytes total, where
  // the fixed 20-byte entries dominate) without mattering in practice.
  const double aggregate = static_cast<double>(total_index) /
                           static_cast<double>(total_compressed);
  const bool json_ok = write_json(rows, stage_agg, aggregate, total_seconds,
                                  "BENCH_tab02.json");
  std::printf("\n%s BENCH_tab02.json (%zu rows)\n",
              json_ok ? "wrote" : "FAILED to write", rows.size());
  std::printf("aggregate measured compress+decompress: %.2f s\n",
              total_seconds);
  std::printf("v2 payload index overhead: %.4f%% of the workload's "
              "compressed bytes (budget: <1%%) %s; worst single container "
              "%.2f%%\n",
              100.0 * aggregate, aggregate < 0.01 ? "OK" : "EXCEEDED",
              100.0 * max_overhead);
  std::printf("\nshape check: TAC/3D ratio should grow sharply on the Run2 "
              "rows (sparse finest levels).\n");

  // Auto-selector acceptance: its aggregate compressed size must beat or
  // match the best single fixed backend, and the trial selection must
  // cost <10% of auto's compression wall time at the default sampling
  // rate.
  const std::size_t best_fixed = std::min({total_1d, total_3d, total_tac});
  const double selection_frac =
      auto_compress_seconds > 0 ? auto_selection_seconds / auto_compress_seconds
                                : 0;
  const bool auto_size_ok = total_auto <= best_fixed;
  const bool auto_overhead_ok = selection_frac < 0.10;
  std::printf("auto selector: %zu bytes aggregate vs best fixed %zu "
              "(1D %zu, 3D %zu, TAC %zu) %s\n",
              total_auto, best_fixed, total_1d, total_3d, total_tac,
              auto_size_ok ? "OK" : "EXCEEDED");
  std::printf("auto selection overhead: %.2f%% of compression time "
              "(budget: <10%%) %s\n",
              100.0 * selection_frac, auto_overhead_ok ? "OK" : "EXCEEDED");
  return (aggregate < 0.01 && json_ok && auto_size_ok && auto_overhead_ok)
             ? 0
             : 1;
}
