/// \file tab02_throughput.cpp
/// \brief Reproduces Table 2: overall compression+decompression throughput
/// (MB/s) of the 1D baseline, the 3D baseline and TAC on all seven
/// datasets at three absolute error bounds.
///
/// Paper result: 1D is fastest (no pre-processing); TAC sits close behind;
/// the 3D baseline collapses on the run-2 datasets (up to ~75x slower than
/// TAC) because up-sampling inflates the data volume by ratio^3 per level
/// gap when coarse levels dominate.

#include <cstdio>

#include "bench_util.hpp"
#include "core/backend.hpp"

namespace {

using namespace tac;

double overall_throughput(const amr::AmrDataset& ds, core::Method method,
                          double abs_eb) {
  core::TacConfig tcfg;
  tcfg.sz = {.mode = sz::ErrorBoundMode::kAbsolute, .error_bound = abs_eb};

  Timer t;
  const core::CompressedAmr compressed =
      core::backend_for(method).compress(ds, tcfg);
  (void)core::decompress_any(compressed.bytes);
  const double secs = t.seconds();
  return throughput_mbs(ds.original_bytes(), secs);
}

}  // namespace

int main() {
  bench::print_header(
      "Table 2: overall (de)compression throughput in MB/s\n"
      "paper: 1D fastest; TAC close; 3D collapses on sparse-finest run2 "
      "data (up to ~75x slower than TAC)");

  // Run1 at 128^3 finest, run2 at one more scale step (T4 -> 128^3 finest)
  // to keep the 3D baseline's blown-up uniform grids affordable.
  const auto run1 = simnyx::table1_presets(/*scale_shift=*/2);
  const auto run2 = simnyx::table1_presets(/*scale_shift=*/3);
  std::vector<simnyx::DatasetPreset> presets(run1.begin(), run1.begin() + 4);
  presets.insert(presets.end(), run2.begin() + 4, run2.end());

  const double ebs[] = {1e8, 1e9, 1e10};
  std::printf("%-10s %12s %10s %10s %10s %12s\n", "dataset", "abs_eb", "1D",
              "3D", "TAC", "TAC/3D");
  for (const auto& preset : presets) {
    const auto ds = simnyx::generate_preset(preset);
    for (const double eb : ebs) {
      const double t1d = overall_throughput(ds, core::Method::kOneD, eb);
      const double t3d =
          overall_throughput(ds, core::Method::kUpsample3D, eb);
      const double ttac = overall_throughput(ds, core::Method::kTac, eb);
      std::printf("%-10s %12.1e %10.1f %10.1f %10.1f %11.1fx\n",
                  preset.name.c_str(), eb, t1d, t3d, ttac, ttac / t3d);
    }
  }
  std::printf("\nshape check: TAC/3D ratio should grow sharply on the Run2 "
              "rows (sparse finest levels).\n");
  return 0;
}
