/// \file ablation_thresholds.cpp
/// \brief Ablation: the hybrid density filter (T1=50%, T2=60%) against
/// forcing a single strategy everywhere, across a density sweep.
///
/// Validates the paper's threshold choices: the hybrid should match the
/// best single strategy at every density (it *is* one of them per level),
/// while each pure strategy loses somewhere — OpST/AKDTree at high
/// density, GSP at low density.

#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace tac;

struct Row {
  double bitrate = 0;
  double psnr = 0;
};

Row run(const amr::AmrDataset& ds, const Array3D<double>& uniform,
        std::optional<core::Strategy> forced) {
  core::TacConfig cfg;
  cfg.sz.mode = sz::ErrorBoundMode::kAbsolute;
  cfg.sz.error_bound = 1e8;
  cfg.force_strategy = forced;
  const auto compressed = core::tac_compress(ds, cfg);
  const auto recon = core::decompress_any(compressed.bytes);
  const auto uniform_recon = amr::compose_uniform(recon);
  Row r;
  r.bitrate = analysis::bit_rate(ds.total_valid(), compressed.bytes.size());
  r.psnr = analysis::distortion(uniform.span(), uniform_recon.span()).psnr;
  return r;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: hybrid filter (T1=50%, T2=60%) vs single strategies\n"
      "hybrid should track the best pure strategy at every density");

  std::printf("%-9s | %9s %8s | %9s %8s | %9s %8s | %9s %8s\n", "density",
              "hyb rate", "psnr", "opst", "psnr", "akd", "psnr", "gsp",
              "psnr");
  for (const double density : {0.1, 0.3, 0.5, 0.55, 0.62, 0.8, 0.95}) {
    simnyx::GeneratorConfig gc;
    gc.finest_dims = {64, 64, 64};
    gc.level_densities = {density, 1.0 - density};
    gc.region_size = 8;
    const auto ds = simnyx::generate_baryon_density(gc);
    const auto uniform = amr::compose_uniform(ds);

    const Row hybrid = run(ds, uniform, std::nullopt);
    const Row opst = run(ds, uniform, core::Strategy::kOpST);
    const Row akd = run(ds, uniform, core::Strategy::kAKDTree);
    const Row gsp = run(ds, uniform, core::Strategy::kGSP);
    std::printf(
        "%-9.2f | %9.3f %8.2f | %9.3f %8.2f | %9.3f %8.2f | %9.3f %8.2f\n",
        density, hybrid.bitrate, hybrid.psnr, opst.bitrate, opst.psnr,
        akd.bitrate, akd.psnr, gsp.bitrate, gsp.psnr);
  }
  return 0;
}
