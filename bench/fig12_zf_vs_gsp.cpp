/// \file fig12_zf_vs_gsp.cpp
/// \brief Reproduces Figure 12: zero-filling vs ghost-shell padding on a
/// high-density level (77%), same compressor, same error bound.
///
/// Paper result: GSP beats ZF on both CR (156.7 -> 161.3) and PSNR
/// (32.8 -> 33.5 dB) because padded zeros mislead SZ's prediction at
/// every data/empty boundary.
///
/// Reproduction note (see EXPERIMENTS.md): with a pure order-1 Lorenzo
/// predictor, zero extension cancels axis-aligned zero slabs exactly
/// (inclusion-exclusion reduces to a lower-dimensional Lorenzo at the
/// boundary), so on the lognormal baryon-density field — whose value
/// floor is ~0 relative to its range — ZF is nearly free and GSP ~ ZF.
/// The paper's effect needs boundary values far above the error bound;
/// we therefore report both the baryon-density level (deviation, flat)
/// and a floor-dominated smooth field (temperature-like: large offset,
/// small fluctuations), where the paper's ordering emerges.

#include <cmath>
#include <cstdio>

#include "analysis/slice_image.hpp"
#include "bench_util.hpp"

namespace {

using namespace tac;

struct Result {
  double cr = 0;
  double psnr = 0;
};

Result run(const amr::AmrDataset& ds, core::Strategy strategy,
           double abs_eb, std::size_t block_size = 8,
           const char* error_map_path = nullptr) {
  core::TacConfig cfg;
  cfg.sz.mode = sz::ErrorBoundMode::kAbsolute;
  cfg.sz.error_bound = abs_eb;
  cfg.block_size = block_size;
  cfg.force_strategy = strategy;
  const auto compressed = core::tac_compress(ds, cfg);
  const auto recon = core::decompress_any(compressed.bytes);
  if (error_map_path != nullptr) {
    // The paper's Figure 12 visual: per-cell |error| on a mid slice,
    // brighter = worse.
    analysis::write_error_slice_pgm(
        error_map_path, ds.level(0).data, recon.level(0).data,
        {.z = ds.level(0).dims().nz / 2, .log_scale = true});
  }
  Result r;
  r.cr = analysis::compression_ratio(ds.original_bytes(),
                                     compressed.bytes.size());
  r.psnr = analysis::distortion_amr(ds, recon).psnr;
  return r;
}

void report(const char* title, const amr::AmrDataset& ds, double abs_eb,
            std::size_t block_size = 8) {
  const auto zf = run(ds, core::Strategy::kZF, abs_eb, block_size);
  const auto gsp = run(ds, core::Strategy::kGSP, abs_eb, block_size);
  std::printf("\n--- %s (density %.1f%%, abs_eb %.1e) ---\n", title,
              100.0 * ds.level(0).density(), abs_eb);
  std::printf("%-6s %10s %10s\n", "method", "CR", "PSNR(dB)");
  std::printf("%-6s %10.1f %10.2f\n", "ZF", zf.cr, zf.psnr);
  std::printf("%-6s %10.1f %10.2f\n", "GSP", gsp.cr, gsp.psnr);
  std::printf("GSP CR gain over ZF: %+.2f%%\n",
              100.0 * (gsp.cr / zf.cr - 1.0));
}

/// Single-level dataset with scattered empty blocks (isolated refined
/// islands, the geometry of many small halos) and a floor-dominated
/// smooth field: value = floor + small smooth variation, like temperature
/// in ionized regions. Isolated holes break the Lorenzo zero-extension
/// cancellation that makes aligned slabs free, and boundary values sit
/// far above the bound — the regime where padded zeros genuinely poison
/// prediction.
amr::AmrDataset scattered_hole_level(Dims3 dims, std::size_t block) {
  amr::AmrLevel lv(dims);
  const Dims3 bd{dims.nx / block, dims.ny / block, dims.nz / block};
  std::size_t bi = 0;
  for (std::size_t bz = 0; bz < bd.nz; ++bz)
    for (std::size_t by = 0; by < bd.ny; ++by)
      for (std::size_t bx = 0; bx < bd.nx; ++bx, ++bi) {
        if (bi % 5 == 0) continue;  // ~20% empty blocks, scattered
        for (std::size_t dz = 0; dz < block; ++dz)
          for (std::size_t dy = 0; dy < block; ++dy)
            for (std::size_t dx = 0; dx < block; ++dx) {
              const std::size_t x = bx * block + dx;
              const std::size_t y = by * block + dy;
              const std::size_t z = bz * block + dz;
              lv.mask(x, y, z) = 1;
              lv.data(x, y, z) =
                  1e4 + 300.0 * std::sin(0.11 * static_cast<double>(x)) *
                            std::cos(0.07 * static_cast<double>(y)) +
                  200.0 * std::sin(0.05 * static_cast<double>(z + x));
            }
      }
  std::vector<amr::AmrLevel> one;
  one.push_back(std::move(lv));
  return amr::AmrDataset("temperature_like_scattered", std::move(one));
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 12: ZF vs GSP on a high-density level (77%)\n"
      "paper: GSP wins both CR and PSNR (156.7/32.8dB -> 161.3/33.5dB)");

  simnyx::GeneratorConfig gc;
  gc.finest_dims = {128, 128, 128};
  gc.level_densities = {0.23, 0.77};
  auto full = simnyx::generate_baryon_density(gc);

  std::vector<amr::AmrLevel> one;
  one.push_back(full.level(1));
  const amr::AmrDataset coarse_only("baryon_density_coarse", std::move(one));

  const auto [lo, hi] = coarse_only.level(0).valid_range();
  report("baryon density coarse level (documented deviation: GSP ~ ZF "
         "under pure Lorenzo)",
         coarse_only, 6.7e-3 * (hi - lo));

  // Small unit blocks maximize the boundary surface per padded cell —
  // the regime where zero-poisoned predictions dominate the rate.
  const auto temp = scattered_hole_level({128, 128, 128}, 4);
  report("floor-dominated field, scattered holes (temperature-like)", temp,
         0.5, /*block_size=*/4);

  const auto zf =
      run(temp, core::Strategy::kZF, 0.5, 4, "fig12_zf_error.pgm");
  const auto gsp =
      run(temp, core::Strategy::kGSP, 0.5, 4, "fig12_gsp_error.pgm");
  std::printf("error heat maps written: fig12_zf_error.pgm, "
              "fig12_gsp_error.pgm\n");
  std::printf("\nshape check (scattered holes, block 4): GSP CR >= ZF CR: "
              "%s | GSP PSNR >= ZF PSNR - 0.1: %s\n",
              gsp.cr >= zf.cr ? "yes" : "NO",
              gsp.psnr >= zf.psnr - 0.1 ? "yes" : "NO");
  std::printf("note: on the lognormal baryon-density level GSP ~ ZF here "
              "(documented deviation, EXPERIMENTS.md): a pure order-1 "
              "Lorenzo cancels aligned zero slabs for free.\n");
  return 0;
}
