/// \file micro_hotpaths.cpp
/// \brief Isolated timings for every dispatched hot-path kernel, with the
/// scalar fallback (or a reference implementation) as the in-run baseline.
///
/// Unlike the micro_* google-benchmark harnesses this is a standalone main
/// so it builds without the benchmark package: CI runs it on every push.
/// Each kernel is measured in alternating A/B rounds inside the same time
/// window (the ratio is what matters — absolute numbers drift with machine
/// noise, the interleaved ratio does not) and the results are written to
/// BENCH_hotpaths.json next to the console table.
///
/// Scoreboard expectations wired into CI:
///   - huffman_decode must beat the bit-at-a-time reference by >= 4x,
///   - the fast-profile LZSS encoder (lzss2) must beat the legacy
///     bit-stream encoder by >= 1.2x on the mixed corpus,
///   - every vectorized kernel must be no slower than its scalar fallback,
///   - disabled telemetry (TAC_TRACE off) must cost <= 1% on the
///     instrumented huffman_decompress wrapper.

#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "common/bytes.hpp"
#include "common/crc32.hpp"
#include "common/simd.hpp"
#include "common/telemetry.hpp"
#include "common/timer.hpp"
#include "amr/amr_io.hpp"
#include "lossless/huffman.hpp"
#include "lossless/lzss.hpp"
#include "sz/sz.hpp"

namespace {

using namespace tac;

constexpr std::size_t kElems = 1u << 21;  // 2M values per round
constexpr int kRounds = 5;                // alternating A/B rounds

/// Defeats dead-code elimination for kernels whose result is otherwise
/// unused (crc32, arena stores) without perturbing the timed loop.
volatile std::uint64_t g_sink;

struct KernelResult {
  std::string name;
  double a_seconds = 0;  ///< optimized path, summed over rounds
  double b_seconds = 0;  ///< baseline path, summed over rounds
  const char* baseline = "scalar";
  double mb_per_s = 0;  ///< optimized-path throughput over the input bytes

  [[nodiscard]] double speedup() const {
    return a_seconds > 0 ? b_seconds / a_seconds : 0.0;
  }
};

std::vector<double> smooth_field(std::size_t n) {
  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::vector<double> v(n);
  double acc = 0;
  for (auto& x : v) x = (acc += u(rng) * 0.05);
  return v;
}

/// Runs `a` and `b` in alternating rounds inside one time window so
/// machine-noise drift hits both sides equally.
template <class A, class B>
KernelResult ab(const std::string& name, std::size_t bytes, A&& a, B&& b) {
  KernelResult r;
  r.name = name;
  a();  // warm both paths (page in buffers, build tables)
  b();
  for (int round = 0; round < kRounds; ++round) {
    Timer t;
    a();
    r.a_seconds += t.seconds();
    t.reset();
    b();
    r.b_seconds += t.seconds();
  }
  r.mb_per_s = static_cast<double>(bytes) * kRounds / r.a_seconds / 1.0e6;
  return r;
}

KernelResult bench_sz_roundtrip() {
  const Dims3 dims{128, 128, 128};
  const auto data = smooth_field(dims.volume());
  const sz::SzConfig cfg{.mode = sz::ErrorBoundMode::kAbsolute,
                         .error_bound = 1e-3};
  auto run = [&] {
    const auto stream = sz::compress<double>(data, dims, cfg);
    (void)sz::decompress<double>(stream);
  };
  return ab(
      "sz_roundtrip", dims.volume() * sizeof(double),
      [&] {
        simd::force_scalar(false);
        run();
      },
      [&] {
        simd::force_scalar(true);
        run();
      });
}

KernelResult bench_scan_range() {
  const auto data = smooth_field(kElems);
  const std::span<const double> s(data);
  return ab(
      "scan_range", kElems * sizeof(double),
      [&] {
        simd::force_scalar(false);
        (void)sz::scan_range(s);
      },
      [&] {
        simd::force_scalar(true);
        (void)sz::scan_range(s);
      });
}

KernelResult bench_pack_sign_bits() {
  auto data = smooth_field(kElems);
  const std::span<const double> s(data);
  return ab(
      "pack_sign_bits", kElems * sizeof(double),
      [&] {
        simd::force_scalar(false);
        (void)sz::pack_sign_bits(s);
      },
      [&] {
        simd::force_scalar(true);
        (void)sz::pack_sign_bits(s);
      });
}

KernelResult bench_huffman_decode() {
  // Mid-entropy geometric spread over 1024 symbols (~8 bits/symbol) —
  // the regime of noisy quantization codes. The per-bit reference walks
  // one iteration per code bit; the table decoder is one probe per 1-2
  // symbols regardless of code length.
  std::mt19937 rng(23);
  std::vector<double> weights(1024);
  double w = 1.0;
  for (auto& x : weights) {
    x = w;
    w *= 0.99;
  }
  std::discrete_distribution<int> skew(weights.begin(), weights.end());
  std::vector<std::uint32_t> syms(kElems);
  for (auto& v : syms) v = 32256 + static_cast<std::uint32_t>(skew(rng));
  const auto table = lossless::huffman_build(syms);
  const auto payload = lossless::huffman_encode(table, syms);
  auto r = ab(
      "huffman_decode", payload.size(),
      [&] { (void)lossless::huffman_decode(table, payload, syms.size()); },
      [&] {
        (void)lossless::huffman_decode_reference(table, payload, syms.size());
      });
  r.baseline = "per-bit reference";
  return r;
}

KernelResult bench_crc32() {
  std::vector<std::uint8_t> data(kElems * 8);
  std::mt19937_64 rng(5);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  auto r = ab(
      "crc32", data.size(), [&] { g_sink = g_sink + crc32(data); },
      [&] { g_sink = g_sink + detail::crc32_bytewise(data); });
  r.baseline = "bytewise";
  return r;
}

KernelResult bench_mask_roundtrip() {
  // Mixed valid/empty runs like a refinement mask.
  std::vector<std::uint8_t> mask(kElems);
  std::mt19937 rng(9);
  std::size_t i = 0;
  while (i < mask.size()) {
    const std::size_t run = 1 + rng() % 200;
    const std::uint8_t bit = rng() & 1;
    for (std::size_t j = 0; j < run && i < mask.size(); ++j) mask[i++] = bit;
  }
  const auto packed = amr::pack_mask(mask);
  // No dispatched scalar twin (the word-wise path is endian-gated, not
  // CPUID-gated): measure absolute round-trip throughput, ratio vs itself.
  auto roundtrip = [&] {
    const auto p = amr::pack_mask(mask);
    (void)amr::unpack_mask(p, mask.size());
  };
  auto r = ab("mask_roundtrip", mask.size(), roundtrip, roundtrip);
  r.baseline = "self";
  return r;
}

/// The byte mix the lossless stage actually sees: a Huffman-coded payload
/// (mid entropy — exercises the incompressible-skip heuristic), packed
/// sign/mode bits (long constant runs — exercises match emission), and a
/// stride-repetitive block index stream (medium-distance matches).
std::vector<std::uint8_t> lzss_corpus() {
  std::vector<std::uint8_t> corpus;
  std::mt19937 rng(41);
  std::vector<double> weights(256);
  double w = 1.0;
  for (auto& x : weights) {
    x = w;
    w *= 0.97;
  }
  std::discrete_distribution<int> skew(weights.begin(), weights.end());
  std::vector<std::uint32_t> syms(kElems / 4);
  for (auto& v : syms) v = 32700 + static_cast<std::uint32_t>(skew(rng));
  const auto table = lossless::huffman_build(syms);
  const auto huff = lossless::huffman_encode(table, syms);
  corpus.insert(corpus.end(), huff.begin(), huff.end());
  // Run-heavy segment: long same-byte stretches with occasional flips.
  for (std::size_t i = 0; i < kElems / 4;) {
    const std::size_t run = 16 + rng() % 512;
    const std::uint8_t b = static_cast<std::uint8_t>(rng() & 3);
    for (std::size_t j = 0; j < run && i < kElems / 4; ++j, ++i)
      corpus.push_back(b);
  }
  // Stride-repetitive segment: a 67-byte pattern with sparse noise.
  std::vector<std::uint8_t> pattern(67);
  for (auto& b : pattern) b = static_cast<std::uint8_t>(rng());
  for (std::size_t i = 0; i < kElems / 4; ++i)
    corpus.push_back(rng() % 97 == 0 ? static_cast<std::uint8_t>(rng())
                                     : pattern[i % pattern.size()]);
  return corpus;
}

KernelResult bench_lzss_compress() {
  const auto corpus = lzss_corpus();
  auto r = ab(
      "lzss_compress", corpus.size(),
      [&] { (void)lossless::lzss2_compress(corpus); },
      [&] { (void)lossless::lzss_compress(corpus); });
  r.baseline = "legacy bit-stream";
  return r;
}

KernelResult bench_lzss_decompress() {
  const auto corpus = lzss_corpus();
  const auto fast = lossless::lzss2_compress(corpus);
  const auto legacy = lossless::lzss_compress(corpus);
  auto r = ab(
      "lzss_decompress", corpus.size(),
      [&] { (void)lossless::lzss2_decompress(fast); },
      [&] { (void)lossless::lzss_decompress(legacy); });
  r.baseline = "legacy bit-stream";
  return r;
}

/// Disabled-telemetry overhead on a real wrapper. A runs the instrumented
/// huffman_decompress entry point with telemetry off (its span and
/// counter reduce to one relaxed atomic load and a predicted branch per
/// call); B performs the identical parse + table build + decode by hand
/// with no instrumentation in the path. Many calls on a small blob keep
/// the per-call overhead measurable. The CI floor asserts the off mode
/// costs <= 1% — i.e. a "zero cost when off" regression (say, a lock or
/// clock read sneaking into the disabled check) fails the run.
KernelResult bench_telemetry_off_overhead() {
  constexpr std::size_t kSyms = 1u << 15;
  constexpr int kIters = 64;
  std::mt19937 rng(29);
  std::vector<double> weights(512);
  double w = 1.0;
  for (auto& x : weights) {
    x = w;
    w *= 0.98;
  }
  std::discrete_distribution<int> skew(weights.begin(), weights.end());
  std::vector<std::uint32_t> syms(kSyms);
  for (auto& v : syms) v = 32000 + static_cast<std::uint32_t>(skew(rng));
  telemetry::set_mode(telemetry::Mode::kOff);
  const auto blob = lossless::huffman_compress(syms);
  auto r = ab(
      "telemetry_off", kSyms * sizeof(std::uint32_t) * kIters,
      [&] {
        for (int i = 0; i < kIters; ++i) {
          const auto out = lossless::huffman_decompress(blob);
          g_sink = g_sink + out.size();
        }
      },
      [&] {
        for (int i = 0; i < kIters; ++i) {
          ByteReader br(blob);
          const auto count = static_cast<std::size_t>(br.get_varint());
          const auto table = lossless::huffman_table_deserialize(br.get_blob());
          const auto out = lossless::huffman_decode(table, br.get_blob(), count);
          g_sink = g_sink + out.size();
        }
      });
  r.baseline = "uninstrumented";
  return r;
}

KernelResult bench_arena_vs_heap() {
  constexpr std::size_t kChunk = 1u << 16;  // 64K doubles per scratch buffer
  constexpr int kIters = 2048;
  auto r = ab(
      "arena_alloc", kChunk * sizeof(double) * kIters,
      [&] {
        for (int i = 0; i < kIters; ++i) {
          ArenaScope scope;
          auto s = scope.alloc<double>(kChunk);
          s[0] = 1.0;
          s[kChunk - 1] = 2.0;
          g_sink = g_sink + static_cast<std::uint64_t>(s[0] + s[kChunk - 1]);
        }
      },
      [&] {
        for (int i = 0; i < kIters; ++i) {
          std::vector<double> v(kChunk);
          v[0] = 1.0;
          v[kChunk - 1] = 2.0;
          g_sink = g_sink + static_cast<std::uint64_t>(v[0] + v[kChunk - 1]);
        }
      });
  r.baseline = "heap vector";
  return r;
}

void write_json(const std::vector<KernelResult>& results) {
  std::FILE* f = std::fopen("BENCH_hotpaths.json", "w");
  if (!f) return;
  std::fprintf(f, "{\n  \"bench\": \"micro_hotpaths\",\n  \"rounds\": %d,\n",
               kRounds);
  std::fprintf(f, "  \"kernels\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"seconds\": %.6f, "
                 "\"baseline\": \"%s\", \"baseline_seconds\": %.6f, "
                 "\"speedup\": %.3f, \"mb_per_s\": %.1f}%s\n",
                 r.name.c_str(), r.a_seconds, r.baseline, r.b_seconds,
                 r.speedup(), r.mb_per_s, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_hotpaths.json\n");
}

}  // namespace

int main() {
  std::printf("hot-path kernels, %d alternating rounds each\n", kRounds);
  std::printf("%-16s %12s %12s %9s %10s  %s\n", "kernel", "opt(s)", "base(s)",
              "speedup", "MB/s", "baseline");

  std::vector<KernelResult> results;
  results.push_back(bench_sz_roundtrip());
  results.push_back(bench_scan_range());
  results.push_back(bench_pack_sign_bits());
  results.push_back(bench_huffman_decode());
  results.push_back(bench_crc32());
  results.push_back(bench_lzss_compress());
  results.push_back(bench_lzss_decompress());
  results.push_back(bench_mask_roundtrip());
  results.push_back(bench_arena_vs_heap());
  results.push_back(bench_telemetry_off_overhead());

  bool ok = true;
  for (const auto& r : results) {
    std::printf("%-16s %12.4f %12.4f %8.2fx %10.1f  %s\n", r.name.c_str(),
                r.a_seconds, r.b_seconds, r.speedup(), r.mb_per_s, r.baseline);
    if (r.name == "huffman_decode" && r.speedup() < 4.0) {
      std::printf("FAIL: huffman_decode speedup %.2fx < 4x target\n",
                  r.speedup());
      ok = false;
    }
    if (r.name == "lzss_compress" && r.speedup() < 1.2) {
      std::printf("FAIL: lzss_compress speedup %.2fx < 1.2x target\n",
                  r.speedup());
      ok = false;
    }
    if (r.name == "telemetry_off" && r.speedup() < 0.99) {
      std::printf("FAIL: disabled telemetry costs %.1f%% on huffman "
                  "decode (budget: <= 1%%)\n",
                  100.0 * (1.0 / r.speedup() - 1.0));
      ok = false;
    }
  }
  write_json(results);
  return ok ? 0 : 1;
}
