/// \file fig15_rd_run2.cpp
/// \brief Reproduces Figure 15: rate-distortion on the run-2 datasets
/// (T2, T3, T4) whose finest levels are extremely sparse.
///
/// Paper result: TAC sits clearly top-left of every baseline — the 3D
/// baseline pays enormous up-sampling redundancy when coarse levels
/// dominate (up-sampling a 99.8%-dense coarse level by 2^3 per level gap).

#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace tac;
  bench::print_header(
      "Figure 15: rate-distortion on run2 (T2, T3, T4)\n"
      "paper: TAC dominates all baselines at sparse finest levels");

  // One extra scale step vs run1 keeps the 4-level T4 dataset quick.
  const auto presets = simnyx::table1_presets(/*scale_shift=*/3);
  for (std::size_t i = 4; i < 7; ++i) {  // Run2_T2, T3, T4
    const auto& preset = presets[i];
    const auto ds = simnyx::generate_preset(preset);
    const auto uniform = amr::compose_uniform(ds);
    std::printf("\n--- %s (%zu levels, finest density %.2e, %zu^3 finest) ---\n",
                preset.name.c_str(), ds.num_levels(),
                preset.level_densities[0], ds.finest_dims().nx);
    bench::print_rd_table_header();
    for (const double eb : bench::eb_ladder(1e7, 1e10, 4)) {
      for (const auto method :
           {core::Method::kTac, core::Method::kOneD, core::Method::kZMesh,
            core::Method::kUpsample3D}) {
        const auto p = bench::measure_method(ds, uniform, method, eb);
        bench::print_rd_point(core::to_string(method), p);
      }
    }
  }
  return 0;
}
