/// \file comparator_transform_vs_sz.cpp
/// \brief Reproduces the paper's §2.1 compressor-choice rationale:
/// "SZ typically provides higher compression ratio than ZFP [28, 42]".
///
/// Rate-distortion of the prediction-based (SZ-style) path against the
/// block-transform (ZFP-style) path on the Nyx-like uniform field, at the
/// same verified absolute error bounds. The expectation, per the papers
/// the claim cites, is the SZ-style curve sitting left of (fewer bits
/// than) the transform curve across the sweep on this kind of data.

#include <cstdio>

#include "analysis/metrics.hpp"
#include "bench_util.hpp"
#include "sz/sz.hpp"
#include "zfplike/transform_coder.hpp"

int main() {
  using namespace tac;
  bench::print_header(
      "Comparator (paper §2.1): SZ-style prediction coder vs ZFP-style "
      "transform coder\npaper rationale: SZ gives higher CR than ZFP on "
      "these fields");

  simnyx::GeneratorConfig gc;
  gc.finest_dims = {128, 128, 128};
  gc.level_densities = {0.23, 0.77};
  const auto ds = simnyx::generate_baryon_density(gc);
  const auto uniform = amr::compose_uniform(ds);
  const std::size_t n = uniform.size();

  std::printf("%12s | %10s %10s | %10s %10s | %8s\n", "abs_eb", "sz bpv",
              "sz PSNR", "tc bpv", "tc PSNR", "sz/tc");
  bool sz_wins_tight = true;
  for (const double eb : bench::eb_ladder(1e6, 1e10, 5)) {
    const auto c_sz = sz::compress<double>(
        uniform.span(), uniform.dims(),
        sz::SzConfig{.mode = sz::ErrorBoundMode::kAbsolute,
                     .error_bound = eb});
    const auto r_sz = sz::decompress<double>(c_sz);
    const auto s_sz = analysis::distortion(uniform.span(), r_sz);

    const auto c_tc = zfplike::compress(
        uniform.span(), uniform.dims(),
        zfplike::TransformConfig{.abs_error_bound = eb});
    const auto r_tc = zfplike::decompress(c_tc);
    const auto s_tc = analysis::distortion(uniform.span(), r_tc);

    const double bpv_sz = analysis::bit_rate(n, c_sz.size());
    const double bpv_tc = analysis::bit_rate(n, c_tc.size());
    std::printf("%12.3e | %10.3f %10.2f | %10.3f %10.2f | %8.2f\n", eb,
                bpv_sz, s_sz.psnr, bpv_tc, s_tc.psnr, bpv_sz / bpv_tc);
    if (eb <= 1e8 && bpv_sz > bpv_tc) sz_wins_tight = false;
  }
  std::printf("\nshape check: SZ-style bits <= transform-style bits at "
              "the production bounds (eb <= 1e8, where TAC's experiments "
              "run): %s\n", sz_wins_tight ? "yes" : "NO");
  std::printf("note: at very loose bounds the transform coder's per-block "
              "adaptive step wins — consistent with ZFP's strength at low "
              "rates reported in the literature.\n");
  return 0;
}
