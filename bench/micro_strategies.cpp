/// \file micro_strategies.cpp
/// \brief google-benchmark microbenchmarks of the pre-process strategies:
/// extraction throughput vs occupancy density (the mechanism behind the
/// Figure 13 crossover) and ghost-shell padding cost.

#include <benchmark/benchmark.h>

#include <random>

#include "amr/dataset.hpp"
#include "core/block_grid.hpp"
#include "core/extraction.hpp"
#include "core/gsp.hpp"

namespace {

using namespace tac;

Array3D<std::uint8_t> random_occupancy(Dims3 d, double density,
                                       unsigned seed = 3) {
  std::mt19937 rng(seed);
  std::bernoulli_distribution occupied(density);
  Array3D<std::uint8_t> occ(d);
  for (std::size_t i = 0; i < occ.size(); ++i) occ[i] = occupied(rng) ? 1 : 0;
  return occ;
}

void BM_OpstExtract(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0)) / 100.0;
  const auto occ = random_occupancy({24, 24, 24}, density);
  for (auto _ : state) {
    const auto subs = core::opst_extract(occ);
    benchmark::DoNotOptimize(subs.data());
  }
  state.counters["density"] = density;
}
BENCHMARK(BM_OpstExtract)->Arg(10)->Arg(30)->Arg(50)->Arg(70)->Arg(90)
    ->Unit(benchmark::kMillisecond);

void BM_AkdExtract(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0)) / 100.0;
  const auto occ = random_occupancy({24, 24, 24}, density);
  for (auto _ : state) {
    const auto subs = core::akdtree_extract(occ);
    benchmark::DoNotOptimize(subs.data());
  }
  state.counters["density"] = density;
}
BENCHMARK(BM_AkdExtract)->Arg(10)->Arg(30)->Arg(50)->Arg(70)->Arg(90)
    ->Unit(benchmark::kMillisecond);

void BM_NastExtract(benchmark::State& state) {
  const auto occ = random_occupancy({24, 24, 24}, 0.5);
  for (auto _ : state) {
    const auto subs = core::nast_extract(occ);
    benchmark::DoNotOptimize(subs.data());
  }
}
BENCHMARK(BM_NastExtract)->Unit(benchmark::kMillisecond);

void BM_GspPad(benchmark::State& state) {
  amr::AmrLevel lv({96, 96, 96});
  std::mt19937 rng(9);
  std::bernoulli_distribution valid_block(0.8);
  const core::BlockGrid grid(lv.dims(), 8);
  const Dims3 bd = grid.block_dims();
  for (std::size_t bz = 0; bz < bd.nz; ++bz)
    for (std::size_t by = 0; by < bd.ny; ++by)
      for (std::size_t bx = 0; bx < bd.nx; ++bx) {
        if (!valid_block(rng)) continue;
        const Box3 box = grid.block_box(bx, by, bz);
        for (std::size_t z = box.z0; z < box.z1; ++z)
          for (std::size_t y = box.y0; y < box.y1; ++y)
            for (std::size_t x = box.x0; x < box.x1; ++x) {
              lv.mask(x, y, z) = 1;
              lv.data(x, y, z) = 1.0 + static_cast<double>(x + y + z);
            }
      }
  const auto occ = core::block_occupancy(lv, grid);
  for (auto _ : state) {
    const auto padded = core::gsp_pad(lv, grid, occ);
    benchmark::DoNotOptimize(padded.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lv.data.size() * 8));
}
BENCHMARK(BM_GspPad)->Unit(benchmark::kMillisecond);

void BM_BlockOccupancy(benchmark::State& state) {
  amr::AmrLevel lv({128, 128, 128});
  for (std::size_t i = 0; i < lv.mask.size(); ++i) lv.mask[i] = i % 3 == 0;
  const core::BlockGrid grid(lv.dims(), 8);
  for (auto _ : state) {
    const auto occ = core::block_occupancy(lv, grid);
    benchmark::DoNotOptimize(occ.data());
  }
}
BENCHMARK(BM_BlockOccupancy)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
