/// \file fig18_eb_vs_bitrate.cpp
/// \brief Reproduces Figure 18: bit-rate as a function of the absolute
/// error bound for the fine and coarse levels of the Z2-like dataset.
///
/// Paper result: both curves fall steeply at small bounds and flatten as
/// the bound grows — past a point, trading more error buys almost no
/// bytes, which motivates balancing per-level bounds instead of scaling
/// them uniformly.

#include <cstdio>

#include "bench_util.hpp"
#include "core/extraction.hpp"

namespace {

using namespace tac;

/// Bit-rate of one level compressed alone with TAC's pipeline.
double level_bit_rate(const amr::AmrDataset& single_level, double abs_eb) {
  core::TacConfig cfg;
  cfg.sz.mode = sz::ErrorBoundMode::kAbsolute;
  cfg.sz.error_bound = abs_eb;
  const auto compressed = core::tac_compress(single_level, cfg);
  return analysis::bit_rate(single_level.total_valid(),
                            compressed.bytes.size());
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 18: bit-rate vs absolute error bound, fine & coarse levels "
      "(Z2-like)\npaper: steep fall then flat; flattening means further "
      "error buys no size");

  simnyx::GeneratorConfig gc;
  gc.finest_dims = {128, 128, 128};
  gc.level_densities = {0.63, 0.37};
  const auto ds = simnyx::generate_baryon_density(gc);

  std::vector<amr::AmrLevel> fine_only, coarse_only;
  fine_only.push_back(ds.level(0));
  coarse_only.push_back(ds.level(1));
  const amr::AmrDataset fine("fine", std::move(fine_only));
  const amr::AmrDataset coarse("coarse", std::move(coarse_only));

  std::printf("%12s %16s %16s\n", "abs_eb", "fine bitrate", "coarse bitrate");
  std::vector<double> fine_rates, coarse_rates, ebs;
  for (const double eb : bench::eb_ladder(1e7, 1e11, 7)) {
    const double fr = level_bit_rate(fine, eb);
    const double cr = level_bit_rate(coarse, eb);
    std::printf("%12.3e %16.3f %16.3f\n", eb, fr, cr);
    ebs.push_back(eb);
    fine_rates.push_back(fr);
    coarse_rates.push_back(cr);
  }
  // Flattening check: slope over the last decade much smaller than the
  // slope over the first decade.
  const auto slope = [](const std::vector<double>& r, std::size_t a,
                        std::size_t b) { return r[a] - r[b]; };
  const bool fine_flattens =
      slope(fine_rates, 0, 1) > 2.0 * slope(fine_rates, fine_rates.size() - 2,
                                            fine_rates.size() - 1);
  std::printf("\nshape check: curves flatten at large bounds: %s\n",
              fine_flattens ? "yes" : "NO");
  (void)coarse_rates;
  (void)ebs;
  return 0;
}
