/// \file fig11_strategy_rd.cpp
/// \brief Reproduces Figure 11: rate-distortion of GSP vs OpST vs AKDTree
/// on six levels spanning densities ~23% to ~99.9%.
///
/// Paper result: OpST and AKDTree trace near-identical curves at every
/// density; GSP loses at low density and overtakes around ~60% — the basis
/// for threshold T2.

#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace tac;

/// Rate-distortion of one forced strategy over a whole dataset.
bench::RdPoint run_forced(const amr::AmrDataset& ds,
                          const Array3D<double>& uniform_truth,
                          core::Strategy strategy, double abs_eb) {
  core::TacConfig cfg;
  cfg.sz.mode = sz::ErrorBoundMode::kAbsolute;
  cfg.sz.error_bound = abs_eb;
  cfg.force_strategy = strategy;
  const auto compressed = core::tac_compress(ds, cfg);
  const auto recon = core::decompress_any(compressed.bytes);
  const auto uniform_recon = amr::compose_uniform(recon);

  bench::RdPoint p;
  p.error_bound = abs_eb;
  p.bit_rate =
      analysis::bit_rate(ds.total_valid(), compressed.bytes.size());
  p.psnr =
      analysis::distortion(uniform_truth.span(), uniform_recon.span()).psnr;
  p.cr = analysis::compression_ratio(ds.original_bytes(),
                                     compressed.bytes.size());
  return p;
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 11: GSP vs OpST vs AKDTree rate-distortion across densities\n"
      "paper: OpST ~= AKDTree everywhere; GSP overtakes around d~60%");

  struct Case {
    const char* name;
    double finest_density;
  };
  const Case cases[] = {{"d=23% (z10)", 0.23}, {"d=58% (z5)", 0.58},
                        {"d=63% (z2)", 0.63},  {"d=64% (z3)", 0.64},
                        {"d=85%", 0.85},       {"d=97%", 0.97}};

  for (const auto& c : cases) {
    simnyx::GeneratorConfig gc;
    gc.finest_dims = {64, 64, 64};
    gc.level_densities = {c.finest_density, 1.0 - c.finest_density};
    gc.region_size = 8;
    const auto ds = simnyx::generate_baryon_density(gc);
    const auto uniform = amr::compose_uniform(ds);

    std::printf("\n--- dataset %s ---\n", c.name);
    std::printf("%-9s %12s %10s %10s\n", "strategy", "abs_eb", "bitrate",
                "PSNR(dB)");
    for (const double eb : bench::eb_ladder(3e7, 3e9, 3)) {
      for (const auto strategy :
           {core::Strategy::kOpST, core::Strategy::kAKDTree,
            core::Strategy::kGSP}) {
        const auto p = run_forced(ds, uniform, strategy, eb);
        std::printf("%-9s %12.3e %10.3f %10.2f\n",
                    core::to_string(strategy), p.error_bound, p.bit_rate,
                    p.psnr);
      }
    }
  }
  return 0;
}
