/// \file fig19_power_spectrum.cpp
/// \brief Reproduces Figure 19: power-spectrum error of the 3D baseline,
/// TAC with a uniform error bound (1:1), and TAC with the adaptive
/// per-level bound (3:1 fine:coarse), all at (nearly) the same CR.
///
/// Paper result: at matched compression ratio, TAC(1:1) tracks the 3D
/// baseline, while TAC(3:1) clearly lowers the power-spectrum error,
/// keeping it under the 1% acceptance line deeper into k.

#include <cmath>
#include <cstdio>

#include "analysis/power_spectrum.hpp"
#include "bench_util.hpp"

namespace {

using namespace tac;

struct Run {
  double cr = 0;
  std::vector<double> ps_err;  ///< relative P(k) error per bin
  double max_err_k10 = 0;
};

Run evaluate(const amr::AmrDataset& ds,
             const analysis::PowerSpectrum& ps_truth,
             const std::vector<std::uint8_t>& bytes) {
  const auto recon = core::decompress_any(bytes);
  const auto uniform = amr::compose_uniform(recon);
  const auto ps = analysis::power_spectrum(uniform);
  Run r;
  r.cr = analysis::compression_ratio(ds.original_bytes(), bytes.size());
  r.ps_err = analysis::relative_error(ps_truth, ps);
  r.max_err_k10 = analysis::max_relative_error(ps_truth, ps, 10.0);
  return r;
}

/// Log-space bisection on a scalar error-bound multiplier until the
/// method's CR lands within 3% of `target_cr`.
template <class CompressFn>
std::vector<std::uint8_t> calibrate_to_cr(const amr::AmrDataset& ds,
                                          double target_cr,
                                          const CompressFn& compress_at) {
  double lo = 1e-3, hi = 1e3;  // multiplier range around the base bound
  std::vector<std::uint8_t> best;
  for (int it = 0; it < 12; ++it) {
    const double mid = std::sqrt(lo * hi);
    auto bytes = compress_at(mid);
    const double cr = analysis::compression_ratio(ds.original_bytes(),
                                                  bytes.size());
    best = std::move(bytes);
    if (std::fabs(cr - target_cr) / target_cr < 0.01) break;
    if (cr > target_cr)
      hi = mid;  // too aggressive: lower the bound
    else
      lo = mid;
  }
  return best;
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 19: power-spectrum error at matched CR (Z2-like dataset)\n"
      "paper: TAC(3:1 fine:coarse) < TAC(1:1) ~= 3D baseline; 1% line");

  simnyx::GeneratorConfig gc;
  gc.finest_dims = {64, 64, 64};
  gc.level_densities = {0.63, 0.37};
  gc.region_size = 8;
  const auto ds = simnyx::generate_baryon_density(gc);
  const auto uniform_truth = amr::compose_uniform(ds);
  const auto ps_truth = analysis::power_spectrum(uniform_truth);

  const double base_eb = 1e8;

  // Reference: TAC with uniform bound sets the target CR.
  core::TacConfig uni_cfg;
  uni_cfg.sz.mode = sz::ErrorBoundMode::kAbsolute;
  uni_cfg.sz.error_bound = base_eb;
  const auto tac_uniform = core::tac_compress(ds, uni_cfg);
  const double target_cr = analysis::compression_ratio(
      ds.original_bytes(), tac_uniform.bytes.size());

  const auto base3d = calibrate_to_cr(ds, target_cr, [&](double mult) {
    const sz::SzConfig c{.mode = sz::ErrorBoundMode::kAbsolute,
                         .error_bound = base_eb * mult};
    return core::upsample3d_compress(ds, c).bytes;
  });
  // Centered 3:1 ladder: fine = sqrt(3)*e, coarse = e/sqrt(3), so the
  // calibration trades error between levels instead of only inflating the
  // fine bound.
  const auto tac_adaptive = calibrate_to_cr(ds, target_cr, [&](double mult) {
    core::TacConfig c;
    c.level_error_bounds = core::ratio_error_bounds(
        std::sqrt(3.0) * base_eb * mult, 3.0, ds.num_levels());
    return core::tac_compress(ds, c).bytes;
  });

  const auto r3d = evaluate(ds, ps_truth, base3d);
  const auto r11 = evaluate(ds, ps_truth, tac_uniform.bytes);
  const auto r31 = evaluate(ds, ps_truth, tac_adaptive);

  std::printf("target CR (TAC 1:1): %.1f\n\n", target_cr);
  std::printf("%-12s %8s %18s\n", "method", "CR", "max P(k) err, k<10");
  std::printf("%-12s %8.1f %17.3f%%\n", "3D baseline", r3d.cr,
              100.0 * r3d.max_err_k10);
  std::printf("%-12s %8.1f %17.3f%%\n", "TAC (1:1)", r11.cr,
              100.0 * r11.max_err_k10);
  std::printf("%-12s %8.1f %17.3f%%\n", "TAC (3:1)", r31.cr,
              100.0 * r31.max_err_k10);

  std::printf("\nper-k relative P(k) error (%%), k = 1..12:\n");
  std::printf("%4s %12s %12s %12s\n", "k", "3D", "TAC(1:1)", "TAC(3:1)");
  for (std::size_t i = 0; i < ps_truth.k.size() && ps_truth.k[i] <= 12.0;
       ++i)
    std::printf("%4.0f %12.4f %12.4f %12.4f\n", ps_truth.k[i],
                100.0 * r3d.ps_err[i], 100.0 * r11.ps_err[i],
                100.0 * r31.ps_err[i]);

  std::printf("\nshape check: TAC(3:1) max err <= TAC(1:1) max err: %s\n",
              r31.max_err_k10 <= r11.max_err_k10 ? "yes" : "NO");
  return 0;
}
