/// \file ablation_block_size.cpp
/// \brief Ablation: effect of the unit-block size on TAC's rate,
/// distortion and pre-processing time (DESIGN.md design-choice study).
///
/// Small blocks remove empty space precisely but multiply boundary
/// surface (more poorly-predicted cells, more metadata); large blocks do
/// the opposite. The paper fixes ~16^3 on 512^3 grids; this sweep shows
/// the tradeoff explicitly at our scale.

#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace tac;
  bench::print_header(
      "Ablation: unit block size vs rate/distortion/pre-process time\n"
      "(z10-like dataset, fixed abs eb)");

  simnyx::GeneratorConfig gc;
  gc.finest_dims = {128, 128, 128};
  gc.level_densities = {0.23, 0.77};
  const auto ds = simnyx::generate_baryon_density(gc);
  const auto uniform = amr::compose_uniform(ds);

  std::printf("%-10s %10s %10s %9s %14s\n", "block", "bitrate", "PSNR(dB)",
              "CR", "preproc(ms)");
  for (const std::size_t block : {2u, 4u, 8u, 16u, 32u}) {
    core::TacConfig cfg;
    cfg.sz.mode = sz::ErrorBoundMode::kAbsolute;
    cfg.sz.error_bound = 1e8;
    cfg.block_size = block;
    const auto compressed = core::tac_compress(ds, cfg);
    const auto recon = core::decompress_any(compressed.bytes);
    const auto uniform_recon = amr::compose_uniform(recon);
    const auto stats =
        analysis::distortion(uniform.span(), uniform_recon.span());
    double preproc = 0;
    for (const auto& lr : compressed.report.levels)
      preproc += lr.preprocess_seconds;
    std::printf("%-10zu %10.3f %10.2f %9.1f %14.2f\n", block,
                analysis::bit_rate(ds.total_valid(),
                                   compressed.bytes.size()),
                stats.psnr,
                analysis::compression_ratio(ds.original_bytes(),
                                            compressed.bytes.size()),
                preproc * 1e3);
  }
  return 0;
}
