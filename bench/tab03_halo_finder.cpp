/// \file tab03_halo_finder.cpp
/// \brief Reproduces Table 3: halo-finder quality of the 3D baseline,
/// TAC with a uniform bound (1:1) and TAC with the adaptive bound (2:1
/// fine:coarse) at (nearly) the same compression ratio.
///
/// Paper result (CR ~198.5): relative mass difference and cell-count
/// difference of the biggest halo shrink monotonically from the 3D
/// baseline to TAC(1:1) to TAC(2:1).

#include <cmath>
#include <cstdio>

#include "analysis/halo_finder.hpp"
#include "bench_util.hpp"

namespace {

using namespace tac;

struct Row {
  const char* name;
  double cr = 0;
  analysis::HaloComparison cmp;
};

Row evaluate(const char* name, const amr::AmrDataset& ds,
             const analysis::HaloCatalog& truth,
             const std::vector<std::uint8_t>& bytes) {
  const auto recon = core::decompress_any(bytes);
  const auto uniform = amr::compose_uniform(recon);
  const auto cat = analysis::find_halos(uniform);
  Row r;
  r.name = name;
  r.cr = analysis::compression_ratio(ds.original_bytes(), bytes.size());
  r.cmp = analysis::compare_largest_halo(truth, cat);
  return r;
}

template <class CompressFn>
std::vector<std::uint8_t> calibrate_to_cr(const amr::AmrDataset& ds,
                                          double target_cr,
                                          const CompressFn& compress_at) {
  double lo = 1e-3, hi = 1e3;
  std::vector<std::uint8_t> best;
  for (int it = 0; it < 12; ++it) {
    const double mid = std::sqrt(lo * hi);
    auto bytes = compress_at(mid);
    const double cr =
        analysis::compression_ratio(ds.original_bytes(), bytes.size());
    best = std::move(bytes);
    if (std::fabs(cr - target_cr) / target_cr < 0.01) break;
    if (cr > target_cr)
      hi = mid;
    else
      lo = mid;
  }
  return best;
}

}  // namespace

int main() {
  bench::print_header(
      "Table 3: halo finder at matched CR (Z2-like dataset)\n"
      "paper: mass & cell diffs shrink from 3D -> TAC(1:1) -> TAC(2:1)");

  simnyx::GeneratorConfig gc;
  gc.finest_dims = {128, 128, 128};
  gc.level_densities = {0.63, 0.37};
  gc.region_size = 8;
  const auto ds = simnyx::generate_baryon_density(gc);
  const auto uniform_truth = amr::compose_uniform(ds);
  const auto truth = analysis::find_halos(uniform_truth);
  std::printf("halos in original data: %zu (biggest: %zu cells)\n",
              truth.halos.size(),
              truth.halos.empty() ? 0 : truth.halos.front().cells);

  const double base_eb = 3e8;
  core::TacConfig uni_cfg;
  uni_cfg.sz.mode = sz::ErrorBoundMode::kAbsolute;
  uni_cfg.sz.error_bound = base_eb;
  const auto tac_uniform = core::tac_compress(ds, uni_cfg);
  const double target_cr = analysis::compression_ratio(
      ds.original_bytes(), tac_uniform.bytes.size());

  const auto base3d = calibrate_to_cr(ds, target_cr, [&](double mult) {
    const sz::SzConfig c{.mode = sz::ErrorBoundMode::kAbsolute,
                         .error_bound = base_eb * mult};
    return core::upsample3d_compress(ds, c).bytes;
  });
  // Centered 2:1 ladder: fine = sqrt(2)*e, coarse = e/sqrt(2).
  const auto tac_adaptive = calibrate_to_cr(ds, target_cr, [&](double mult) {
    core::TacConfig c;
    c.level_error_bounds = core::ratio_error_bounds(
        std::sqrt(2.0) * base_eb * mult, 2.0, ds.num_levels());
    return core::tac_compress(ds, c).bytes;
  });

  const Row rows[] = {
      evaluate("3D baseline", ds, truth, base3d),
      evaluate("TAC (1:1)", ds, truth, tac_uniform.bytes),
      evaluate("TAC (2:1)", ds, truth, tac_adaptive),
  };

  std::printf("\n%-12s %8s %16s %16s %8s\n", "method", "CR",
              "rel mass diff", "cell num diff", "halos");
  for (const Row& r : rows)
    std::printf("%-12s %8.1f %16.2e %16.1f %8zu\n", r.name, r.cr,
                r.cmp.rel_mass_diff, r.cmp.cell_count_diff,
                r.cmp.halos_other);
  std::printf("\nshape check: TAC(2:1) mass diff <= 3D baseline mass diff: "
              "%s\n",
              rows[2].cmp.rel_mass_diff <= rows[0].cmp.rel_mass_diff
                  ? "yes"
                  : "NO");
  return 0;
}
