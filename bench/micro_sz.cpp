/// \file micro_sz.cpp
/// \brief google-benchmark microbenchmarks of the SZ-style compressor
/// substrate: compression/decompression throughput vs error bound and the
/// cost of the batched (4D) block mode.

#include <benchmark/benchmark.h>

#include <cmath>
#include <random>
#include <vector>

#include "common/dims.hpp"
#include "sz/sz.hpp"

namespace {

using namespace tac;

std::vector<double> smooth_field(Dims3 d, unsigned seed = 7) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> jitter(-0.02, 0.02);
  std::vector<double> v(d.volume());
  for (std::size_t z = 0; z < d.nz; ++z)
    for (std::size_t y = 0; y < d.ny; ++y)
      for (std::size_t x = 0; x < d.nx; ++x)
        v[d.index(x, y, z)] =
            1e9 * (1.0 + std::sin(0.08 * static_cast<double>(x)) *
                             std::cos(0.05 * static_cast<double>(y + z))) +
            1e6 * jitter(rng);
  return v;
}

void BM_SzCompress3D(benchmark::State& state) {
  const Dims3 d{64, 64, 64};
  const auto v = smooth_field(d);
  const double eb = std::pow(10.0, static_cast<double>(state.range(0)));
  const sz::SzConfig cfg{.mode = sz::ErrorBoundMode::kAbsolute,
                         .error_bound = eb};
  std::size_t compressed = 0;
  for (auto _ : state) {
    const auto bytes = sz::compress<double>(v, d, cfg);
    compressed = bytes.size();
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(v.size() * 8));
  state.counters["CR"] =
      static_cast<double>(v.size() * 8) / static_cast<double>(compressed);
}
BENCHMARK(BM_SzCompress3D)->Arg(6)->Arg(7)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_SzDecompress3D(benchmark::State& state) {
  const Dims3 d{64, 64, 64};
  const auto v = smooth_field(d);
  const sz::SzConfig cfg{.mode = sz::ErrorBoundMode::kAbsolute,
                         .error_bound = 1e7};
  const auto bytes = sz::compress<double>(v, d, cfg);
  for (auto _ : state) {
    const auto back = sz::decompress<double>(bytes);
    benchmark::DoNotOptimize(back.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(v.size() * 8));
}
BENCHMARK(BM_SzDecompress3D)->Unit(benchmark::kMillisecond);

void BM_SzBatchedBlocks(benchmark::State& state) {
  // Same payload split into 8^3-cell blocks: measures the batched-stream
  // overhead that OpST/AKDTree outputs ride on.
  const Dims3 block{8, 8, 8};
  const std::size_t nblocks = static_cast<std::size_t>(state.range(0));
  std::vector<double> v;
  for (std::size_t b = 0; b < nblocks; ++b) {
    const auto f = smooth_field(block, static_cast<unsigned>(b));
    v.insert(v.end(), f.begin(), f.end());
  }
  const sz::SzConfig cfg{.mode = sz::ErrorBoundMode::kAbsolute,
                         .error_bound = 1e7};
  for (auto _ : state) {
    const auto bytes = sz::compress<double>(v, block, cfg, nblocks);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(v.size() * 8));
}
BENCHMARK(BM_SzBatchedBlocks)->Arg(64)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_Sz1D(benchmark::State& state) {
  const Dims3 d{262144, 1, 1};
  const auto v = smooth_field(d);
  const sz::SzConfig cfg{.mode = sz::ErrorBoundMode::kAbsolute,
                         .error_bound = 1e7};
  for (auto _ : state) {
    const auto bytes = sz::compress<double>(v, d, cfg);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(v.size() * 8));
}
BENCHMARK(BM_Sz1D)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
