#include <gtest/gtest.h>

#include <random>

#include "core/adaptive.hpp"
#include "core/baselines.hpp"
#include "core/container.hpp"
#include "core/tac.hpp"
#include "simnyx/generator.hpp"
#include "sz/sz.hpp"

/// Failure-injection tests: corrupted or truncated inputs must raise
/// exceptions — never crash, hang, or silently return wrong data.

namespace tac {
namespace {

amr::AmrDataset small_dataset() {
  simnyx::GeneratorConfig gc;
  gc.finest_dims = {32, 32, 32};
  gc.level_densities = {0.3, 0.7};
  gc.region_size = 8;
  return simnyx::generate_baryon_density(gc);
}

std::vector<std::uint8_t> compress_with(core::Method method,
                                        const amr::AmrDataset& ds) {
  const sz::SzConfig scfg{.error_bound = 1e6};
  core::TacConfig tcfg;
  tcfg.sz = scfg;
  switch (method) {
    case core::Method::kTac: return core::tac_compress(ds, tcfg).bytes;
    case core::Method::kOneD: return core::oned_compress(ds, scfg).bytes;
    case core::Method::kZMesh: return core::zmesh_compress(ds, scfg).bytes;
    case core::Method::kUpsample3D:
      return core::upsample3d_compress(ds, scfg).bytes;
  }
  return {};
}

class TruncationTest : public ::testing::TestWithParam<core::Method> {};

TEST_P(TruncationTest, TruncatedContainersThrowNotCrash) {
  const auto ds = small_dataset();
  const auto bytes = compress_with(GetParam(), ds);
  ASSERT_FALSE(bytes.empty());
  // Sample truncation points across the container, including boundaries.
  const std::size_t n = bytes.size();
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{1}, std::size_t{4}, n / 4, n / 2,
        3 * n / 4, n - 1}) {
    std::vector<std::uint8_t> cutbytes(bytes.begin(),
                                       bytes.begin() + static_cast<long>(cut));
    EXPECT_THROW((void)core::decompress_any(cutbytes), std::exception)
        << "cut at " << cut << " of " << n;
  }
}

TEST_P(TruncationTest, BitFlipsThrowOrStayStructurallySane) {
  const auto ds = small_dataset();
  const auto bytes = compress_with(GetParam(), ds);
  core::CommonHeader header = [&] {
    ByteReader r(bytes);
    return core::read_common_header(r);
  }();
  const auto in_payload = [&](std::size_t pos) {
    for (const auto& e : header.index.entries)
      if (pos >= e.offset && pos < e.offset + e.length) return true;
    return false;
  };
  std::mt19937 rng(7);
  for (int trial = 0; trial < 24; ++trial) {
    auto corrupted = bytes;
    const std::size_t pos = rng() % corrupted.size();
    corrupted[pos] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    if (in_payload(pos)) {
      // v2 payloads are checksummed: corruption there is always reported
      // as a ChecksumError, never a misparse or silently wrong data.
      EXPECT_THROW((void)core::decompress_any(corrupted),
                   core::ChecksumError)
          << "flip at " << pos;
      continue;
    }
    // Header/index corruption: decompression must either throw or
    // produce a structurally valid dataset — never crash or hang.
    try {
      const auto out = core::decompress_any(corrupted);
      EXPECT_EQ(out.num_levels(), ds.num_levels());
      for (std::size_t l = 0; l < out.num_levels(); ++l)
        EXPECT_EQ(out.level(l).dims().volume(),
                  ds.level(l).dims().volume());
    } catch (const std::exception&) {
      // Expected for most corruption sites.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, TruncationTest,
                         ::testing::Values(core::Method::kTac,
                                           core::Method::kOneD,
                                           core::Method::kZMesh,
                                           core::Method::kUpsample3D),
                         [](const auto& info) {
                           return std::string(core::to_string(info.param));
                         });

TEST(Robustness, SzStreamTruncationSweep) {
  const Dims3 d{16, 16, 16};
  std::vector<double> v(d.volume());
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = std::sin(0.1 * static_cast<double>(i));
  const auto bytes =
      sz::compress<double>(v, d, sz::SzConfig{.error_bound = 1e-3});
  for (std::size_t cut = 0; cut < bytes.size(); cut += 7) {
    std::vector<std::uint8_t> cutbytes(bytes.begin(),
                                       bytes.begin() + static_cast<long>(cut));
    EXPECT_THROW((void)sz::decompress<double>(cutbytes), std::exception);
  }
}

TEST(Robustness, EmptyInputThrows) {
  EXPECT_THROW((void)core::decompress_any({}), std::exception);
  EXPECT_THROW((void)sz::decompress<double>({}), std::exception);
}

TEST(Robustness, GarbageInputThrows) {
  std::mt19937 rng(11);
  std::vector<std::uint8_t> garbage(4096);
  for (auto& b : garbage) b = static_cast<std::uint8_t>(rng());
  EXPECT_THROW((void)core::decompress_any(garbage), std::exception);
}

TEST(Robustness, SingleCellLevels) {
  // Degenerate geometry: a 2-level dataset whose coarse level is 1^3.
  amr::AmrLevel fine({2, 2, 2});
  amr::AmrLevel coarse({1, 1, 1});
  for (std::size_t i = 0; i < 8; ++i) {
    fine.mask[i] = 1;
    fine.data[i] = static_cast<double>(i) + 1.0;
  }
  const amr::AmrDataset ds("tiny", {std::move(fine), std::move(coarse)});
  core::TacConfig cfg;
  cfg.sz.error_bound = 0.1;
  const auto compressed = core::tac_compress(ds, cfg);
  const auto back = core::decompress_any(compressed.bytes);
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_NEAR(back.level(0).data[i], ds.level(0).data[i], 0.1);
}

TEST(Robustness, HugeBlockSizeClampsGracefully) {
  const auto ds = small_dataset();
  core::TacConfig cfg;
  cfg.sz.error_bound = 1e6;
  cfg.block_size = 1024;  // bigger than the level: one block per level
  const auto compressed = core::tac_compress(ds, cfg);
  const auto back = core::decompress_any(compressed.bytes);
  EXPECT_EQ(back.num_levels(), ds.num_levels());
}

TEST(Robustness, ZeroBlockSizeRejected) {
  const auto ds = small_dataset();
  core::TacConfig cfg;
  cfg.block_size = 0;
  EXPECT_THROW((void)core::tac_compress(ds, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace tac
