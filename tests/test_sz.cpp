#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "sz/predictor.hpp"
#include "sz/quantizer.hpp"
#include "sz/sz.hpp"

namespace tac::sz {
namespace {

template <class T>
void expect_bounded(std::span<const T> orig, std::span<const T> recon,
                    double eb) {
  ASSERT_EQ(orig.size(), recon.size());
  double max_err = 0;
  for (std::size_t i = 0; i < orig.size(); ++i) {
    if (!std::isfinite(static_cast<double>(orig[i]))) {
      // Non-finite values round-trip bitwise through the outlier path.
      EXPECT_EQ(std::memcmp(&orig[i], &recon[i], sizeof(T)), 0);
      continue;
    }
    max_err = std::max(max_err, std::fabs(static_cast<double>(orig[i]) -
                                          static_cast<double>(recon[i])));
  }
  EXPECT_LE(max_err, eb) << "error bound violated";
}

std::vector<double> smooth_field(Dims3 d, unsigned seed = 11) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> jitter(-0.01, 0.01);
  std::vector<double> v(d.volume());
  for (std::size_t z = 0; z < d.nz; ++z)
    for (std::size_t y = 0; y < d.ny; ++y)
      for (std::size_t x = 0; x < d.nx; ++x)
        v[d.index(x, y, z)] =
            std::sin(0.2 * static_cast<double>(x)) *
                std::cos(0.15 * static_cast<double>(y)) *
                std::sin(0.1 * static_cast<double>(z) + 0.5) +
            jitter(rng);
  return v;
}

TEST(Quantizer, ExactHitProducesCenterCode) {
  const auto r = quantize(5.0, 5.0, 0.1, 512);
  EXPECT_FALSE(r.outlier);
  EXPECT_EQ(r.code, 512u);
  EXPECT_DOUBLE_EQ(r.reconstructed, 5.0);
}

TEST(Quantizer, ReconstructionWithinBound) {
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> vals(-100, 100);
  for (int i = 0; i < 10000; ++i) {
    const double v = vals(rng);
    const double p = vals(rng);
    const double eb = 0.05;
    const auto r = quantize(v, p, eb, 1u << 15);
    if (!r.outlier) {
      EXPECT_LE(std::fabs(r.reconstructed - v), eb);
      EXPECT_DOUBLE_EQ(dequantize(r.code, p, eb, 1u << 15), r.reconstructed);
    }
  }
}

TEST(Quantizer, FarResidualBecomesOutlier) {
  const auto r = quantize(1e9, 0.0, 1e-3, 256);
  EXPECT_TRUE(r.outlier);
}

TEST(Quantizer, NanIsOutlier) {
  const auto r =
      quantize(std::numeric_limits<double>::quiet_NaN(), 0.0, 0.1, 256);
  EXPECT_TRUE(r.outlier);
}

TEST(Predictor, LinearFieldPredictedExactly) {
  // Order-1 Lorenzo annihilates affine fields away from the boundary.
  const Dims3 d{8, 8, 8};
  std::vector<double> v(d.volume());
  for (std::size_t z = 0; z < d.nz; ++z)
    for (std::size_t y = 0; y < d.ny; ++y)
      for (std::size_t x = 0; x < d.nx; ++x)
        v[d.index(x, y, z)] = 2.0 * static_cast<double>(x) -
                              3.0 * static_cast<double>(y) +
                              0.5 * static_cast<double>(z) + 7.0;
  const ReconView<double> view{v.data(), d};
  for (std::size_t z = 1; z < d.nz; ++z)
    for (std::size_t y = 1; y < d.ny; ++y)
      for (std::size_t x = 1; x < d.nx; ++x)
        EXPECT_NEAR(lorenzo_predict(view, x, y, z), v[d.index(x, y, z)],
                    1e-9);
}

TEST(Predictor, BoundaryReducesToLowerDim) {
  const Dims3 d{4, 4, 4};
  std::vector<double> v(d.volume(), 0.0);
  v[d.index(0, 0, 0)] = 3.0;
  const ReconView<double> view{v.data(), d};
  // At (1,0,0) only the x-1 term survives: 1D Lorenzo.
  EXPECT_DOUBLE_EQ(lorenzo_predict(view, 1, 0, 0), 3.0);
  // At origin everything is zero-extended.
  EXPECT_DOUBLE_EQ(lorenzo_predict(view, 0, 0, 0), 0.0);
}

TEST(Sz, RoundTrip3DWithinBound) {
  const Dims3 d{32, 32, 32};
  const auto v = smooth_field(d);
  const SzConfig cfg{.mode = ErrorBoundMode::kAbsolute, .error_bound = 1e-3};
  const auto c = compress<double>(v, d, cfg);
  const auto back = decompress<double>(c);
  expect_bounded<double>(v, back, 1e-3);
}

TEST(Sz, SmoothDataCompressesWell) {
  const Dims3 d{64, 64, 64};
  const auto v = smooth_field(d);
  const SzConfig cfg{.mode = ErrorBoundMode::kAbsolute, .error_bound = 1e-2};
  const auto c = compress<double>(v, d, cfg);
  const double cr = static_cast<double>(v.size() * sizeof(double)) /
                    static_cast<double>(c.size());
  EXPECT_GT(cr, 10.0);
}

TEST(Sz, RelativeModeScalesWithRange) {
  const Dims3 d{16, 16, 16};
  std::vector<double> v = smooth_field(d);
  for (auto& x : v) x *= 1e9;  // range ~2e9
  const SzConfig cfg{.mode = ErrorBoundMode::kRelative, .error_bound = 1e-4};
  const auto c = compress<double>(v, d, cfg);
  const auto info = peek(c);
  EXPECT_NEAR(info.abs_error_bound, 1e-4 * info.value_range, 1e-6);
  expect_bounded<double>(v, decompress<double>(c), info.abs_error_bound);
}

TEST(Sz, ConstantArrayIsTiny) {
  const Dims3 d{64, 64, 64};
  const std::vector<double> v(d.volume(), 4.25);
  const SzConfig cfg{.error_bound = 1e-6};
  const auto c = compress<double>(v, d, cfg);
  EXPECT_LT(c.size(), 128u);
  const auto back = decompress<double>(c);
  for (const auto x : back) EXPECT_EQ(x, 4.25);
  EXPECT_TRUE(peek(c).constant);
}

TEST(Sz, FloatTypeRoundTrip) {
  const Dims3 d{24, 24, 24};
  const auto vd = smooth_field(d);
  std::vector<float> v(vd.begin(), vd.end());
  const SzConfig cfg{.error_bound = 1e-3};
  const auto c = compress<float>(v, d, cfg);
  expect_bounded<float>(v, decompress<float>(c), 1e-3);
}

TEST(Sz, TypeMismatchThrows) {
  const Dims3 d{8, 8, 8};
  const auto v = smooth_field(d);
  const auto c = compress<double>(v, d, SzConfig{.error_bound = 1e-3});
  EXPECT_THROW((void)decompress<float>(c), std::runtime_error);
}

TEST(Sz, NonFiniteValuesRoundTripExactly) {
  const Dims3 d{8, 8, 1};
  std::vector<double> v(d.volume(), 1.0);
  v[3] = std::numeric_limits<double>::quiet_NaN();
  v[17] = std::numeric_limits<double>::infinity();
  v[31] = -std::numeric_limits<double>::infinity();
  const SzConfig cfg{.error_bound = 0.1};
  const auto back = decompress<double>(compress<double>(v, d, cfg));
  EXPECT_TRUE(std::isnan(back[3]));
  EXPECT_EQ(back[17], std::numeric_limits<double>::infinity());
  EXPECT_EQ(back[31], -std::numeric_limits<double>::infinity());
  expect_bounded<double>(v, back, 0.1);
}

TEST(Sz, BatchedBlocksRoundTrip) {
  const Dims3 block{8, 8, 8};
  const std::size_t nblocks = 17;
  std::vector<double> v;
  for (std::size_t b = 0; b < nblocks; ++b) {
    auto f = smooth_field(block, static_cast<unsigned>(100 + b));
    for (auto& x : f) x += static_cast<double>(b);
    v.insert(v.end(), f.begin(), f.end());
  }
  const SzConfig cfg{.error_bound = 1e-3};
  const auto c = compress<double>(v, block, cfg, nblocks);
  const auto back = decompress<double>(c);
  expect_bounded<double>(v, back, 1e-3);
}

TEST(Sz, BatchedPredictionDoesNotCrossBlocks) {
  // Two blocks with wildly different magnitudes: if prediction leaked
  // across the boundary the second block's first value would quantize
  // against ~1e9 garbage. Bound must still hold either way; this guards
  // the layout contract.
  const Dims3 block{4, 4, 4};
  std::vector<double> v(block.volume() * 2, 0.0);
  for (std::size_t i = 0; i < block.volume(); ++i) v[i] = 1e9;
  const SzConfig cfg{.error_bound = 1.0};
  const auto back =
      decompress<double>(compress<double>(v, block, cfg, 2));
  expect_bounded<double>(v, back, 1.0);
}

TEST(Sz, ZeroAbsoluteBoundRejected) {
  const Dims3 d{4, 4, 4};
  const std::vector<double> v(d.volume(), 1.0);
  SzConfig cfg{.mode = ErrorBoundMode::kAbsolute, .error_bound = 0.0};
  EXPECT_THROW((void)compress<double>(v, d, cfg), std::invalid_argument);
}

TEST(Sz, RelativeBoundOnConstantRangeIsLossless) {
  // Range 0 but values not bitwise identical (0.0 vs -0.0): falls back to
  // the all-outlier lossless path.
  const Dims3 d{4, 4, 1};
  std::vector<double> v(d.volume(), 0.0);
  v[5] = -0.0;
  SzConfig cfg{.mode = ErrorBoundMode::kRelative, .error_bound = 1e-3};
  const auto back = decompress<double>(compress<double>(v, d, cfg));
  EXPECT_EQ(std::signbit(back[5]), true);
}

TEST(Sz, SizeMismatchThrows) {
  const std::vector<double> v(10, 1.0);
  EXPECT_THROW(
      (void)compress<double>(v, Dims3{4, 4, 4}, SzConfig{.error_bound = 1}),
      std::invalid_argument);
}

TEST(Sz, DeterministicOutput) {
  const Dims3 d{16, 16, 16};
  const auto v = smooth_field(d);
  const SzConfig cfg{.error_bound = 1e-4};
  EXPECT_EQ(compress<double>(v, d, cfg), compress<double>(v, d, cfg));
}

TEST(Sz, PeekReportsGeometry) {
  const Dims3 d{16, 8, 4};
  const auto v = smooth_field(d);
  const auto c = compress<double>(v, d, SzConfig{.error_bound = 1e-3}, 1);
  const auto info = peek(c);
  EXPECT_EQ(info.block_dims, d);
  EXPECT_EQ(info.nblocks, 1u);
  EXPECT_EQ(info.scalar_size, sizeof(double));
  EXPECT_DOUBLE_EQ(info.abs_error_bound, 1e-3);
}

TEST(Sz, TighterBoundCostsMoreBits) {
  const Dims3 d{32, 32, 32};
  const auto v = smooth_field(d);
  const auto loose =
      compress<double>(v, d, SzConfig{.error_bound = 1e-2});
  const auto tight =
      compress<double>(v, d, SzConfig{.error_bound = 1e-5});
  EXPECT_LT(loose.size(), tight.size());
}

struct RoundTripCase {
  Dims3 dims;
  double eb;
  unsigned seed;
};

class SzRoundTripTest : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(SzRoundTripTest, ErrorBoundHolds) {
  const auto& p = GetParam();
  std::mt19937 rng(p.seed);
  std::uniform_real_distribution<double> noise(-1, 1);
  std::vector<double> v(p.dims.volume());
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = std::sin(0.05 * static_cast<double>(i)) + 0.3 * noise(rng);
  const SzConfig cfg{.mode = ErrorBoundMode::kAbsolute, .error_bound = p.eb};
  const auto back = decompress<double>(compress<double>(v, p.dims, cfg));
  expect_bounded<double>(v, back, p.eb);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndBounds, SzRoundTripTest,
    ::testing::Values(RoundTripCase{{128, 1, 1}, 1e-3, 1},    // 1D
                      RoundTripCase{{64, 64, 1}, 1e-3, 2},    // 2D
                      RoundTripCase{{16, 16, 16}, 1e-3, 3},   // 3D
                      RoundTripCase{{1, 1, 1}, 1e-3, 4},      // single cell
                      RoundTripCase{{5, 7, 3}, 1e-2, 5},      // odd dims
                      RoundTripCase{{16, 16, 16}, 1e-6, 6},   // tight
                      RoundTripCase{{16, 16, 16}, 10.0, 7},   // loose
                      RoundTripCase{{33, 17, 9}, 1e-4, 8}));

}  // namespace
}  // namespace tac::sz
