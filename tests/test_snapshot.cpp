#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "amr/snapshot.hpp"
#include "analysis/slice_image.hpp"
#include "core/tac.hpp"
#include "simnyx/generator.hpp"

namespace tac {
namespace {

amr::Snapshot make_snapshot() {
  simnyx::GeneratorConfig gc;
  gc.finest_dims = {32, 32, 32};
  gc.level_densities = {0.3, 0.7};
  gc.region_size = 8;
  const auto fields = simnyx::generate_fields(gc);
  amr::Snapshot s;
  s.fields = {fields.baryon_density, fields.temperature,
              fields.velocity_x};
  return s;
}

TEST(Snapshot, SharedStructureValidates) {
  const auto s = make_snapshot();
  EXPECT_EQ(s.validate_shared_structure(), "");
}

TEST(Snapshot, MismatchedMaskDetected) {
  auto s = make_snapshot();
  s.fields[1].level(0).mask(0, 0, 0) ^= 1;
  EXPECT_NE(s.validate_shared_structure(), "");
}

TEST(Snapshot, EmptySnapshotRejected) {
  const amr::Snapshot s;
  EXPECT_NE(s.validate_shared_structure(), "");
}

TEST(Snapshot, BytesRoundTrip) {
  const auto s = make_snapshot();
  const auto bytes = amr::snapshot_to_bytes(s);
  const auto back = amr::snapshot_from_bytes(bytes);
  ASSERT_EQ(back.fields.size(), s.fields.size());
  for (std::size_t f = 0; f < s.fields.size(); ++f) {
    EXPECT_EQ(back.fields[f].field_name(), s.fields[f].field_name());
    for (std::size_t l = 0; l < s.fields[f].num_levels(); ++l)
      EXPECT_EQ(back.fields[f].level(l).data, s.fields[f].level(l).data);
  }
}

TEST(Snapshot, FileRoundTrip) {
  const auto s = make_snapshot();
  const std::string path = ::testing::TempDir() + "/tac_snapshot_test.bin";
  amr::save_snapshot(path, s);
  const auto back = amr::load_snapshot(path);
  EXPECT_EQ(back.fields.size(), s.fields.size());
  std::remove(path.c_str());
}

TEST(Snapshot, CompressedRoundTripWithinBound) {
  const auto s = make_snapshot();
  core::TacConfig cfg;
  cfg.sz.mode = sz::ErrorBoundMode::kRelative;
  cfg.sz.error_bound = 1e-4;
  const auto bytes = core::compress_snapshot(s, cfg);
  const auto back = core::decompress_snapshot(bytes);
  ASSERT_EQ(back.fields.size(), s.fields.size());
  for (std::size_t f = 0; f < s.fields.size(); ++f) {
    for (std::size_t l = 0; l < s.fields[f].num_levels(); ++l) {
      const auto& ol = s.fields[f].level(l);
      const auto& rl = back.fields[f].level(l);
      const auto [lo, hi] = ol.valid_range();
      const double eb = 1e-4 * (hi - lo);
      for (std::size_t i = 0; i < ol.data.size(); ++i) {
        if (!ol.mask[i]) continue;
        EXPECT_LE(std::fabs(ol.data[i] - rl.data[i]), eb * (1 + 1e-12))
            << "field " << f << " level " << l;
      }
    }
  }
}

TEST(Snapshot, CompressedPreservesFieldNames) {
  const auto s = make_snapshot();
  core::TacConfig cfg;
  cfg.sz.error_bound = 1e6;
  const auto back =
      core::decompress_snapshot(core::compress_snapshot(s, cfg));
  EXPECT_EQ(back.fields[0].field_name(), "baryon_density");
  EXPECT_EQ(back.fields[1].field_name(), "temperature");
  EXPECT_EQ(back.fields[2].field_name(), "velocity_x");
}

TEST(Snapshot, CorruptContainerThrows) {
  const auto s = make_snapshot();
  core::TacConfig cfg;
  cfg.sz.error_bound = 1e6;
  auto bytes = core::compress_snapshot(s, cfg);
  bytes[0] ^= 0xFF;
  EXPECT_THROW((void)core::decompress_snapshot(bytes), std::runtime_error);
}

TEST(SliceImage, WritesValidPgm) {
  Array3D<double> f({16, 8, 4});
  for (std::size_t i = 0; i < f.size(); ++i)
    f[i] = static_cast<double>(i % 97);
  const std::string path = ::testing::TempDir() + "/tac_slice.pgm";
  analysis::write_slice_pgm(path, f, {.z = 2});
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string magic;
  in >> magic;
  EXPECT_EQ(magic, "P5");
  std::size_t w = 0, h = 0, maxval = 0;
  in >> w >> h >> maxval;
  EXPECT_EQ(w, 16u);
  EXPECT_EQ(h, 8u);
  EXPECT_EQ(maxval, 255u);
  std::remove(path.c_str());
}

TEST(SliceImage, ErrorSliceHighlightsDifference) {
  Array3D<double> a({8, 8, 2}, 1.0);
  Array3D<double> b = a;
  b(3, 4, 0) = 5.0;  // one bright pixel on slice 0
  const std::string path = ::testing::TempDir() + "/tac_err_slice.pgm";
  analysis::write_error_slice_pgm(path, a, b, {.z = 0});
  std::ifstream in(path, std::ios::binary);
  std::string line;
  std::getline(in, line);  // P5
  std::getline(in, line);  // dims
  std::getline(in, line);  // maxval
  std::vector<unsigned char> pixels(64);
  in.read(reinterpret_cast<char*>(pixels.data()), 64);
  EXPECT_EQ(pixels[4 * 8 + 3], 255);  // the differing cell is brightest
  EXPECT_EQ(pixels[0], 0);
  std::remove(path.c_str());
}

TEST(SliceImage, RejectsBadSliceIndex) {
  Array3D<double> f({4, 4, 4});
  EXPECT_THROW(
      analysis::write_slice_pgm(::testing::TempDir() + "/x.pgm", f,
                                {.z = 10}),
      std::invalid_argument);
}

TEST(SliceImage, RejectsMismatchedExtents) {
  Array3D<double> a({4, 4, 4});
  Array3D<double> b({8, 4, 4});
  EXPECT_THROW(analysis::write_error_slice_pgm(
                   ::testing::TempDir() + "/x.pgm", a, b, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace tac
