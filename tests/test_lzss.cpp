#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "lossless/codec.hpp"
#include "lossless/lzss.hpp"

namespace tac::lossless {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(Lzss, EmptyInput) {
  const auto c = lzss_compress({});
  EXPECT_TRUE(lzss_decompress(c).empty());
}

TEST(Lzss, SingleByte) {
  const std::vector<std::uint8_t> in = {0x5A};
  EXPECT_EQ(lzss_decompress(lzss_compress(in)), in);
}

TEST(Lzss, ShortInputBelowMinMatch) {
  const auto in = bytes_of("abc");
  EXPECT_EQ(lzss_decompress(lzss_compress(in)), in);
}

TEST(Lzss, ConstantRunCompressesHard) {
  const std::vector<std::uint8_t> in(100000, 0);
  const auto c = lzss_compress(in);
  EXPECT_EQ(lzss_decompress(c), in);
  EXPECT_LT(c.size(), in.size() / 50);
}

TEST(Lzss, OverlappingMatchSelfCopy) {
  // "ababab..." forces matches with offset < length.
  std::vector<std::uint8_t> in;
  for (int i = 0; i < 5000; ++i) in.push_back(i % 2 ? 'a' : 'b');
  const auto c = lzss_compress(in);
  EXPECT_EQ(lzss_decompress(c), in);
  EXPECT_LT(c.size(), in.size() / 10);
}

TEST(Lzss, RepeatedPhrase) {
  std::vector<std::uint8_t> in;
  const auto phrase = bytes_of("the quick brown fox jumps over the lazy dog ");
  for (int i = 0; i < 500; ++i)
    in.insert(in.end(), phrase.begin(), phrase.end());
  const auto c = lzss_compress(in);
  EXPECT_EQ(lzss_decompress(c), in);
  EXPECT_LT(c.size(), in.size() / 5);
}

TEST(Lzss, IncompressibleRandomRoundTrips) {
  std::mt19937 rng(7);
  std::vector<std::uint8_t> in(65536);
  for (auto& b : in) b = static_cast<std::uint8_t>(rng());
  const auto c = lzss_compress(in);
  EXPECT_EQ(lzss_decompress(c), in);
  // Worst case ~9/8 of input plus header.
  EXPECT_LT(c.size(), in.size() * 9 / 8 + 16);
}

TEST(Lzss, MatchBeyondWindowNotUsed) {
  // A phrase recurring past the 64 KiB window must still decode correctly
  // (as literals or nearer matches).
  std::mt19937 rng(8);
  std::vector<std::uint8_t> in;
  const auto phrase = bytes_of("unique-marker-phrase-0123456789");
  in.insert(in.end(), phrase.begin(), phrase.end());
  for (int i = 0; i < 70000; ++i) in.push_back(static_cast<std::uint8_t>(rng()));
  in.insert(in.end(), phrase.begin(), phrase.end());
  EXPECT_EQ(lzss_decompress(lzss_compress(in)), in);
}

TEST(Lzss, TruncatedStreamThrows) {
  const std::vector<std::uint8_t> in(1000, 'x');
  auto c = lzss_compress(in);
  c.resize(c.size() / 2);
  EXPECT_THROW((void)lzss_decompress(c), std::exception);
}

TEST(Lzss, ChainCapStillCorrect) {
  // Tiny chain cap degrades ratio, never correctness.
  std::vector<std::uint8_t> in;
  for (int i = 0; i < 20000; ++i) in.push_back(static_cast<std::uint8_t>(i % 7));
  const LzssConfig cfg{.max_chain = 1};
  const auto c = lzss_compress(in, cfg);
  EXPECT_EQ(lzss_decompress(c), in);
}

class LzssSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LzssSizeTest, MixedContentRoundTrip) {
  const std::size_t n = GetParam();
  std::mt19937 rng(static_cast<unsigned>(n));
  std::vector<std::uint8_t> in(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Alternate compressible runs and noise.
    in[i] = (i / 512) % 2 ? static_cast<std::uint8_t>(rng())
                          : static_cast<std::uint8_t>(i / 64);
  }
  EXPECT_EQ(lzss_decompress(lzss_compress(in)), in);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LzssSizeTest,
                         ::testing::Values(0, 1, 3, 4, 5, 255, 256, 4095,
                                           65535, 65536, 65537, 300000));

TEST(Codec, StoredFallbackForIncompressible) {
  std::mt19937 rng(9);
  std::vector<std::uint8_t> in(4096);
  for (auto& b : in) b = static_cast<std::uint8_t>(rng());
  const auto c = compress(in);
  EXPECT_EQ(decompress(c), in);
  EXPECT_LE(c.size(), in.size() + 16);  // stored block overhead only
}

TEST(Codec, CompressiblePayloadShrinks) {
  const std::vector<std::uint8_t> in(50000, 7);
  const auto c = compress(in);
  EXPECT_EQ(decompress(c), in);
  EXPECT_LT(c.size(), 2000u);
}

TEST(Codec, EmptyPayload) {
  const auto c = compress({});
  EXPECT_TRUE(decompress(c).empty());
}

TEST(Codec, UnknownMethodByteThrows) {
  std::vector<std::uint8_t> bogus = {0xFF, 0x00};
  EXPECT_THROW((void)decompress(bogus), std::runtime_error);
}

}  // namespace
}  // namespace tac::lossless
