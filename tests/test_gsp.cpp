#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/block_grid.hpp"
#include "core/gsp.hpp"
#include "sz/sz.hpp"

namespace tac::core {
namespace {

/// Level with the left half valid at a constant value and the right half
/// empty; block size 4.
amr::AmrLevel half_level(double value = 5.0) {
  amr::AmrLevel lv({16, 16, 16});
  for (std::size_t z = 0; z < 16; ++z)
    for (std::size_t y = 0; y < 16; ++y)
      for (std::size_t x = 0; x < 8; ++x) {
        lv.mask(x, y, z) = 1;
        lv.data(x, y, z) = value;
      }
  return lv;
}

TEST(Gsp, PadsAdjacentEmptyBlockWithNeighbourBoundary) {
  const auto lv = half_level(5.0);
  const BlockGrid grid(lv.dims(), 4);
  const auto occ = block_occupancy(lv, grid);
  const auto padded = gsp_pad(lv, grid, occ);
  // Block column x in [8,12) touches the valid half: padded with 5.0.
  EXPECT_DOUBLE_EQ(padded(9, 5, 5), 5.0);
  // Far column x in [12,16) has no non-empty neighbour: stays zero.
  EXPECT_DOUBLE_EQ(padded(14, 5, 5), 0.0);
  // Valid data untouched.
  EXPECT_DOUBLE_EQ(padded(3, 3, 3), 5.0);
}

TEST(Gsp, AveragesMultipleNeighbours) {
  // Empty block sandwiched between value-2 (left) and value-6 (right)
  // blocks: padding = mean of the two boundary slices = 4.
  amr::AmrLevel lv({12, 4, 4});
  const BlockGrid grid(lv.dims(), 4);
  for (std::size_t z = 0; z < 4; ++z)
    for (std::size_t y = 0; y < 4; ++y) {
      for (std::size_t x = 0; x < 4; ++x) {
        lv.mask(x, y, z) = 1;
        lv.data(x, y, z) = 2.0;
      }
      for (std::size_t x = 8; x < 12; ++x) {
        lv.mask(x, y, z) = 1;
        lv.data(x, y, z) = 6.0;
      }
    }
  const auto occ = block_occupancy(lv, grid);
  const auto padded = gsp_pad(lv, grid, occ);
  EXPECT_DOUBLE_EQ(padded(5, 2, 2), 4.0);
}

TEST(Gsp, UsesOnlyBoundarySlice) {
  // Neighbour block has 7 in its facing slice and 100 elsewhere: padding
  // must be 7, not a blend with the interior.
  amr::AmrLevel lv({8, 4, 4});
  const BlockGrid grid(lv.dims(), 4);
  for (std::size_t z = 0; z < 4; ++z)
    for (std::size_t y = 0; y < 4; ++y)
      for (std::size_t x = 0; x < 4; ++x) {
        lv.mask(x, y, z) = 1;
        lv.data(x, y, z) = (x == 3) ? 7.0 : 100.0;
      }
  const auto occ = block_occupancy(lv, grid);
  const auto padded = gsp_pad(lv, grid, occ);
  EXPECT_DOUBLE_EQ(padded(5, 1, 1), 7.0);
}

TEST(Gsp, SkipsInvalidCellsInBoundarySlice) {
  // Facing slice is half valid: only valid cells contribute.
  amr::AmrLevel lv({8, 4, 4});
  const BlockGrid grid(lv.dims(), 4);
  for (std::size_t z = 0; z < 4; ++z)
    for (std::size_t y = 0; y < 4; ++y)
      for (std::size_t x = 0; x < 4; ++x) {
        const bool valid = !(x == 3 && y < 2);
        lv.mask(x, y, z) = valid ? 1 : 0;
        lv.data(x, y, z) = valid ? 9.0 : 0.0;
      }
  const auto occ = block_occupancy(lv, grid);
  const auto padded = gsp_pad(lv, grid, occ);
  EXPECT_DOUBLE_EQ(padded(6, 0, 0), 9.0);
}

TEST(Gsp, FullyValidLevelUnchanged) {
  amr::AmrLevel lv({8, 8, 8});
  std::mt19937 rng(2);
  std::uniform_real_distribution<double> u(1, 2);
  for (std::size_t i = 0; i < lv.mask.size(); ++i) {
    lv.mask[i] = 1;
    lv.data[i] = u(rng);
  }
  const BlockGrid grid(lv.dims(), 4);
  const auto occ = block_occupancy(lv, grid);
  EXPECT_EQ(gsp_pad(lv, grid, occ), lv.data);
}

TEST(Gsp, CompressesBetterThanZeroFillOnDenseData) {
  // The mechanism behind Figure 12: scattered zero blocks inside dense
  // smooth data poison the Lorenzo predictor of every cell that follows
  // them in scan order, inflating quantization codes. Ghost-shell values
  // keep the field locally smooth, so the same error bound costs fewer
  // bits.
  amr::AmrLevel lv({32, 32, 32});
  std::size_t block_index = 0;
  for (std::size_t bz = 0; bz < 8; ++bz)
    for (std::size_t by = 0; by < 8; ++by)
      for (std::size_t bx = 0; bx < 8; ++bx, ++block_index) {
        if (block_index % 5 == 0) continue;  // ~20% empty blocks, scattered
        for (std::size_t dz = 0; dz < 4; ++dz)
          for (std::size_t dy = 0; dy < 4; ++dy)
            for (std::size_t dx = 0; dx < 4; ++dx) {
              const std::size_t x = bx * 4 + dx;
              const std::size_t y = by * 4 + dy;
              const std::size_t z = bz * 4 + dz;
              lv.mask(x, y, z) = 1;
              lv.data(x, y, z) =
                  1000.0 + std::sin(0.2 * static_cast<double>(x)) * 40.0 +
                  std::cos(0.15 * static_cast<double>(y + z)) * 40.0;
            }
      }
  const BlockGrid grid(lv.dims(), 4);
  const auto occ = block_occupancy(lv, grid);
  const auto gsp = gsp_pad(lv, grid, occ);
  const auto zf = zf_pad(lv);
  const sz::SzConfig cfg{.error_bound = 0.5};
  const auto gsp_bytes = sz::compress<double>(gsp.span(), gsp.dims(), cfg);
  const auto zf_bytes = sz::compress<double>(zf.span(), zf.dims(), cfg);
  EXPECT_LT(gsp_bytes.size(), zf_bytes.size());
}

TEST(Zf, ReturnsRawGrid) {
  const auto lv = half_level(3.0);
  EXPECT_EQ(zf_pad(lv), lv.data);
}

}  // namespace
}  // namespace tac::core
