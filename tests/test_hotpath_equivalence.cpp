/// \file test_hotpath_equivalence.cpp
/// \brief The SIMD/scalar contract: every dispatched hot path must produce
/// byte-identical results at every size, including the awkward ones
/// (empty, sub-vector-width, vector width +/- 1, page-ish). Also pins the
/// CRC32 known-answer vector, the Huffman up-front truncation check, and
/// the arena's steady-state no-new-blocks guarantee.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "common/arena.hpp"
#include "common/crc32.hpp"
#include "common/simd.hpp"
#include "lossless/huffman.hpp"
#include "sz/sz.hpp"

namespace tac {
namespace {

/// Restores the force-scalar flag even if an assertion bails out.
class ScalarGuard {
 public:
  ScalarGuard() : was_(simd::scalar_forced()) {}
  ~ScalarGuard() { simd::force_scalar(was_); }

 private:
  bool was_;
};

template <class T>
std::vector<T> awkward_values(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(-1e9, 1e9);
  std::vector<T> v(n);
  for (auto& x : v) x = static_cast<T>(u(rng));
  // Sprinkle the values the kernels special-case: NaN/inf must be ignored
  // by the range scan, and -0.0 exercises the sign-bit packer (signbit is
  // set even though -0.0 == 0.0).
  for (std::size_t i = 0; i < n; i += 97)
    v[i] = std::numeric_limits<T>::quiet_NaN();
  for (std::size_t i = 13; i < n; i += 131)
    v[i] = -std::numeric_limits<T>::infinity();
  for (std::size_t i = 29; i < n; i += 61) v[i] = static_cast<T>(-0.0);
  return v;
}

template <class T>
void check_scan_and_sign_all_sizes() {
  ScalarGuard guard;
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                        std::size_t{3}, std::size_t{4}, std::size_t{5},
                        std::size_t{7}, std::size_t{8}, std::size_t{9},
                        std::size_t{15}, std::size_t{16}, std::size_t{17},
                        std::size_t{31}, std::size_t{33}, std::size_t{63},
                        std::size_t{64}, std::size_t{65}, std::size_t{255},
                        std::size_t{256}, std::size_t{257},
                        std::size_t{1023}, std::size_t{1024},
                        std::size_t{4095}, std::size_t{4096},
                        std::size_t{4097}}) {
    const auto v = awkward_values<T>(n, static_cast<std::uint32_t>(n) + 7);
    const std::span<const T> s(v);

    simd::force_scalar(false);
    const sz::ValueRange vec_range = sz::scan_range(s);
    const auto vec_signs = sz::pack_sign_bits(s);

    simd::force_scalar(true);
    const sz::ValueRange sca_range = sz::scan_range(s);
    const auto sca_signs = sz::pack_sign_bits(s);

    // Bit-level comparison: +0.0 vs -0.0 range endpoints must also agree.
    EXPECT_EQ(std::memcmp(&vec_range.lo, &sca_range.lo, sizeof(double)), 0)
        << "lo mismatch at n=" << n;
    EXPECT_EQ(std::memcmp(&vec_range.hi, &sca_range.hi, sizeof(double)), 0)
        << "hi mismatch at n=" << n;
    EXPECT_EQ(vec_range.all_identical, sca_range.all_identical)
        << "ident mismatch at n=" << n;
    EXPECT_EQ(vec_signs, sca_signs) << "sign pack mismatch at n=" << n;
  }
}

TEST(HotpathEquivalence, ScanRangeAndSignBitsDouble) {
  check_scan_and_sign_all_sizes<double>();
}

TEST(HotpathEquivalence, ScanRangeAndSignBitsFloat) {
  check_scan_and_sign_all_sizes<float>();
}

TEST(HotpathEquivalence, ConstantAndIdenticalInputs) {
  ScalarGuard guard;
  for (std::size_t n : {std::size_t{1}, std::size_t{5}, std::size_t{64},
                        std::size_t{4097}}) {
    // All-identical including the tricky all -0.0 case.
    for (double fill : {3.25, -0.0, 0.0}) {
      const std::vector<double> v(n, fill);
      simd::force_scalar(false);
      const auto a = sz::scan_range(std::span<const double>(v));
      simd::force_scalar(true);
      const auto b = sz::scan_range(std::span<const double>(v));
      EXPECT_EQ(a.all_identical, b.all_identical);
      EXPECT_TRUE(a.all_identical);
      EXPECT_EQ(std::memcmp(&a.lo, &b.lo, sizeof(double)), 0);
      EXPECT_EQ(std::memcmp(&a.hi, &b.hi, sizeof(double)), 0);
    }
  }
}

TEST(HotpathEquivalence, FullSzStreamsMatchScalar) {
  ScalarGuard guard;
  const sz::SzConfig cfg{.mode = sz::ErrorBoundMode::kAbsolute,
                         .error_bound = 0.01};
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> u(-10.0, 10.0);
  for (const Dims3 dims :
       {Dims3{1, 1, 1}, Dims3{5, 3, 2}, Dims3{16, 16, 16},
        Dims3{17, 13, 11}, Dims3{33, 7, 5}}) {
    std::vector<double> data(dims.volume());
    double acc = 0;
    for (auto& x : data) x = (acc += u(rng) * 0.1);
    data[dims.volume() / 2] = std::numeric_limits<double>::quiet_NaN();

    simd::force_scalar(false);
    const auto vec_stream = sz::compress<double>(data, dims, cfg);
    simd::force_scalar(true);
    const auto sca_stream = sz::compress<double>(data, dims, cfg);
    EXPECT_EQ(vec_stream, sca_stream)
        << "stream mismatch at " << dims.nx << "x" << dims.ny << "x"
        << dims.nz;

    const auto back = sz::decompress<double>(vec_stream);
    ASSERT_EQ(back.size(), data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (std::isfinite(data[i])) {
        EXPECT_NEAR(back[i], data[i], cfg.error_bound);
      }
    }
  }
}

TEST(HotpathEquivalence, HuffmanTableDecodeMatchesReference) {
  std::mt19937 rng(7);
  // Skewed like quantization codes: mass at the center symbol, so most
  // codes are 1-2 bits and the multi-symbol fast path dominates.
  std::discrete_distribution<int> skew({70, 12, 8, 5, 3, 1, 1});
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                        std::size_t{100}, std::size_t{4097}}) {
    std::vector<std::uint32_t> syms(n);
    for (auto& s : syms) s = 32760 + static_cast<std::uint32_t>(skew(rng));
    const auto table = lossless::huffman_build(syms);
    const auto payload = lossless::huffman_encode(table, syms);
    const auto fast = lossless::huffman_decode(table, payload, n);
    const auto ref = lossless::huffman_decode_reference(table, payload, n);
    EXPECT_EQ(fast, syms) << "n=" << n;
    EXPECT_EQ(fast, ref) << "n=" << n;
  }
}

TEST(HotpathEquivalence, HuffmanRejectsTruncatedPayloadUpFront) {
  std::vector<std::uint32_t> syms(5000);
  for (std::size_t i = 0; i < syms.size(); ++i)
    syms[i] = static_cast<std::uint32_t>(i % 17);
  const auto table = lossless::huffman_build(syms);
  const auto payload = lossless::huffman_encode(table, syms);
  // Fewer payload bits than count * min_code_len can possibly need: the
  // decoder must fail fast with the same error type a mid-stream
  // truncation produces, not spin through the whole declared count.
  const std::span<const std::uint8_t> clipped(payload.data(),
                                              payload.size() / 8);
  EXPECT_THROW(
      { (void)lossless::huffman_decode(table, clipped, syms.size()); },
      std::out_of_range);
  // The reference decoder agrees on the error type.
  EXPECT_THROW(
      {
        (void)lossless::huffman_decode_reference(table, clipped,
                                                 syms.size());
      },
      std::out_of_range);
}

TEST(HotpathEquivalence, Crc32KnownAnswerAndSlicingOracle) {
  // The canonical CRC-32 (IEEE 802.3) check value.
  const char* kat = "123456789";
  const std::span<const std::uint8_t> s(
      reinterpret_cast<const std::uint8_t*>(kat), 9);
  EXPECT_EQ(crc32(s), 0xCBF43926u);
  EXPECT_EQ(detail::crc32_bytewise(s), 0xCBF43926u);

  std::mt19937 rng(11);
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                        std::size_t{8}, std::size_t{9}, std::size_t{63},
                        std::size_t{4097}}) {
    std::vector<std::uint8_t> data(n);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    EXPECT_EQ(crc32(data), detail::crc32_bytewise(data)) << "n=" << n;
  }
}

TEST(HotpathEquivalence, ArenaSteadyStateAllocatesNoNewBlocks) {
  const Dims3 dims{32, 32, 32};
  const sz::SzConfig cfg{.mode = sz::ErrorBoundMode::kAbsolute,
                         .error_bound = 0.001};
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::vector<double> data(dims.volume() * 4);
  for (auto& x : data) x = u(rng);

  // Warm up: the first compress grows the calling thread's arena.
  const auto first = sz::compress<double>(data, dims, cfg, 4);
  const auto& arena = ScratchArena::local();
  const auto warm = arena.stats();

  // Steady state: identical work must be served entirely from retained
  // blocks — zero new bump-region growths and zero oversized allocs.
  const auto second = sz::compress<double>(data, dims, cfg, 4);
  const auto after = arena.stats();
  EXPECT_EQ(second, first);
  EXPECT_GT(after.allocs, warm.allocs);  // the arena was actually used
  EXPECT_EQ(after.block_allocs, warm.block_allocs);
  EXPECT_EQ(after.large_allocs, warm.large_allocs);
}

}  // namespace
}  // namespace tac
