#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "analysis/halo_finder.hpp"
#include "analysis/metrics.hpp"
#include "analysis/power_spectrum.hpp"

namespace tac::analysis {
namespace {

TEST(Metrics, IdenticalDataHasInfinitePsnr) {
  const std::vector<double> v = {1, 2, 3, 4};
  const auto s = distortion(v, v);
  EXPECT_TRUE(std::isinf(s.psnr));
  EXPECT_DOUBLE_EQ(s.mse, 0.0);
  EXPECT_DOUBLE_EQ(s.max_abs_error, 0.0);
}

TEST(Metrics, KnownPsnr) {
  // Range 10, every error 0.1 -> PSNR = 20*log10(10/0.1) = 40 dB.
  std::vector<double> orig(1000), recon(1000);
  for (std::size_t i = 0; i < orig.size(); ++i) {
    orig[i] = static_cast<double>(i % 11);
    recon[i] = orig[i] + 0.1;
  }
  const auto s = distortion(orig, recon);
  EXPECT_NEAR(s.psnr, 40.0, 1e-9);
  EXPECT_NEAR(s.max_abs_error, 0.1, 1e-12);
}

TEST(Metrics, SizeMismatchThrows) {
  const std::vector<double> a = {1, 2};
  const std::vector<double> b = {1};
  EXPECT_THROW((void)distortion(a, b), std::invalid_argument);
}

TEST(Metrics, RatioAndBitRateAreConsistent) {
  // 1000 doubles -> 800 bytes compressed: CR 10, 6.4 bits/value.
  EXPECT_DOUBLE_EQ(compression_ratio(8000, 800), 10.0);
  EXPECT_DOUBLE_EQ(bit_rate(1000, 800), 6.4);
  // CR * bit_rate == 64 for doubles.
  EXPECT_NEAR(compression_ratio(8000, 800) * bit_rate(1000, 800), 64.0,
              1e-12);
}

TEST(PowerSpectrum, SinglePlaneWavePeaksAtItsShell) {
  const Dims3 d{32, 32, 32};
  Array3D<double> rho(d);
  for (std::size_t z = 0; z < d.nz; ++z)
    for (std::size_t y = 0; y < d.ny; ++y)
      for (std::size_t x = 0; x < d.nx; ++x)
        rho(x, y, z) = 10.0 + std::cos(2.0 * std::numbers::pi * 4.0 *
                                       static_cast<double>(x) /
                                       static_cast<double>(d.nx));
  const auto ps = power_spectrum(rho);
  // Find the k=4 bin; it must dominate all others.
  double peak_pk = 0, max_other = 0;
  for (std::size_t i = 0; i < ps.k.size(); ++i) {
    if (ps.k[i] == 4.0)
      peak_pk = ps.pk[i];
    else
      max_other = std::max(max_other, ps.pk[i]);
  }
  EXPECT_GT(peak_pk, 1e-6);
  EXPECT_LT(max_other, peak_pk * 1e-12);
}

TEST(PowerSpectrum, IdenticalFieldsHaveZeroError) {
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> u(1, 2);
  Array3D<double> rho({16, 16, 16});
  for (std::size_t i = 0; i < rho.size(); ++i) rho[i] = u(rng);
  const auto a = power_spectrum(rho);
  const auto b = power_spectrum(rho);
  EXPECT_DOUBLE_EQ(max_relative_error(a, b, 10.0), 0.0);
}

TEST(PowerSpectrum, SmallPerturbationSmallError) {
  std::mt19937 rng(4);
  std::uniform_real_distribution<double> u(1, 2);
  std::uniform_real_distribution<double> eps(-1e-6, 1e-6);
  Array3D<double> rho({16, 16, 16});
  for (std::size_t i = 0; i < rho.size(); ++i) rho[i] = u(rng);
  auto rho2 = rho;
  for (std::size_t i = 0; i < rho2.size(); ++i) rho2[i] += eps(rng);
  const auto a = power_spectrum(rho);
  const auto b = power_spectrum(rho2);
  EXPECT_LT(max_relative_error(a, b, 10.0), 1e-2);
}

TEST(PowerSpectrum, ZeroMeanThrows) {
  Array3D<double> rho({8, 8, 8}, 0.0);
  EXPECT_THROW((void)power_spectrum(rho), std::invalid_argument);
}

Array3D<double> blob_field(Dims3 d, double background = 1.0) {
  return Array3D<double>(d, background);
}

void add_blob(Array3D<double>& f, std::size_t cx, std::size_t cy,
              std::size_t cz, std::size_t half, double value) {
  for (std::size_t z = cz - half; z <= cz + half; ++z)
    for (std::size_t y = cy - half; y <= cy + half; ++y)
      for (std::size_t x = cx - half; x <= cx + half; ++x) f(x, y, z) = value;
}

TEST(HaloFinder, FindsIsolatedBlobs) {
  auto f = blob_field({32, 32, 32});
  add_blob(f, 8, 8, 8, 1, 500.0);    // 27 cells
  add_blob(f, 24, 24, 24, 1, 800.0); // 27 cells, heavier
  const auto cat = find_halos(f, {.threshold_factor = 81.66, .min_cells = 8});
  ASSERT_EQ(cat.halos.size(), 2u);
  // Sorted by mass descending.
  EXPECT_GT(cat.halos[0].mass, cat.halos[1].mass);
  EXPECT_EQ(cat.halos[0].cells, 27u);
  // Constant-valued blob: the peak is any of its cells (tie), all within
  // the blob extent around (24, 24, 24).
  EXPECT_GE(cat.halos[0].x, 23u);
  EXPECT_LE(cat.halos[0].x, 25u);
}

TEST(HaloFinder, MinCellsFiltersSmallClumps) {
  auto f = blob_field({32, 32, 32});
  add_blob(f, 8, 8, 8, 1, 500.0);  // 27 cells -> halo
  f(20, 20, 20) = 500.0;           // single cell -> rejected
  const auto cat = find_halos(f, {.threshold_factor = 81.66, .min_cells = 8});
  EXPECT_EQ(cat.halos.size(), 1u);
}

TEST(HaloFinder, ThresholdScalesWithMean) {
  auto f = blob_field({16, 16, 16}, 1.0);
  const auto cat = find_halos(f);
  EXPECT_NEAR(cat.mean, 1.0, 1e-12);
  EXPECT_NEAR(cat.threshold, 81.66, 1e-9);
  EXPECT_TRUE(cat.halos.empty());
}

TEST(HaloFinder, PeriodicWrapJoinsBoundaryHalo) {
  auto f = blob_field({16, 16, 16});
  // A blob straddling the x boundary: cells at x = 15 and x = 0.
  for (std::size_t y = 4; y < 7; ++y)
    for (std::size_t z = 4; z < 7; ++z) {
      f(15, y, z) = 900.0;
      f(0, y, z) = 900.0;
    }
  const auto periodic =
      find_halos(f, {.threshold_factor = 50.0, .min_cells = 10,
                     .periodic = true});
  ASSERT_EQ(periodic.halos.size(), 1u);
  EXPECT_EQ(periodic.halos[0].cells, 18u);
  const auto open = find_halos(f, {.threshold_factor = 50.0, .min_cells = 5,
                                   .periodic = false});
  EXPECT_EQ(open.halos.size(), 2u);
}

TEST(HaloFinder, CompareLargestHalo) {
  auto f = blob_field({32, 32, 32});
  add_blob(f, 8, 8, 8, 2, 1000.0);  // 125 cells
  auto g = f;
  g(8, 8, 8) = 990.0;  // slightly perturbed mass
  const auto a = find_halos(f);
  const auto b = find_halos(g);
  const auto cmp = compare_largest_halo(a, b);
  EXPECT_GT(cmp.rel_mass_diff, 0.0);
  EXPECT_LT(cmp.rel_mass_diff, 1e-3);
  EXPECT_DOUBLE_EQ(cmp.cell_count_diff, 0.0);
}

TEST(HaloFinder, MissingHalosReportedAsFullDiff) {
  auto f = blob_field({16, 16, 16});
  add_blob(f, 8, 8, 8, 1, 500.0);
  const auto with = find_halos(f);
  const auto without = find_halos(blob_field({16, 16, 16}));
  const auto cmp = compare_largest_halo(with, without);
  EXPECT_DOUBLE_EQ(cmp.rel_mass_diff, 1.0);
}

}  // namespace
}  // namespace tac::analysis
