#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "common/telemetry.hpp"
#include "core/adaptive.hpp"
#include "core/backend.hpp"
#include "simnyx/generator.hpp"

/// Telemetry subsystem contract: span nesting and deterministic merge,
/// counters surviving parallel loops, exporter well-formedness, zero
/// allocations when disabled, and the observation-only invariant
/// (identical container bytes with tracing on and off).

// ---- global allocation counter for the zero-cost-when-off test -------------
// Replacing operator new binds for the whole test binary; the counter is
// only compared across the measured region, so gtest's own allocations
// elsewhere do not matter. Under ASan the sanitizer owns the global
// operators (a malloc-backed replacement trips its alloc/dealloc-mismatch
// checker), so the replacement is compiled out and the zero-allocation
// assertion skips — every other telemetry test still runs sanitized.

#if defined(__SANITIZE_ADDRESS__)
#define TAC_TEST_COUNTS_ALLOCS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define TAC_TEST_COUNTS_ALLOCS 0
#endif
#endif
#ifndef TAC_TEST_COUNTS_ALLOCS
#define TAC_TEST_COUNTS_ALLOCS 1
#endif

namespace {
std::atomic<std::size_t> g_new_calls{0};
}  // namespace

#if TAC_TEST_COUNTS_ALLOCS
void* operator new(std::size_t n) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t n) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

// GCC's IPA pass pairs new-expressions it chose not to inline with these
// inlined free() calls and reports a mismatch; the replacement operators
// above guarantee every new in this binary is malloc-backed.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop
#endif  // TAC_TEST_COUNTS_ALLOCS

namespace tac {
namespace {

/// Every test leaves the process in off mode with empty buffers so test
/// order cannot leak spans or counter values across cases.
struct TelemetryGuard {
  explicit TelemetryGuard(telemetry::Mode m) {
    telemetry::set_mode(m);
    telemetry::reset_all();
  }
  ~TelemetryGuard() {
    telemetry::set_mode(telemetry::Mode::kOff);
    telemetry::reset_all();
  }
};

simnyx::GeneratorConfig small_config(std::vector<double> densities,
                                     std::size_t n = 32) {
  simnyx::GeneratorConfig cfg;
  cfg.finest_dims = {n, n, n};
  cfg.level_densities = std::move(densities);
  cfg.region_size = 8;
  cfg.seed = 77;
  return cfg;
}

TEST(TelemetrySpans, NestedSpansRecordDepthAndEnclosure) {
  TelemetryGuard guard(telemetry::Mode::kSpans);
  {
    TAC_SPAN("test.outer");
    {
      TAC_SPAN("test.middle");
      { TAC_SPAN("test.inner"); }
    }
    { TAC_SPAN("test.middle2"); }
  }
  const auto spans = telemetry::collect_spans();
  ASSERT_EQ(spans.size(), 4u);
  // Sorted by start time: outer first, then middle, inner, middle2.
  EXPECT_EQ(spans[0].name, "test.outer");
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[1].name, "test.middle");
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[2].name, "test.inner");
  EXPECT_EQ(spans[2].depth, 2u);
  EXPECT_EQ(spans[3].name, "test.middle2");
  EXPECT_EQ(spans[3].depth, 1u);
  for (const auto& s : spans) EXPECT_LE(s.t0_ns, s.t1_ns) << s.name;
  // Children are enclosed by their parent.
  EXPECT_GE(spans[1].t0_ns, spans[0].t0_ns);
  EXPECT_LE(spans[1].t1_ns, spans[0].t1_ns);
  EXPECT_GE(spans[2].t0_ns, spans[1].t0_ns);
  EXPECT_LE(spans[2].t1_ns, spans[1].t1_ns);
}

TEST(TelemetrySpans, SetBytesAttributesPayload) {
  TelemetryGuard guard(telemetry::Mode::kSpans);
  {
    TAC_SPAN_NAMED(span, "test.bytes");
    span.set_bytes(100);
    span.add_bytes(28);
  }
  const auto spans = telemetry::collect_spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].bytes, 128u);
}

TEST(TelemetrySpans, MultiThreadMergeIsDeterministic) {
  TelemetryGuard guard(telemetry::Mode::kSpans);
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TAC_SPAN("test.worker");
        { TAC_SPAN("test.worker_child"); }
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto first = telemetry::collect_spans();
  const auto second = telemetry::collect_spans();
  ASSERT_EQ(first.size(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread * 2);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].name, second[i].name) << i;
    EXPECT_EQ(first[i].t0_ns, second[i].t0_ns) << i;
    EXPECT_EQ(first[i].t1_ns, second[i].t1_ns) << i;
    EXPECT_EQ(first[i].tid, second[i].tid) << i;
    EXPECT_EQ(first[i].depth, second[i].depth) << i;
  }
  // Merge order invariant: non-decreasing start time.
  for (std::size_t i = 1; i < first.size(); ++i)
    EXPECT_LE(first[i - 1].t0_ns, first[i].t0_ns) << i;
}

TEST(TelemetryStages, AggregateCountsAndBytes) {
  TelemetryGuard guard(telemetry::Mode::kCounters);
  for (int i = 0; i < 10; ++i) TAC_SPAN_BYTES("test.stage_agg", 64);
  // Counters mode keeps no span events, only stage totals.
  EXPECT_TRUE(telemetry::collect_spans().empty());
  const auto stages = telemetry::collect_stages();
  const auto it =
      std::find_if(stages.begin(), stages.end(),
                   [](const auto& s) { return s.name == "test.stage_agg"; });
  ASSERT_NE(it, stages.end());
  EXPECT_EQ(it->count, 10u);
  EXPECT_EQ(it->bytes, 640u);
}

TEST(TelemetryCounters, SurviveParallelFor) {
  TelemetryGuard guard(telemetry::Mode::kCounters);
  constexpr std::size_t kIters = 10000;
  parallel_for(
      0, kIters,
      [&](std::size_t i) {
        TAC_COUNTER_ADD("test.pf_adds", 1);
        TAC_COUNTER_MAX("test.pf_max", i);
        TAC_SPAN("test.pf_span");
      },
      /*grain=*/7);
  const auto counters = telemetry::collect_counters();
  const auto find = [&](const char* name) -> std::uint64_t {
    for (const auto& c : counters)
      if (c.name == name) return c.value;
    return static_cast<std::uint64_t>(-1);
  };
  EXPECT_EQ(find("test.pf_adds"), kIters);
  EXPECT_EQ(find("test.pf_max"), kIters - 1);
  const auto stages = telemetry::collect_stages();
  const auto it =
      std::find_if(stages.begin(), stages.end(),
                   [](const auto& s) { return s.name == "test.pf_span"; });
  ASSERT_NE(it, stages.end());
  EXPECT_EQ(it->count, kIters);
}

TEST(TelemetryCounters, ResetClearsValuesNotRegistrations) {
  TelemetryGuard guard(telemetry::Mode::kCounters);
  TAC_COUNTER_ADD("test.reset_me", 42);
  telemetry::reset_counters();
  for (const auto& c : telemetry::collect_counters()) {
    if (c.name == "test.reset_me") {
      EXPECT_EQ(c.value, 0u);
    }
  }
  TAC_COUNTER_ADD("test.reset_me", 7);
  bool found = false;
  for (const auto& c : telemetry::collect_counters())
    if (c.name == "test.reset_me") {
      found = true;
      EXPECT_EQ(c.value, 7u);
    }
  EXPECT_TRUE(found);
}

TEST(TelemetryModes, SetModeReturnsPrevious) {
  TelemetryGuard guard(telemetry::Mode::kOff);
  EXPECT_EQ(telemetry::set_mode(telemetry::Mode::kCounters),
            telemetry::Mode::kOff);
  EXPECT_EQ(telemetry::set_mode(telemetry::Mode::kSpans),
            telemetry::Mode::kCounters);
  EXPECT_TRUE(telemetry::spans_enabled());
  EXPECT_TRUE(telemetry::counters_enabled());
  EXPECT_EQ(telemetry::set_mode(telemetry::Mode::kOff),
            telemetry::Mode::kSpans);
  EXPECT_FALSE(telemetry::counters_enabled());
}

// ---- exporter well-formedness ----------------------------------------------

/// Minimal JSON shape check: balanced braces/brackets outside string
/// literals, with escape handling. Not a parser, but catches the classes
/// of emitter bugs (trailing commas aside) a streaming fprintf writer
/// can introduce: unbalanced nesting and unterminated strings.
void expect_balanced_json(const std::string& s) {
  int depth_obj = 0, depth_arr = 0;
  bool in_string = false, escaped = false;
  for (const char c : s) {
    if (in_string) {
      if (escaped)
        escaped = false;
      else if (c == '\\')
        escaped = true;
      else if (c == '"')
        in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++depth_obj; break;
      case '}': --depth_obj; break;
      case '[': ++depth_arr; break;
      case ']': --depth_arr; break;
      default: break;
    }
    ASSERT_GE(depth_obj, 0);
    ASSERT_GE(depth_arr, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth_obj, 0);
  EXPECT_EQ(depth_arr, 0);
}

TEST(TelemetryExport, ChromeTraceIsWellFormedAndComplete) {
  TelemetryGuard guard(telemetry::Mode::kSpans);
  {
    TAC_SPAN_BYTES("test.export_outer", 4096);
    { TAC_SPAN("test.export_inner"); }
  }
  TAC_COUNTER_ADD("test.export_counter", 13);
  std::ostringstream os;
  telemetry::write_chrome_trace(os);
  const std::string json = os.str();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("test.export_outer"), std::string::npos);
  EXPECT_NE(json.find("test.export_inner"), std::string::npos);
  EXPECT_NE(json.find("\"bytes\": 4096"), std::string::npos);
  EXPECT_NE(json.find("\"otherData\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"test.export_counter\": 13"), std::string::npos);
  EXPECT_NE(json.find("\"stages\""), std::string::npos);
}

TEST(TelemetryExport, StageTreePrintsNestedStages) {
  TelemetryGuard guard(telemetry::Mode::kSpans);
  {
    TAC_SPAN("test.tree_root");
    { TAC_SPAN("test.tree_leaf"); }
  }
  std::ostringstream os;
  telemetry::print_stage_tree(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("test.tree_root"), std::string::npos);
  // The leaf renders indented under its parent.
  EXPECT_NE(out.find("  test.tree_leaf"), std::string::npos);
}

TEST(TelemetryExport, CountersModePrintsFlatTable) {
  TelemetryGuard guard(telemetry::Mode::kCounters);
  { TAC_SPAN("test.flat_stage"); }
  std::ostringstream os;
  telemetry::print_stage_tree(os);
  EXPECT_NE(os.str().find("test.flat_stage"), std::string::npos);
}

// ---- zero cost when off ----------------------------------------------------

TEST(TelemetryOff, NoAllocationsAndNoRecords) {
  TelemetryGuard guard(telemetry::Mode::kOff);
  const std::size_t before = g_new_calls.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    TAC_SPAN("test.off_span");
    TAC_SPAN_BYTES("test.off_bytes", 512);
    TAC_COUNTER_ADD("test.off_counter", 1);
    TAC_COUNTER_MAX("test.off_max", i);
  }
  const std::size_t after = g_new_calls.load(std::memory_order_relaxed);
#if TAC_TEST_COUNTS_ALLOCS
  EXPECT_EQ(after - before, 0u) << "disabled telemetry must not allocate";
#else
  (void)before;
  (void)after;  // ASan owns operator new; only the no-records half runs
#endif
  EXPECT_TRUE(telemetry::collect_spans().empty());
  for (const auto& c : telemetry::collect_counters())
    EXPECT_NE(c.name, "test.off_counter")
        << "disabled counter macro must not register";
}

// ---- observation-only invariant --------------------------------------------

TEST(TelemetryInvariant, ContainerBytesIdenticalTracingOnAndOff) {
  const auto ds = simnyx::generate_baryon_density(small_config({0.3, 0.7}));
  core::TacConfig cfg;
  cfg.sz.mode = sz::ErrorBoundMode::kAbsolute;
  cfg.sz.error_bound = 1e6;
  for (const core::Method method :
       {core::Method::kTac, core::Method::kOneD, core::Method::kZMesh}) {
    telemetry::set_mode(telemetry::Mode::kOff);
    const auto off = core::backend_for(method).compress(ds, cfg);
    telemetry::set_mode(telemetry::Mode::kSpans);
    telemetry::reset_all();
    const auto on = core::backend_for(method).compress(ds, cfg);
    const auto spans = telemetry::collect_spans();
    telemetry::set_mode(telemetry::Mode::kOff);
    telemetry::reset_all();
    EXPECT_EQ(off.bytes, on.bytes)
        << "method " << core::to_string(method)
        << ": tracing changed the compressed bytes";
    EXPECT_FALSE(spans.empty())
        << "method " << core::to_string(method) << ": no spans recorded";
    // And the traced container still decodes to the traced-off result.
    const auto back_off = core::decompress_any(off.bytes);
    const auto back_on = core::decompress_any(on.bytes);
    ASSERT_EQ(back_off.num_levels(), back_on.num_levels());
    for (std::size_t l = 0; l < back_off.num_levels(); ++l)
      EXPECT_EQ(back_off.level(l).data, back_on.level(l).data) << "level " << l;
  }
}

TEST(TelemetryInvariant, PipelineEmitsExpectedStageNames) {
  TelemetryGuard guard(telemetry::Mode::kSpans);
  const auto ds = simnyx::generate_baryon_density(small_config({0.4, 0.6}));
  core::TacConfig cfg;
  cfg.sz.mode = sz::ErrorBoundMode::kAbsolute;
  cfg.sz.error_bound = 1e6;
  const auto compressed = core::adaptive_compress(ds, cfg);
  (void)core::decompress_any(compressed.bytes);
  const auto stages = telemetry::collect_stages();
  const auto has = [&](const char* name) {
    return std::any_of(stages.begin(), stages.end(),
                       [&](const auto& s) { return s.name == name; });
  };
  EXPECT_TRUE(has("sz.compress"));
  EXPECT_TRUE(has("sz.decompress"));
  EXPECT_TRUE(has("huffman.compress"));
  EXPECT_TRUE(has("container.header_write"));
  EXPECT_TRUE(has("container.header_read"));
  EXPECT_TRUE(has("core.decompress_any"));
}

}  // namespace
}  // namespace tac
