#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "fft/fft.hpp"

namespace tac::fft {
namespace {

TEST(Fft1D, RoundTrip) {
  std::mt19937 rng(1);
  std::uniform_real_distribution<double> u(-1, 1);
  std::vector<Complex> v(256);
  for (auto& c : v) c = Complex(u(rng), u(rng));
  auto w = v;
  fft_1d(w, false);
  fft_1d(w, true);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(w[i].real(), v[i].real(), 1e-10);
    EXPECT_NEAR(w[i].imag(), v[i].imag(), 1e-10);
  }
}

TEST(Fft1D, MatchesNaiveDft) {
  std::mt19937 rng(2);
  std::uniform_real_distribution<double> u(-1, 1);
  std::vector<Complex> v(64);
  for (auto& c : v) c = Complex(u(rng), u(rng));
  auto fast = v;
  fft_1d(fast, false);
  const std::size_t n = v.size();
  for (std::size_t k = 0; k < n; ++k) {
    Complex sum = 0;
    for (std::size_t t = 0; t < n; ++t) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(k * t) /
                         static_cast<double>(n);
      sum += v[t] * Complex(std::cos(ang), std::sin(ang));
    }
    EXPECT_NEAR(fast[k].real(), sum.real(), 1e-8);
    EXPECT_NEAR(fast[k].imag(), sum.imag(), 1e-8);
  }
}

TEST(Fft1D, ImpulseGivesFlatSpectrum) {
  std::vector<Complex> v(128, Complex(0, 0));
  v[0] = Complex(1, 0);
  fft_1d(v, false);
  for (const auto& c : v) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(Fft1D, ParsevalHolds) {
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> u(-1, 1);
  std::vector<Complex> v(512);
  double time_energy = 0;
  for (auto& c : v) {
    c = Complex(u(rng), u(rng));
    time_energy += std::norm(c);
  }
  auto f = v;
  fft_1d(f, false);
  double freq_energy = 0;
  for (const auto& c : f) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy / static_cast<double>(v.size()), time_energy, 1e-8);
}

TEST(Fft1D, NonPowerOfTwoThrows) {
  std::vector<Complex> v(100);
  EXPECT_THROW(fft_1d(v, false), std::invalid_argument);
}

TEST(Fft3D, RoundTrip) {
  std::mt19937 rng(4);
  std::uniform_real_distribution<double> u(-1, 1);
  Array3D<Complex> v({16, 8, 32});
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = Complex(u(rng), u(rng));
  auto w = v;
  fft_3d(w, false);
  fft_3d(w, true);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(w[i].real(), v[i].real(), 1e-9);
    EXPECT_NEAR(w[i].imag(), v[i].imag(), 1e-9);
  }
}

TEST(Fft3D, PlaneWaveConcentratesAtItsMode) {
  // f(x) = exp(2πi * 3x / nx) -> single peak at (3, 0, 0).
  const Dims3 d{32, 8, 8};
  Array3D<Complex> v(d);
  for (std::size_t z = 0; z < d.nz; ++z)
    for (std::size_t y = 0; y < d.ny; ++y)
      for (std::size_t x = 0; x < d.nx; ++x) {
        const double ang = 2.0 * std::numbers::pi * 3.0 *
                           static_cast<double>(x) / static_cast<double>(d.nx);
        v(x, y, z) = Complex(std::cos(ang), std::sin(ang));
      }
  fft_3d(v, false);
  const double expected = static_cast<double>(d.volume());
  for (std::size_t z = 0; z < d.nz; ++z)
    for (std::size_t y = 0; y < d.ny; ++y)
      for (std::size_t x = 0; x < d.nx; ++x) {
        const double mag = std::abs(v(x, y, z));
        if (x == 3 && y == 0 && z == 0)
          EXPECT_NEAR(mag, expected, 1e-6);
        else
          EXPECT_NEAR(mag, 0.0, 1e-6);
      }
}

TEST(Fft3D, RealFieldHasHermitianSpectrum) {
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> u(-1, 1);
  Array3D<double> f({8, 8, 8});
  for (std::size_t i = 0; i < f.size(); ++i) f[i] = u(rng);
  const auto spec = fft_3d_real(f);
  const Dims3 d = spec.dims();
  for (std::size_t z = 0; z < d.nz; ++z)
    for (std::size_t y = 0; y < d.ny; ++y)
      for (std::size_t x = 0; x < d.nx; ++x) {
        const auto& a = spec(x, y, z);
        const auto& b = spec((d.nx - x) % d.nx, (d.ny - y) % d.ny,
                             (d.nz - z) % d.nz);
        EXPECT_NEAR(a.real(), b.real(), 1e-9);
        EXPECT_NEAR(a.imag(), -b.imag(), 1e-9);
      }
}

}  // namespace
}  // namespace tac::fft
