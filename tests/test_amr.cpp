#include <gtest/gtest.h>

#include <cstdio>
#include <random>

#include "amr/amr_io.hpp"
#include "amr/dataset.hpp"
#include "amr/uniform.hpp"

namespace tac::amr {
namespace {

/// Two-level dataset: an aligned box of the domain refined to the fine
/// level, the rest stored coarse. Region is given in coarse cells.
AmrDataset make_two_level(Dims3 fine_dims, Box3 refined_coarse,
                          unsigned seed = 7) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(1.0, 2.0);
  const Dims3 coarse_dims{fine_dims.nx / 2, fine_dims.ny / 2,
                          fine_dims.nz / 2};
  AmrLevel fine(fine_dims);
  AmrLevel coarse(coarse_dims);
  for (std::size_t z = 0; z < coarse_dims.nz; ++z)
    for (std::size_t y = 0; y < coarse_dims.ny; ++y)
      for (std::size_t x = 0; x < coarse_dims.nx; ++x) {
        if (refined_coarse.contains(x, y, z)) {
          for (std::size_t dz = 0; dz < 2; ++dz)
            for (std::size_t dy = 0; dy < 2; ++dy)
              for (std::size_t dx = 0; dx < 2; ++dx) {
                fine.mask(2 * x + dx, 2 * y + dy, 2 * z + dz) = 1;
                fine.data(2 * x + dx, 2 * y + dy, 2 * z + dz) = u(rng);
              }
        } else {
          coarse.mask(x, y, z) = 1;
          coarse.data(x, y, z) = u(rng);
        }
      }
  return AmrDataset("test_field", {std::move(fine), std::move(coarse)});
}

TEST(AmrLevel, DensityCountsValidCells) {
  AmrLevel lv({4, 4, 4});
  EXPECT_EQ(lv.valid_count(), 0u);
  EXPECT_DOUBLE_EQ(lv.density(), 0.0);
  for (std::size_t i = 0; i < 16; ++i) lv.mask[i] = 1;
  EXPECT_EQ(lv.valid_count(), 16u);
  EXPECT_DOUBLE_EQ(lv.density(), 0.25);
}

TEST(AmrLevel, GatherScatterRoundTrip) {
  AmrLevel lv({4, 4, 2});
  std::mt19937 rng(1);
  std::uniform_real_distribution<double> u(0, 1);
  for (std::size_t i = 0; i < lv.mask.size(); ++i) {
    lv.mask[i] = (i % 3 == 0) ? 1 : 0;
    lv.data[i] = lv.mask[i] ? u(rng) : 0.0;
  }
  const auto values = lv.gather_valid();
  EXPECT_EQ(values.size(), lv.valid_count());
  AmrLevel lv2({4, 4, 2});
  lv2.mask = lv.mask;
  lv2.scatter_valid(values);
  EXPECT_EQ(lv2.data, lv.data);
}

TEST(AmrLevel, ScatterRejectsWrongCount) {
  AmrLevel lv({2, 2, 1});
  lv.mask(0, 0, 0) = 1;
  EXPECT_THROW(lv.scatter_valid(std::vector<double>{}),
               std::invalid_argument);
  EXPECT_THROW(lv.scatter_valid(std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(AmrLevel, ValidRangeIgnoresEmptyCells) {
  AmrLevel lv({2, 2, 1});
  lv.data(0, 0, 0) = -100.0;  // invalid cell: ignored
  lv.mask(1, 0, 0) = 1;
  lv.data(1, 0, 0) = 3.0;
  lv.mask(0, 1, 0) = 1;
  lv.data(0, 1, 0) = 7.0;
  const auto [lo, hi] = lv.valid_range();
  EXPECT_DOUBLE_EQ(lo, 3.0);
  EXPECT_DOUBLE_EQ(hi, 7.0);
}

TEST(AmrDataset, ValidPartitionPasses) {
  const auto ds = make_two_level({16, 16, 16}, Box3{0, 0, 0, 4, 4, 4});
  EXPECT_EQ(ds.validate(), "");
}

TEST(AmrDataset, OverlapDetected) {
  auto ds = make_two_level({16, 16, 16}, Box3{0, 0, 0, 4, 4, 4});
  // Mark a coarse cell valid whose region is already refined.
  ds.level(1).mask(0, 0, 0) = 1;
  EXPECT_NE(ds.validate(), "");
}

TEST(AmrDataset, HoleDetected) {
  auto ds = make_two_level({16, 16, 16}, Box3{0, 0, 0, 4, 4, 4});
  ds.level(1).mask(7, 7, 7) = 0;
  EXPECT_NE(ds.validate(), "");
}

TEST(AmrDataset, WrongLevelDimsDetected) {
  auto ds = make_two_level({16, 16, 16}, Box3{0, 0, 0, 4, 4, 4});
  std::vector<AmrLevel> levels;
  levels.push_back(std::move(ds.level(0)));
  levels.emplace_back(Dims3{5, 8, 8});  // not finest/2
  const AmrDataset bad("x", std::move(levels));
  EXPECT_NE(bad.validate(), "");
}

TEST(AmrDataset, TotalValidSumsLevels) {
  const auto ds = make_two_level({16, 16, 16}, Box3{0, 0, 0, 4, 4, 4});
  EXPECT_EQ(ds.total_valid(),
            ds.level(0).valid_count() + ds.level(1).valid_count());
  EXPECT_EQ(ds.original_bytes(), ds.total_valid() * sizeof(double));
}

TEST(Uniform, ComposeReplicatesCoarseValues) {
  const auto ds = make_two_level({8, 8, 8}, Box3{0, 0, 0, 2, 2, 2});
  const auto uni = compose_uniform(ds);
  EXPECT_EQ(uni.dims(), ds.finest_dims());
  // Fine region: exact fine values.
  EXPECT_DOUBLE_EQ(uni(0, 0, 0), ds.level(0).data(0, 0, 0));
  // Coarse region: each coarse value replicated 2x2x2.
  const double c = ds.level(1).data(3, 3, 3);
  for (std::size_t dz = 0; dz < 2; ++dz)
    for (std::size_t dy = 0; dy < 2; ++dy)
      for (std::size_t dx = 0; dx < 2; ++dx)
        EXPECT_DOUBLE_EQ(uni(6 + dx, 6 + dy, 6 + dz), c);
}

TEST(Uniform, DistributeInvertsCompose) {
  const auto ds = make_two_level({8, 8, 8}, Box3{1, 1, 1, 3, 3, 3});
  const auto uni = compose_uniform(ds);
  auto copy = ds;
  for (auto& lv : copy.levels()) lv.data.fill(0.0);
  distribute_uniform(uni, copy);
  for (std::size_t l = 0; l < ds.num_levels(); ++l)
    EXPECT_EQ(copy.level(l).data, ds.level(l).data) << "level " << l;
}

TEST(Uniform, UpsampleFactors) {
  Array3D<double> coarse({2, 2, 2});
  for (std::size_t i = 0; i < coarse.size(); ++i)
    coarse[i] = static_cast<double>(i);
  const auto fine = upsample(coarse, {4, 4, 4});
  for (std::size_t z = 0; z < 4; ++z)
    for (std::size_t y = 0; y < 4; ++y)
      for (std::size_t x = 0; x < 4; ++x)
        EXPECT_DOUBLE_EQ(fine(x, y, z), coarse(x / 2, y / 2, z / 2));
}

TEST(Uniform, UpsampleRejectsNonMultiple) {
  Array3D<double> coarse({3, 3, 3});
  EXPECT_THROW((void)upsample(coarse, {7, 6, 6}), std::invalid_argument);
}

TEST(AmrIo, BytesRoundTrip) {
  const auto ds = make_two_level({16, 16, 16}, Box3{2, 2, 2, 6, 6, 6});
  const auto bytes = dataset_to_bytes(ds);
  const auto back = dataset_from_bytes(bytes);
  EXPECT_EQ(back.field_name(), ds.field_name());
  EXPECT_EQ(back.num_levels(), ds.num_levels());
  EXPECT_EQ(back.refinement_ratio(), ds.refinement_ratio());
  for (std::size_t l = 0; l < ds.num_levels(); ++l) {
    EXPECT_EQ(back.level(l).mask, ds.level(l).mask);
    EXPECT_EQ(back.level(l).data, ds.level(l).data);
  }
}

TEST(AmrIo, FileRoundTrip) {
  const auto ds = make_two_level({8, 8, 8}, Box3{0, 0, 0, 2, 2, 2});
  const std::string path = ::testing::TempDir() + "/tac_amr_io_test.bin";
  save_dataset(path, ds);
  const auto back = load_dataset(path);
  EXPECT_EQ(back.level(0).data, ds.level(0).data);
  EXPECT_EQ(back.level(1).mask, ds.level(1).mask);
  std::remove(path.c_str());
}

TEST(AmrIo, CorruptMagicRejected) {
  const auto ds = make_two_level({8, 8, 8}, Box3{0, 0, 0, 2, 2, 2});
  auto bytes = dataset_to_bytes(ds);
  bytes[0] ^= 0xFF;
  EXPECT_THROW((void)dataset_from_bytes(bytes), std::runtime_error);
}

TEST(MaskPack, RoundTripOddSizes) {
  for (const std::size_t n : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 65u, 1000u}) {
    std::vector<std::uint8_t> mask(n);
    std::mt19937 rng(static_cast<unsigned>(n));
    for (auto& m : mask) m = rng() % 2;
    const auto packed = pack_mask(mask);
    EXPECT_EQ(packed.size(), (n + 7) / 8);
    EXPECT_EQ(unpack_mask(packed, n), mask);
  }
}

}  // namespace
}  // namespace tac::amr
