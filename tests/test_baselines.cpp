#include <gtest/gtest.h>

#include <cmath>

#include "amr/uniform.hpp"
#include "core/baselines.hpp"
#include "core/tac.hpp"
#include "simnyx/generator.hpp"

namespace tac::core {
namespace {

simnyx::GeneratorConfig small_config(std::vector<double> densities,
                                     std::size_t n = 32) {
  simnyx::GeneratorConfig cfg;
  cfg.finest_dims = {n, n, n};
  cfg.level_densities = std::move(densities);
  cfg.region_size = 8;
  cfg.seed = 4321;
  return cfg;
}

void expect_amr_bounded(const amr::AmrDataset& orig,
                        const amr::AmrDataset& recon, double eb) {
  ASSERT_EQ(orig.num_levels(), recon.num_levels());
  for (std::size_t l = 0; l < orig.num_levels(); ++l) {
    const auto& ol = orig.level(l);
    const auto& rl = recon.level(l);
    for (std::size_t i = 0; i < ol.data.size(); ++i) {
      if (!ol.mask[i]) continue;
      EXPECT_LE(std::fabs(ol.data[i] - rl.data[i]), eb)
          << "level " << l << " cell " << i;
    }
  }
}

TEST(OneD, RoundTripWithinBound) {
  const auto ds = simnyx::generate_baryon_density(small_config({0.3, 0.7}));
  sz::SzConfig cfg{.error_bound = 1e6};
  const auto compressed = oned_compress(ds, cfg);
  expect_amr_bounded(ds, decompress_any(compressed.bytes), 1e6);
  EXPECT_EQ(compressed.report.method, Method::kOneD);
  EXPECT_EQ(compressed.report.levels.size(), 2u);
}

TEST(OneD, EmptyLevelHandled) {
  // A dataset where the finest level is present but a middle level is
  // empty cannot come from the generator; build one by hand.
  amr::AmrLevel fine({8, 8, 8});
  amr::AmrLevel coarse({4, 4, 4});
  for (std::size_t i = 0; i < fine.mask.size(); ++i) {
    fine.mask[i] = 1;
    fine.data[i] = 1.5;
  }
  const amr::AmrDataset ds("f", {std::move(fine), std::move(coarse)});
  sz::SzConfig cfg{.error_bound = 0.1};
  const auto compressed = oned_compress(ds, cfg);
  const auto back = decompress_any(compressed.bytes);
  EXPECT_EQ(back.level(1).valid_count(), 0u);
  expect_amr_bounded(ds, back, 0.1);
}

TEST(ZMesh, GatherEmitsAllValidValuesOnce) {
  const auto ds = simnyx::generate_baryon_density(small_config({0.3, 0.7}));
  const auto values = zmesh_gather(ds);
  EXPECT_EQ(values.size(), ds.total_valid());
  // Sum of gathered == sum over levels of valid data (same multiset).
  double sum_gather = 0;
  for (const double v : values) sum_gather += v;
  double sum_levels = 0;
  for (std::size_t l = 0; l < ds.num_levels(); ++l) {
    const auto& lv = ds.level(l);
    for (std::size_t i = 0; i < lv.data.size(); ++i)
      if (lv.mask[i]) sum_levels += lv.data[i];
  }
  EXPECT_NEAR(sum_gather, sum_levels, std::fabs(sum_levels) * 1e-12);
}

TEST(ZMesh, ScatterInvertsGather) {
  const auto ds = simnyx::generate_baryon_density(small_config({0.3, 0.7}));
  const auto values = zmesh_gather(ds);
  auto copy = ds;
  for (auto& lv : copy.levels()) lv.data.fill(0.0);
  zmesh_scatter(copy, values);
  for (std::size_t l = 0; l < ds.num_levels(); ++l) {
    const auto& ol = ds.level(l);
    const auto& cl = copy.level(l);
    for (std::size_t i = 0; i < ol.data.size(); ++i) {
      if (ol.mask[i]) {
        EXPECT_EQ(cl.data[i], ol.data[i]);
      }
    }
  }
}

TEST(ZMesh, InterleavesLevels) {
  // In traversal order, fine cells of a refined coarse cell appear between
  // the coarse cells surrounding it — not all fine then all coarse.
  const auto ds = simnyx::generate_baryon_density(small_config({0.3, 0.7}));
  std::vector<std::size_t> level_of_pos;
  level_of_pos.reserve(ds.total_valid());
  // Reconstruct the level sequence by matching gather order.
  // (zmesh_gather walks the same traversal.)
  struct Probe {
    std::vector<std::size_t> seq;
  } probe;
  auto copy = ds;
  // Tag each level's data with its level id and read the gather output.
  for (std::size_t l = 0; l < copy.num_levels(); ++l) {
    auto& lv = copy.level(l);
    for (std::size_t i = 0; i < lv.data.size(); ++i)
      if (lv.mask[i]) lv.data[i] = static_cast<double>(l);
  }
  const auto tagged = zmesh_gather(copy);
  bool saw_coarse_after_fine = false;
  bool saw_fine = false;
  for (const double t : tagged) {
    if (t == 0.0) saw_fine = true;
    if (t == 1.0 && saw_fine) saw_coarse_after_fine = true;
  }
  EXPECT_TRUE(saw_coarse_after_fine) << "levels not interleaved";
  (void)probe;
  (void)level_of_pos;
}

TEST(ZMesh, RoundTripWithinBound) {
  const auto ds = simnyx::generate_baryon_density(small_config({0.3, 0.7}));
  sz::SzConfig cfg{.error_bound = 1e6};
  const auto compressed = zmesh_compress(ds, cfg);
  expect_amr_bounded(ds, decompress_any(compressed.bytes), 1e6);
}

TEST(Upsample3D, RoundTripWithinBound) {
  const auto ds = simnyx::generate_baryon_density(small_config({0.3, 0.7}));
  sz::SzConfig cfg{.error_bound = 1e6};
  const auto compressed = upsample3d_compress(ds, cfg);
  expect_amr_bounded(ds, decompress_any(compressed.bytes), 1e6);
}

TEST(Upsample3D, RelativeBoundUsesDatasetRange) {
  const auto ds = simnyx::generate_baryon_density(small_config({0.3, 0.7}));
  sz::SzConfig cfg{.mode = sz::ErrorBoundMode::kRelative,
                   .error_bound = 1e-3};
  const auto compressed = upsample3d_compress(ds, cfg);
  double lo = 1e300, hi = -1e300;
  for (std::size_t l = 0; l < ds.num_levels(); ++l) {
    const auto [llo, lhi] = ds.level(l).valid_range();
    lo = std::min(lo, llo);
    hi = std::max(hi, lhi);
  }
  const double eb = 1e-3 * (hi - lo);
  EXPECT_NEAR(compressed.report.levels[0].abs_error_bound, eb, eb * 1e-9);
  expect_amr_bounded(ds, decompress_any(compressed.bytes), eb);
}

TEST(Upsample3D, CompressedPayloadCoversFullUniformGrid) {
  // The 3D baseline pays for redundant up-sampled points; on a sparse
  // finest level its stream is much larger than TAC's for the same bound.
  const auto ds = simnyx::generate_baryon_density(
      small_config({0.05, 0.95}, 64));
  sz::SzConfig cfg{.error_bound = 1e6};
  const auto base3d = upsample3d_compress(ds, cfg);
  TacConfig tcfg;
  tcfg.sz = cfg;
  const auto tac = tac_compress(ds, tcfg);
  EXPECT_GT(base3d.bytes.size(), tac.bytes.size());
}

TEST(Baselines, AllMethodsPreserveStructure) {
  const auto ds = simnyx::generate_baryon_density(small_config({0.3, 0.7}));
  sz::SzConfig cfg{.error_bound = 1e6};
  for (const auto& compressed :
       {oned_compress(ds, cfg), zmesh_compress(ds, cfg),
        upsample3d_compress(ds, cfg)}) {
    const auto back = decompress_any(compressed.bytes);
    for (std::size_t l = 0; l < ds.num_levels(); ++l)
      EXPECT_EQ(back.level(l).mask, ds.level(l).mask);
    EXPECT_EQ(back.refinement_ratio(), ds.refinement_ratio());
    EXPECT_EQ(back.field_name(), ds.field_name());
  }
}

TEST(Baselines, ThreeLevelDatasetAllMethods) {
  const auto ds = simnyx::generate_baryon_density(
      small_config({0.05, 0.2, 0.75}, 64));
  ASSERT_EQ(ds.validate(), "");
  sz::SzConfig cfg{.error_bound = 1e6};
  expect_amr_bounded(ds, decompress_any(oned_compress(ds, cfg).bytes), 1e6);
  expect_amr_bounded(ds, decompress_any(zmesh_compress(ds, cfg).bytes), 1e6);
  expect_amr_bounded(ds, decompress_any(upsample3d_compress(ds, cfg).bytes),
                     1e6);
}

}  // namespace
}  // namespace tac::core
