#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "common/bitio.hpp"
#include "common/bytes.hpp"

namespace tac {
namespace {

TEST(BitIO, EmptyStream) {
  BitWriter w;
  const auto bytes = w.finish();
  EXPECT_TRUE(bytes.empty());
}

TEST(BitIO, SingleBit) {
  BitWriter w;
  w.write_bit(true);
  const auto bytes = w.finish();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0x80);  // MSB-first
  BitReader r(bytes);
  EXPECT_TRUE(r.read_bit());
}

TEST(BitIO, ByteAlignedPattern) {
  BitWriter w;
  w.write(0xAB, 8);
  w.write(0xCD, 8);
  const auto bytes = w.finish();
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[0], 0xAB);
  EXPECT_EQ(bytes[1], 0xCD);
}

TEST(BitIO, UnalignedFieldsRoundTrip) {
  BitWriter w;
  w.write(0b101, 3);
  w.write(0b11110000111, 11);
  w.write(1, 1);
  w.write(0x123456789ABCDEFull, 60);
  const auto bytes = w.finish();
  BitReader r(bytes);
  EXPECT_EQ(r.read(3), 0b101u);
  EXPECT_EQ(r.read(11), 0b11110000111u);
  EXPECT_EQ(r.read(1), 1u);
  EXPECT_EQ(r.read(60), 0x123456789ABCDEFull);
}

TEST(BitIO, BitCountTracksWrites) {
  BitWriter w;
  EXPECT_EQ(w.bit_count(), 0u);
  w.write(0, 5);
  EXPECT_EQ(w.bit_count(), 5u);
  w.write(0, 9);
  EXPECT_EQ(w.bit_count(), 14u);
}

TEST(BitIO, ReadPastEndThrows) {
  BitWriter w;
  w.write(0xFF, 8);
  const auto bytes = w.finish();
  BitReader r(bytes);
  (void)r.read(8);
  EXPECT_THROW((void)r.read_bit(), std::out_of_range);
}

TEST(BitIO, RandomRoundTrip) {
  std::mt19937_64 rng(42);
  std::vector<std::pair<std::uint64_t, unsigned>> fields;
  BitWriter w;
  for (int i = 0; i < 10000; ++i) {
    const unsigned nbits = 1 + static_cast<unsigned>(rng() % 57);
    const std::uint64_t value =
        rng() & ((nbits == 64) ? ~0ull : ((1ull << nbits) - 1));
    fields.emplace_back(value, nbits);
    w.write(value, nbits);
  }
  const auto bytes = w.finish();
  BitReader r(bytes);
  for (const auto& [value, nbits] : fields) EXPECT_EQ(r.read(nbits), value);
}

TEST(ByteIO, VarintRoundTrip) {
  ByteWriter w;
  const std::vector<std::uint64_t> values = {
      0, 1, 127, 128, 300, 1u << 20, (1ull << 35) + 7, ~0ull};
  for (const auto v : values) w.put_varint(v);
  const auto buf = w.take();
  ByteReader r(buf);
  for (const auto v : values) EXPECT_EQ(r.get_varint(), v);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteIO, TrivialTypesRoundTrip) {
  ByteWriter w;
  w.put<std::uint16_t>(0xBEEF);
  w.put<double>(3.25);
  w.put<float>(-1.5f);
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(r.get<std::uint16_t>(), 0xBEEF);
  EXPECT_EQ(r.get<double>(), 3.25);
  EXPECT_EQ(r.get<float>(), -1.5f);
}

TEST(ByteIO, BlobAndStringRoundTrip) {
  ByteWriter w;
  const std::vector<std::uint8_t> blob = {1, 2, 3, 250};
  w.put_blob(blob);
  w.put_string("baryon_density");
  const auto buf = w.take();
  ByteReader r(buf);
  const auto got = r.get_blob();
  EXPECT_TRUE(std::equal(blob.begin(), blob.end(), got.begin(), got.end()));
  EXPECT_EQ(r.get_string(), "baryon_density");
}

TEST(ByteIO, TruncatedInputThrows) {
  ByteWriter w;
  w.put<double>(1.0);
  auto buf = w.take();
  buf.resize(4);
  ByteReader r(buf);
  EXPECT_THROW((void)r.get<double>(), std::runtime_error);
}

TEST(ByteIO, EmptyBlob) {
  ByteWriter w;
  w.put_blob({});
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(r.get_blob().size(), 0u);
}

}  // namespace
}  // namespace tac
