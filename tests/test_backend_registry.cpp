#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <iterator>

#include "common/parallel.hpp"
#include "core/adaptive.hpp"
#include "core/backend.hpp"
#include "core/baselines.hpp"
#include "core/tac.hpp"
#include "simnyx/generator.hpp"

namespace tac::core {
namespace {

simnyx::GeneratorConfig small_config(std::vector<double> densities,
                                     std::size_t n = 32) {
  simnyx::GeneratorConfig cfg;
  cfg.finest_dims = {n, n, n};
  cfg.level_densities = std::move(densities);
  cfg.region_size = 8;
  cfg.seed = 2024;
  return cfg;
}

TacConfig test_config() {
  TacConfig cfg;
  cfg.sz.mode = sz::ErrorBoundMode::kAbsolute;
  cfg.sz.error_bound = 1e6;
  return cfg;
}

void expect_amr_bounded(const amr::AmrDataset& orig,
                        const amr::AmrDataset& recon, double eb) {
  ASSERT_EQ(orig.num_levels(), recon.num_levels());
  for (std::size_t l = 0; l < orig.num_levels(); ++l) {
    const auto& ol = orig.level(l);
    const auto& rl = recon.level(l);
    for (std::size_t i = 0; i < ol.data.size(); ++i) {
      if (!ol.mask[i]) continue;
      ASSERT_LE(std::fabs(ol.data[i] - rl.data[i]), eb)
          << "level " << l << " cell " << i;
    }
  }
}

constexpr Method kAllMethods[] = {Method::kTac, Method::kOneD, Method::kZMesh,
                                  Method::kUpsample3D};

TEST(BackendRegistry, BuiltinsRegistered) {
  for (const Method m : kAllMethods) {
    const CompressorBackend* b = find_backend(m);
    ASSERT_NE(b, nullptr) << to_string(m);
    EXPECT_EQ(b->method(), m);
    EXPECT_STREQ(b->name(), to_string(m));
    EXPECT_EQ(&backend_for(m), b);
  }
  const auto methods = registered_methods();
  for (const Method m : kAllMethods)
    EXPECT_NE(std::find(methods.begin(), methods.end(), m), methods.end());
}

TEST(BackendRegistry, UnknownMethodThrowsDescriptively) {
  const auto unknown = static_cast<Method>(250);
  EXPECT_EQ(find_backend(unknown), nullptr);
  try {
    (void)backend_for(unknown);
    FAIL() << "backend_for should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("250"), std::string::npos);
  }
}

TEST(BackendRegistry, EveryMethodRoundTripsViaRegistry) {
  const auto ds = simnyx::generate_baryon_density(small_config({0.3, 0.7}));
  const TacConfig cfg = test_config();
  for (const Method m : kAllMethods) {
    const auto compressed = backend_for(m).compress(ds, cfg);
    EXPECT_EQ(compressed.report.method, m);
    EXPECT_EQ(peek_method(compressed.bytes), m);
    expect_amr_bounded(ds, decompress_any(compressed.bytes),
                       cfg.sz.error_bound);
  }
}

TEST(BackendRegistry, WrappersMatchRegistryBitIdentically) {
  const auto ds = simnyx::generate_baryon_density(small_config({0.3, 0.7}));
  const TacConfig cfg = test_config();
  EXPECT_EQ(tac_compress(ds, cfg).bytes,
            backend_for(Method::kTac).compress(ds, cfg).bytes);
  EXPECT_EQ(oned_compress(ds, cfg.sz).bytes,
            backend_for(Method::kOneD).compress(ds, cfg).bytes);
  EXPECT_EQ(zmesh_compress(ds, cfg.sz).bytes,
            backend_for(Method::kZMesh).compress(ds, cfg).bytes);
  EXPECT_EQ(upsample3d_compress(ds, cfg.sz).bytes,
            backend_for(Method::kUpsample3D).compress(ds, cfg).bytes);
}

// The parallel level pipeline must produce byte-identical containers at
// any worker count: levels and group streams compress into private chunks
// that are merged in deterministic order.
TEST(BackendRegistry, ParallelPipelineIsByteStableAcrossThreadCounts) {
  const auto ds = simnyx::generate_baryon_density(
      small_config({0.1, 0.3, 0.6}, 64));
  TacConfig cfg = test_config();
  cfg.level_error_bounds = {3e6, 2e6, 1e6};

  std::vector<std::vector<std::uint8_t>> reference;
  {
    ParallelismGuard serial(1);
    for (const Method m : kAllMethods)
      reference.push_back(backend_for(m).compress(ds, cfg).bytes);
  }
  const unsigned hw = []() {
    ParallelismGuard reset(0);
    return hardware_parallelism();
  }();
  for (const unsigned threads : {2u, 4u, hw}) {
    ParallelismGuard guard(threads);
    for (std::size_t i = 0; i < std::size(kAllMethods); ++i) {
      const auto bytes =
          backend_for(kAllMethods[i]).compress(ds, cfg).bytes;
      EXPECT_EQ(bytes, reference[i])
          << to_string(kAllMethods[i]) << " with " << threads << " threads";
    }
  }
  // The parallel container still decodes correctly.
  ParallelismGuard guard(4);
  const auto compressed = tac_compress(ds, cfg);
  EXPECT_EQ(compressed.bytes, reference[0]);
  expect_amr_bounded(ds, decompress_any(compressed.bytes),
                     cfg.level_error_bounds[0]);
}

TEST(BackendRegistry, ContainerRejectsUnknownMethodTag) {
  const auto ds = simnyx::generate_baryon_density(small_config({0.3, 0.7}));
  auto compressed = tac_compress(ds, test_config());
  // Byte 5 is the method tag (magic:4, version:1, method:1).
  compressed.bytes[5] = 123;
  try {
    (void)decompress_any(compressed.bytes);
    FAIL() << "decompress_any should have rejected the tag";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("method tag 123"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW((void)peek_method(compressed.bytes), std::runtime_error);
}

TEST(BackendRegistry, ContainerRejectsUnsupportedVersion) {
  const auto ds = simnyx::generate_baryon_density(small_config({0.3, 0.7}));
  auto compressed = tac_compress(ds, test_config());
  compressed.bytes[4] = kFormatVersion + 1;
  try {
    (void)peek_method(compressed.bytes);
    FAIL() << "peek_method should have rejected the version";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(BackendRegistry, ContainerRejectsTruncatedAndForeignHeaders) {
  EXPECT_THROW((void)peek_method({}), std::runtime_error);
  const std::vector<std::uint8_t> short_buf = {0x54, 0x41, 0x43};
  EXPECT_THROW((void)peek_method(short_buf), std::runtime_error);
  const std::vector<std::uint8_t> foreign = {0xde, 0xad, 0xbe, 0xef, 1, 0};
  try {
    (void)peek_method(foreign);
    FAIL() << "peek_method should have rejected the magic";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
  }
}

// A minimal lossless backend on a free tag: proves third-party methods
// plug in through the registry with no changes to decompress_any.
class RawBackend final : public CompressorBackend {
 public:
  static constexpr Method kTag = static_cast<Method>(200);

  [[nodiscard]] Method method() const override { return kTag; }
  [[nodiscard]] const char* name() const override { return "raw"; }

  [[nodiscard]] CompressedAmr compress(const amr::AmrDataset& ds,
                                       const TacConfig&) const override {
    ByteWriter w;
    PayloadIndexBuilder index =
        write_common_header(w, kTag, ds, ds.num_levels());
    for (std::size_t l = 0; l < ds.num_levels(); ++l) {
      const auto& data = ds.level(l).data;
      index.begin_payload();
      w.put_blob({reinterpret_cast<const std::uint8_t*>(data.span().data()),
                  data.size() * sizeof(double)});
      index.end_payload();
    }
    index.finish();
    CompressedAmr out;
    out.bytes = w.take();
    out.report.method = kTag;
    return out;
  }

  [[nodiscard]] amr::AmrDataset decompress(
      ByteReader& r, amr::AmrDataset skeleton,
      const CommonHeader&) const override {
    for (std::size_t l = 0; l < skeleton.num_levels(); ++l) {
      auto& lv = skeleton.level(l);
      const auto blob = r.get_blob();
      if (blob.size() != lv.data.size() * sizeof(double))
        throw std::runtime_error("raw backend: payload size mismatch");
      std::memcpy(lv.data.span().data(), blob.data(), blob.size());
    }
    return skeleton;
  }
};

TEST(BackendRegistry, CustomBackendPlugsIn) {
  register_backend(std::make_unique<RawBackend>());
  EXPECT_THROW(register_backend(std::make_unique<RawBackend>()),
               std::invalid_argument);  // duplicate tag
  EXPECT_THROW(register_backend(nullptr), std::invalid_argument);

  const auto ds = simnyx::generate_baryon_density(small_config({0.3, 0.7}));
  const auto compressed =
      backend_for(RawBackend::kTag).compress(ds, test_config());
  EXPECT_EQ(peek_method(compressed.bytes), RawBackend::kTag);
  expect_amr_bounded(ds, decompress_any(compressed.bytes), 0.0);
}

TEST(BackendRegistry, AdaptiveCompressDispatchesThroughRegistry) {
  const auto sparse =
      simnyx::generate_baryon_density(small_config({0.23, 0.77}));
  const auto dense =
      simnyx::generate_baryon_density(small_config({0.64, 0.36}));
  const TacConfig cfg = test_config();
  EXPECT_EQ(adaptive_compress(sparse, cfg).report.method, Method::kTac);
  EXPECT_EQ(adaptive_compress(dense, cfg).report.method,
            Method::kUpsample3D);
}

}  // namespace
}  // namespace tac::core
