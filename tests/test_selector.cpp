#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "amr/snapshot.hpp"
#include "common/parallel.hpp"
#include "common/simd.hpp"
#include "core/selector.hpp"
#include "lossless/codec.hpp"
#include "simnyx/generator.hpp"

/// The per-level adaptive backend selector (core/selector.hpp) and the
/// `auto` pseudo-backend: candidate filtering, deterministic sampling and
/// selection, mixed-method v4 containers, and the typed error on unknown
/// selector bytes.

namespace tac::core {
namespace {

using lossless::CodecProfile;

/// Pin the codec profile so trial byte counts — and therefore the
/// recorded winners — do not depend on the TAC_CODEC_PROFILE CI leg.
TacConfig auto_config(double abs_eb = 1e8) {
  TacConfig cfg;
  cfg.sz.mode = sz::ErrorBoundMode::kAbsolute;
  cfg.sz.error_bound = abs_eb;
  cfg.sz.profile = CodecProfile::kFast;
  return cfg;
}

/// The bench's Run1_Z10 preset at test scale: its finest level is dense
/// (TAC's 3D context wins) while the coarse level's layout favors the
/// plain 1D stream — a deterministic mixed-method container.
amr::AmrDataset mixed_winner_dataset() {
  return simnyx::generate_preset(simnyx::table1_presets(/*scale_shift=*/2)[0]);
}

CommonHeader header_of(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  return read_common_header(r);
}

/// Byte offset of index entry `i`'s selector byte inside a v4 container
/// (varint entry count is one byte for every dataset here).
std::size_t selector_byte_offset(const CommonHeader& h, std::size_t i) {
  EXPECT_LT(h.index.entries.size(), 128u);
  return h.index_offset + 1 + i * kPayloadEntryV4Bytes + kPayloadEntryV3Bytes;
}

TEST(Selector, AutoIsRegisteredButNotALevelCandidate) {
  const auto methods = registered_methods();
  EXPECT_NE(std::find(methods.begin(), methods.end(), Method::kAuto),
            methods.end());
  EXPECT_STREQ(backend_for(Method::kAuto).name(), "auto");
  EXPECT_FALSE(backend_for(Method::kAuto).supports_level_payloads());
  EXPECT_TRUE(backend_for(Method::kTac).supports_level_payloads());
  EXPECT_TRUE(backend_for(Method::kOneD).supports_level_payloads());
  EXPECT_FALSE(backend_for(Method::kZMesh).supports_level_payloads());
  EXPECT_FALSE(backend_for(Method::kUpsample3D).supports_level_payloads());
}

TEST(Selector, CandidateFilterKeepsOnlyLevelCapableBackends) {
  SelectorConfig cfg;  // empty candidate list = every registered backend
  const auto defaults = selector_candidates(cfg);
  EXPECT_EQ(defaults, (std::vector<Method>{Method::kTac, Method::kOneD}));

  cfg.candidates = {Method::kOneD, Method::kZMesh, Method::kOneD,
                    Method::kUpsample3D};
  EXPECT_EQ(selector_candidates(cfg), (std::vector<Method>{Method::kOneD}));

  cfg.candidates = {Method::kZMesh, Method::kUpsample3D};
  EXPECT_THROW((void)selector_candidates(cfg), std::invalid_argument);
}

TEST(Selector, RecordsPerLevelWinnersInTheV4Index) {
  const auto ds = mixed_winner_dataset();
  const TacConfig cfg = auto_config();
  const CompressedAmr out = backend_for(Method::kAuto).compress(ds, cfg);
  EXPECT_EQ(out.report.method, Method::kAuto);
  ASSERT_EQ(out.report.levels.size(), ds.num_levels());

  const CommonHeader h = header_of(out.bytes);
  EXPECT_EQ(h.version, kFormatVersion);
  ASSERT_EQ(h.index.entries.size(), ds.num_levels());
  std::set<Method> winners;
  for (std::size_t l = 0; l < ds.num_levels(); ++l) {
    const auto recorded = payload_method(h, l);
    ASSERT_TRUE(recorded.has_value()) << "level " << l;
    EXPECT_EQ(*recorded, out.report.levels[l].method) << "level " << l;
    EXPECT_GT(out.report.levels[l].selection_seconds, 0.0) << "level " << l;
    winners.insert(*recorded);
  }
  // The preset is chosen so the levels genuinely disagree: a container
  // whose every payload uses one method would not exercise the mixed
  // decode path at all.
  EXPECT_GE(winners.size(), 2u) << "expected a mixed-method container";
  EXPECT_TRUE(winners.count(Method::kTac));
  EXPECT_TRUE(winners.count(Method::kOneD));
}

TEST(Selector, MixedContainerRoundTripsWithinBound) {
  const auto ds = mixed_winner_dataset();
  const TacConfig cfg = auto_config();
  const CompressedAmr out = backend_for(Method::kAuto).compress(ds, cfg);

  // Full decode respects the error bound on every valid cell.
  const auto back = decompress_any(out.bytes);
  ASSERT_EQ(back.num_levels(), ds.num_levels());
  for (std::size_t l = 0; l < ds.num_levels(); ++l) {
    const auto& orig = ds.level(l);
    const auto& dec = back.level(l);
    ASSERT_EQ(dec.dims().volume(), orig.dims().volume());
    for (std::size_t i = 0; i < orig.data.size(); ++i) {
      if (!orig.mask[i]) continue;
      ASSERT_LE(std::abs(orig.data[i] - dec.data[i]), cfg.sz.error_bound)
          << "level " << l << " cell " << i;
    }
  }

  // Indexed single-level decode dispatches each payload to the recorded
  // backend and matches the full decode byte-for-byte.
  for (std::size_t l = 0; l < ds.num_levels(); ++l) {
    const amr::AmrLevel lv = decompress_level(out.bytes, l);
    ASSERT_EQ(lv.data.size(), back.level(l).data.size());
    EXPECT_EQ(std::memcmp(lv.data.span().data(),
                          back.level(l).data.span().data(),
                          lv.data.size() * sizeof(double)),
              0)
        << "level " << l;
  }
}

// Same input + seed -> same winners and a byte-identical container at any
// thread count, SIMD or scalar (the default kRatio objective compares
// trial byte counts, which are deterministic by construction).
TEST(Selector, AutoContainerStableAcrossThreadsAndSimd) {
  const auto ds = mixed_winner_dataset();
  const TacConfig cfg = auto_config();

  std::vector<std::uint8_t> reference;
  {
    ParallelismGuard serial(1);
    reference = backend_for(Method::kAuto).compress(ds, cfg).bytes;
  }
  for (const unsigned threads : {2u, 4u}) {
    ParallelismGuard guard(threads);
    EXPECT_EQ(backend_for(Method::kAuto).compress(ds, cfg).bytes, reference)
        << threads << " threads";
  }
  {
    ParallelismGuard guard(2);
    simd::force_scalar(true);
    const auto scalar_bytes =
        backend_for(Method::kAuto).compress(ds, cfg).bytes;
    simd::force_scalar(false);
    EXPECT_EQ(scalar_bytes, reference);
  }
}

TEST(Selector, SamplingSeedIsPartOfTheContract) {
  const auto ds = mixed_winner_dataset();
  TacConfig cfg = auto_config();
  const auto a = backend_for(Method::kAuto).compress(ds, cfg).bytes;
  const auto a2 = backend_for(Method::kAuto).compress(ds, cfg).bytes;
  EXPECT_EQ(a, a2);  // same seed -> same bytes

  // A different seed may sample different blocks; whatever it picks must
  // still decode correctly.
  cfg.selector.seed = 12345;
  const auto b = backend_for(Method::kAuto).compress(ds, cfg).bytes;
  const auto back = decompress_any(b);
  EXPECT_EQ(back.num_levels(), ds.num_levels());
}

TEST(Selector, UnknownSelectorByteIsATypedError) {
  const auto ds = mixed_winner_dataset();
  const CompressedAmr out =
      backend_for(Method::kAuto).compress(ds, auto_config());
  const CommonHeader h = header_of(out.bytes);

  // Payload CRCs do not cover the index, so a damaged selector byte must
  // be caught by the header parse — as a SelectorError naming the byte —
  // not by a checksum or a decoder misparse.
  auto damaged = out.bytes;
  damaged[selector_byte_offset(h, 0)] = 250;
  try {
    (void)decompress_any(damaged);
    FAIL() << "decompress_any should have rejected the selector byte";
  } catch (const SelectorError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("selector"), std::string::npos) << msg;
    EXPECT_NE(msg.find("250"), std::string::npos) << msg;
  }
}

TEST(Selector, FixedBackendsStampTheirOwnTag) {
  const auto ds = mixed_winner_dataset();
  const TacConfig cfg = auto_config();
  for (const Method m : {Method::kTac, Method::kOneD, Method::kZMesh,
                         Method::kUpsample3D}) {
    const auto bytes = backend_for(m).compress(ds, cfg).bytes;
    const CommonHeader h = header_of(bytes);
    ASSERT_FALSE(h.index.entries.empty());
    for (std::size_t i = 0; i < h.index.entries.size(); ++i) {
      const auto recorded = payload_method(h, i);
      ASSERT_TRUE(recorded.has_value()) << to_string(m) << " payload " << i;
      EXPECT_EQ(*recorded, m) << to_string(m) << " payload " << i;
    }
  }
}

TEST(Selector, EmptyLevelPicksLowestTagDeterministically) {
  // Two-level dataset whose coarse level is entirely empty: there is
  // nothing to trial-compress, so the selector must not probe at all and
  // must still produce a decodable payload.
  amr::AmrLevel fine(Dims3{16, 16, 16});
  for (std::size_t i = 0; i < fine.data.size(); ++i) {
    fine.data[i] = static_cast<double>(i % 97) * 1e6;
    fine.mask[i] = 1;
  }
  amr::AmrLevel coarse(Dims3{8, 8, 8});  // all cells masked out
  std::vector<amr::AmrLevel> levels;
  levels.push_back(std::move(fine));
  levels.push_back(std::move(coarse));
  const amr::AmrDataset ds("field", std::move(levels), 2);

  const CompressedAmr out =
      backend_for(Method::kAuto).compress(ds, auto_config(1e3));
  ASSERT_EQ(out.report.levels.size(), 2u);
  EXPECT_EQ(out.report.levels[1].method, Method::kTac);  // lowest tag
  const auto back = decompress_any(out.bytes);
  EXPECT_EQ(back.level(1).valid_count(), 0u);
}

TEST(Selector, SnapshotCompressesPerFieldWithAuto) {
  const auto ds = mixed_winner_dataset();
  amr::Snapshot s;
  s.fields.push_back(ds);
  s.fields.push_back(ds);
  s.fields[1] = [&] {
    auto copy = ds;
    // second field: same structure, shifted values
    for (auto& lv : copy.levels())
      for (std::size_t i = 0; i < lv.data.size(); ++i)
        if (lv.mask[i]) lv.data[i] += 1e7;
    return copy;
  }();

  const TacConfig cfg = auto_config();
  const auto bytes = compress_snapshot(s, cfg, Method::kAuto);
  for (const auto& name : snapshot_field_names(bytes)) {
    const auto field_bytes = snapshot_field_bytes(bytes, name);
    EXPECT_EQ(peek_method(field_bytes), Method::kAuto) << name;
    const CommonHeader h = header_of(field_bytes);
    for (std::size_t l = 0; l < h.index.entries.size(); ++l)
      EXPECT_TRUE(payload_method(h, l).has_value()) << name << " level " << l;
  }
  const amr::Snapshot back = decompress_snapshot(bytes);
  ASSERT_EQ(back.fields.size(), 2u);
  for (std::size_t f = 0; f < 2; ++f)
    for (std::size_t l = 0; l < ds.num_levels(); ++l) {
      const auto& orig = s.fields[f].level(l);
      const auto& dec = back.fields[f].level(l);
      for (std::size_t i = 0; i < orig.data.size(); ++i) {
        if (orig.mask[i]) {
          ASSERT_LE(std::abs(orig.data[i] - dec.data[i]), cfg.sz.error_bound)
              << "field " << f << " level " << l;
        }
      }
    }
}

}  // namespace
}  // namespace tac::core
