#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "core/tac.hpp"
#include "simnyx/generator.hpp"
#include "sz/sz.hpp"

namespace tac::sz {
namespace {

/// Every nonzero finite value within the point-wise relative bound; zeros
/// and non-finite values bitwise exact.
template <class T>
void expect_pwrel_bounded(std::span<const T> orig, std::span<const T> recon,
                          double rel) {
  ASSERT_EQ(orig.size(), recon.size());
  for (std::size_t i = 0; i < orig.size(); ++i) {
    const double v = static_cast<double>(orig[i]);
    if (v == 0.0 || !std::isfinite(v)) {
      EXPECT_EQ(std::memcmp(&orig[i], &recon[i], sizeof(T)), 0)
          << "exception not exact at " << i;
      continue;
    }
    const double err = std::fabs(static_cast<double>(recon[i]) - v);
    EXPECT_LE(err, rel * std::fabs(v) * (1.0 + 1e-12))
        << "at " << i << " value " << v;
    // Sign must survive the log transform.
    EXPECT_EQ(std::signbit(static_cast<double>(recon[i])),
              std::signbit(v));
  }
}

std::vector<double> lognormal_values(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> g(0, 2.0);
  std::vector<double> v(n);
  for (auto& x : v) x = 1e9 * std::exp(g(rng));
  return v;
}

TEST(PwRel, BoundHoldsAcrossDecades) {
  const Dims3 d{16, 16, 16};
  const auto v = lognormal_values(d.volume(), 1);
  const SzConfig cfg{.mode = ErrorBoundMode::kPointwiseRelative,
                     .error_bound = 1e-3};
  const auto back = decompress<double>(compress<double>(v, d, cfg));
  expect_pwrel_bounded<double>(v, back, 1e-3);
}

TEST(PwRel, NegativeValuesKeepSign) {
  const Dims3 d{8, 8, 8};
  auto v = lognormal_values(d.volume(), 2);
  for (std::size_t i = 0; i < v.size(); i += 3) v[i] = -v[i];
  const SzConfig cfg{.mode = ErrorBoundMode::kPointwiseRelative,
                     .error_bound = 1e-2};
  const auto back = decompress<double>(compress<double>(v, d, cfg));
  expect_pwrel_bounded<double>(v, back, 1e-2);
}

TEST(PwRel, ZerosAndNonFiniteExact) {
  const Dims3 d{8, 8, 1};
  std::vector<double> v(d.volume(), 2.5);
  v[3] = 0.0;
  v[10] = -0.0;
  v[20] = std::numeric_limits<double>::quiet_NaN();
  v[40] = std::numeric_limits<double>::infinity();
  const SzConfig cfg{.mode = ErrorBoundMode::kPointwiseRelative,
                     .error_bound = 1e-3};
  const auto back = decompress<double>(compress<double>(v, d, cfg));
  EXPECT_EQ(back[3], 0.0);
  EXPECT_TRUE(std::signbit(back[10]));
  EXPECT_EQ(back[10], 0.0);
  EXPECT_TRUE(std::isnan(back[20]));
  EXPECT_EQ(back[40], std::numeric_limits<double>::infinity());
  expect_pwrel_bounded<double>(v, back, 1e-3);
}

TEST(PwRel, BeatsAbsoluteBoundOnWideDynamicRange) {
  // With values spanning ~8 decades, the small values are annihilated by
  // any useful absolute bound; the point-wise mode preserves their
  // relative accuracy.
  const Dims3 d{16, 16, 16};
  const auto v = lognormal_values(d.volume(), 3);
  const SzConfig cfg{.mode = ErrorBoundMode::kPointwiseRelative,
                     .error_bound = 1e-2};
  const auto back = decompress<double>(compress<double>(v, d, cfg));
  double worst_rel = 0;
  for (std::size_t i = 0; i < v.size(); ++i)
    worst_rel = std::max(worst_rel, std::fabs(back[i] - v[i]) /
                                        std::fabs(v[i]));
  EXPECT_LE(worst_rel, 1e-2);
}

TEST(PwRel, FloatTypeRoundTrip) {
  const Dims3 d{8, 8, 8};
  const auto vd = lognormal_values(d.volume(), 4);
  std::vector<float> v(vd.begin(), vd.end());
  // Float rounding of log/exp consumes ~1e-7 of the margin; use a bound
  // comfortably above it.
  const SzConfig cfg{.mode = ErrorBoundMode::kPointwiseRelative,
                     .error_bound = 1e-3};
  const auto back = decompress<float>(compress<float>(v, d, cfg));
  expect_pwrel_bounded<float>(v, back, 1e-3);
}

TEST(PwRel, RejectsNonPositiveBound) {
  const Dims3 d{4, 4, 4};
  const std::vector<double> v(d.volume(), 1.0);
  SzConfig cfg{.mode = ErrorBoundMode::kPointwiseRelative,
               .error_bound = 0.0};
  EXPECT_THROW((void)compress<double>(v, d, cfg), std::invalid_argument);
}

TEST(PwRel, PeekReportsMode) {
  const Dims3 d{8, 8, 8};
  const auto v = lognormal_values(d.volume(), 5);
  const SzConfig cfg{.mode = ErrorBoundMode::kPointwiseRelative,
                     .error_bound = 1e-3};
  const auto c = compress<double>(v, d, cfg);
  const auto info = peek(c);
  EXPECT_EQ(info.block_dims, d);
  EXPECT_FALSE(info.constant);
}

TEST(PwRel, BatchedBlocks) {
  const Dims3 block{8, 8, 8};
  std::vector<double> v;
  for (unsigned b = 0; b < 5; ++b) {
    const auto f = lognormal_values(block.volume(), 10 + b);
    v.insert(v.end(), f.begin(), f.end());
  }
  const SzConfig cfg{.mode = ErrorBoundMode::kPointwiseRelative,
                     .error_bound = 1e-3};
  const auto back = decompress<double>(compress<double>(v, block, cfg, 5));
  expect_pwrel_bounded<double>(v, back, 1e-3);
}

TEST(PwRel, DeterministicOutput) {
  const Dims3 d{8, 8, 8};
  const auto v = lognormal_values(d.volume(), 6);
  const SzConfig cfg{.mode = ErrorBoundMode::kPointwiseRelative,
                     .error_bound = 1e-4};
  EXPECT_EQ(compress<double>(v, d, cfg), compress<double>(v, d, cfg));
}

class PwRelBoundSweep : public ::testing::TestWithParam<double> {};

TEST_P(PwRelBoundSweep, BoundHolds) {
  const double rel = GetParam();
  const Dims3 d{12, 12, 12};
  const auto v = lognormal_values(d.volume(), 42);
  const SzConfig cfg{.mode = ErrorBoundMode::kPointwiseRelative,
                     .error_bound = rel};
  const auto back = decompress<double>(compress<double>(v, d, cfg));
  expect_pwrel_bounded<double>(v, back, rel);
}

INSTANTIATE_TEST_SUITE_P(Bounds, PwRelBoundSweep,
                         ::testing::Values(1e-6, 1e-4, 1e-2, 0.1, 0.5));

TEST(PwRelTac, FlowsThroughTacPipeline) {
  simnyx::GeneratorConfig gc;
  gc.finest_dims = {32, 32, 32};
  gc.level_densities = {0.3, 0.7};
  gc.region_size = 8;
  const auto ds = simnyx::generate_baryon_density(gc);

  core::TacConfig cfg;
  cfg.sz.mode = ErrorBoundMode::kPointwiseRelative;
  cfg.sz.error_bound = 1e-3;
  const auto compressed = core::tac_compress(ds, cfg);
  const auto back = core::decompress_any(compressed.bytes);
  for (std::size_t l = 0; l < ds.num_levels(); ++l) {
    const auto& ol = ds.level(l);
    const auto& rl = back.level(l);
    for (std::size_t i = 0; i < ol.data.size(); ++i) {
      if (!ol.mask[i]) continue;
      EXPECT_LE(std::fabs(rl.data[i] - ol.data[i]),
                1e-3 * std::fabs(ol.data[i]) * (1 + 1e-12));
    }
  }
}

}  // namespace
}  // namespace tac::sz
