#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "amr/uniform.hpp"
#include "analysis/metrics.hpp"
#include "core/adaptive.hpp"
#include "core/baselines.hpp"
#include "core/tac.hpp"
#include "simnyx/generator.hpp"
#include "sz/sz.hpp"

/// Cross-product integration tests: every pre-process strategy combined
/// with every error-bound mode, block size and predictor must satisfy the
/// error-bound contract end to end.

namespace tac {
namespace {

amr::AmrDataset dataset_with_density(double finest_density,
                                     std::size_t n = 32) {
  simnyx::GeneratorConfig gc;
  gc.finest_dims = {n, n, n};
  gc.level_densities = {finest_density, 1.0 - finest_density};
  gc.region_size = 8;
  gc.seed = 2026;
  return simnyx::generate_baryon_density(gc);
}

/// Returns the worst error / bound ratio over all valid cells, where the
/// bound is evaluated per the stream's mode.
double worst_ratio(const amr::AmrDataset& orig, const amr::AmrDataset& recon,
                   const core::CompressReport& report,
                   sz::ErrorBoundMode mode, double eb) {
  double worst = 0;
  for (std::size_t l = 0; l < orig.num_levels(); ++l) {
    const auto& ol = orig.level(l);
    const auto& rl = recon.level(l);
    double bound = 0;
    if (mode == sz::ErrorBoundMode::kAbsolute) {
      bound = eb;
    } else if (mode == sz::ErrorBoundMode::kRelative) {
      bound = l < report.levels.size() ? report.levels[l].abs_error_bound
                                       : eb;
    }
    for (std::size_t i = 0; i < ol.data.size(); ++i) {
      if (!ol.mask[i]) continue;
      const double err = std::fabs(ol.data[i] - rl.data[i]);
      const double b = mode == sz::ErrorBoundMode::kPointwiseRelative
                           ? eb * std::fabs(ol.data[i])
                           : bound;
      if (b > 0) worst = std::max(worst, err / b);
    }
  }
  return worst;
}

using Combo = std::tuple<core::Strategy, sz::ErrorBoundMode, std::size_t,
                         sz::Predictor>;

class StrategyModeMatrix : public ::testing::TestWithParam<Combo> {};

TEST_P(StrategyModeMatrix, ErrorBoundContractHolds) {
  const auto [strategy, mode, block_size, predictor] = GetParam();
  const auto ds = dataset_with_density(0.4);

  core::TacConfig cfg;
  cfg.sz.mode = mode;
  cfg.sz.predictor = predictor;
  cfg.sz.error_bound = mode == sz::ErrorBoundMode::kAbsolute ? 1e6 : 1e-3;
  cfg.block_size = block_size;
  cfg.force_strategy = strategy;

  const auto compressed = core::tac_compress(ds, cfg);
  const auto back = core::decompress_any(compressed.bytes);
  const double ratio = worst_ratio(ds, back, compressed.report, mode,
                                   cfg.sz.error_bound);
  EXPECT_LE(ratio, 1.0 + 1e-9);
}

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  const auto [strategy, mode, block, predictor] = info.param;
  std::string name = core::to_string(strategy);
  name += mode == sz::ErrorBoundMode::kAbsolute     ? "_abs"
          : mode == sz::ErrorBoundMode::kRelative   ? "_rel"
                                                    : "_pwrel";
  name += "_b" + std::to_string(block);
  name += predictor == sz::Predictor::kLorenzo ? "_lor" : "_hyb";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, StrategyModeMatrix,
    ::testing::Combine(
        ::testing::Values(core::Strategy::kOpST, core::Strategy::kAKDTree,
                          core::Strategy::kGSP),
        ::testing::Values(sz::ErrorBoundMode::kAbsolute,
                          sz::ErrorBoundMode::kRelative,
                          sz::ErrorBoundMode::kPointwiseRelative),
        ::testing::Values(std::size_t{4}, std::size_t{8}),
        ::testing::Values(sz::Predictor::kLorenzo, sz::Predictor::kHybrid)),
    combo_name);

TEST(Integration, AllMethodsAgreeOnStructure) {
  // Compress the same dataset with all four methods; reconstructions must
  // agree exactly on structure and within 2x eb with each other.
  const auto ds = dataset_with_density(0.3);
  const sz::SzConfig scfg{.error_bound = 1e6};
  core::TacConfig tcfg;
  tcfg.sz = scfg;
  const auto r_tac = core::decompress_any(core::tac_compress(ds, tcfg).bytes);
  const auto r_1d = core::decompress_any(core::oned_compress(ds, scfg).bytes);
  const auto r_zm =
      core::decompress_any(core::zmesh_compress(ds, scfg).bytes);
  const auto r_3d =
      core::decompress_any(core::upsample3d_compress(ds, scfg).bytes);
  for (std::size_t l = 0; l < ds.num_levels(); ++l) {
    const auto& a = r_tac.level(l);
    for (const auto* other : {&r_1d, &r_zm, &r_3d}) {
      const auto& b = other->level(l);
      ASSERT_EQ(a.mask, b.mask);
      for (std::size_t i = 0; i < a.data.size(); ++i) {
        if (a.mask[i]) {
          EXPECT_LE(std::fabs(a.data[i] - b.data[i]), 2e6 + 1e-9);
        }
      }
    }
  }
}

TEST(Integration, UniformCompositionMatchesLevelwiseBound) {
  // The uniform view used for PSNR/post-analysis inherits the level-wise
  // bound: every uniform cell is a replicated valid cell.
  const auto ds = dataset_with_density(0.35);
  core::TacConfig cfg;
  cfg.sz.error_bound = 1e6;
  const auto back = core::decompress_any(core::tac_compress(ds, cfg).bytes);
  const auto u_orig = amr::compose_uniform(ds);
  const auto u_back = amr::compose_uniform(back);
  const auto stats = analysis::distortion(u_orig.span(), u_back.span());
  EXPECT_LE(stats.max_abs_error, 1e6 + 1e-9);
}

TEST(Integration, StreamInfoByteBreakdownAddsUp) {
  const Dims3 d{32, 32, 32};
  std::vector<double> v(d.volume());
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = std::sin(0.05 * static_cast<double>(i)) * 100.0 +
           static_cast<double>(i % 13);
  const auto bytes =
      sz::compress<double>(v, d, sz::SzConfig{.error_bound = 0.01});
  const auto info = sz::peek(bytes);
  EXPECT_GT(info.huffman_bytes, 0u);
  EXPECT_EQ(info.huffman_bytes + info.outlier_bytes + info.metadata_bytes,
            bytes.size());
}

TEST(Integration, AdaptiveMatchesManualSelection) {
  for (const double density : {0.2, 0.7}) {
    const auto ds = dataset_with_density(density);
    core::TacConfig cfg;
    cfg.sz.error_bound = 1e6;
    const auto method = core::adaptive_select(ds, cfg);
    const auto compressed = core::adaptive_compress(ds, cfg);
    EXPECT_EQ(compressed.report.method, method);
    const auto manual = method == core::Method::kTac
                            ? core::tac_compress(ds, cfg)
                            : core::upsample3d_compress(ds, cfg.sz);
    EXPECT_EQ(compressed.bytes, manual.bytes);
  }
}

}  // namespace
}  // namespace tac
