#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "zfplike/transform_coder.hpp"

namespace tac::zfplike {
namespace {

void expect_bounded(std::span<const double> orig,
                    std::span<const double> recon, double eb) {
  ASSERT_EQ(orig.size(), recon.size());
  for (std::size_t i = 0; i < orig.size(); ++i) {
    if (std::isfinite(orig[i])) {
      EXPECT_LE(std::fabs(orig[i] - recon[i]), eb) << "at " << i;
    }
  }
}

std::vector<double> smooth_field(Dims3 d, unsigned seed = 3) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> jitter(-0.01, 0.01);
  std::vector<double> v(d.volume());
  for (std::size_t z = 0; z < d.nz; ++z)
    for (std::size_t y = 0; y < d.ny; ++y)
      for (std::size_t x = 0; x < d.nx; ++x)
        v[d.index(x, y, z)] =
            std::sin(0.2 * static_cast<double>(x)) *
                std::cos(0.1 * static_cast<double>(y + z)) +
            jitter(rng);
  return v;
}

TEST(Transform, ForwardInverseIdentity) {
  std::mt19937 rng(1);
  std::uniform_real_distribution<double> u(-100, 100);
  double block[64], orig[64];
  for (int i = 0; i < 64; ++i) orig[i] = block[i] = u(rng);
  forward_transform(block);
  inverse_transform(block);
  for (int i = 0; i < 64; ++i)
    EXPECT_NEAR(block[i], orig[i], 1e-10 * std::fabs(orig[i]) + 1e-12);
}

TEST(Transform, ConstantBlockConcentratesInDc) {
  double block[64];
  std::fill(block, block + 64, 7.5);
  forward_transform(block);
  EXPECT_NEAR(block[0], 7.5, 1e-12);  // DC term = mean
  for (int i = 1; i < 64; ++i) EXPECT_NEAR(block[i], 0.0, 1e-12);
}

TEST(Transform, LinearRampHasSparseSpectrum) {
  // A ramp concentrates energy in DC + first-order terms; most of the 64
  // coefficients must vanish — the decorrelation the coder relies on.
  double block[64];
  for (std::size_t z = 0; z < 4; ++z)
    for (std::size_t y = 0; y < 4; ++y)
      for (std::size_t x = 0; x < 4; ++x)
        block[x + 4 * (y + 4 * z)] = static_cast<double>(x) +
                                     2.0 * static_cast<double>(y) -
                                     static_cast<double>(z);
  forward_transform(block);
  int nonzero = 0;
  for (int i = 0; i < 64; ++i)
    if (std::fabs(block[i]) > 1e-9) ++nonzero;
  EXPECT_LE(nonzero, 16);
}

TEST(Coder, RoundTripWithinBound) {
  const Dims3 d{32, 32, 32};
  const auto v = smooth_field(d);
  const TransformConfig cfg{.abs_error_bound = 1e-3};
  const auto back = decompress(compress(v, d, cfg));
  expect_bounded(v, back, 1e-3);
}

TEST(Coder, SmoothDataCompresses) {
  const Dims3 d{64, 64, 64};
  const auto v = smooth_field(d);
  const TransformConfig cfg{.abs_error_bound = 1e-2};
  const auto c = compress(v, d, cfg);
  EXPECT_GT(static_cast<double>(v.size() * 8) /
                static_cast<double>(c.size()),
            8.0);
}

TEST(Coder, NonMultipleOfFourDims) {
  const Dims3 d{13, 7, 5};
  const auto v = smooth_field(d, 9);
  const TransformConfig cfg{.abs_error_bound = 1e-3};
  expect_bounded(v, decompress(compress(v, d, cfg)), 1e-3);
}

TEST(Coder, HugeDynamicRange) {
  const Dims3 d{16, 16, 16};
  std::mt19937 rng(5);
  std::normal_distribution<double> g(0, 2);
  std::vector<double> v(d.volume());
  for (auto& x : v) x = 1e9 * std::exp(g(rng));
  const TransformConfig cfg{.abs_error_bound = 1e5};
  expect_bounded(v, decompress(compress(v, d, cfg)), 1e5);
}

TEST(Coder, NonFiniteValuesSurvive) {
  const Dims3 d{8, 8, 8};
  auto v = smooth_field(d, 7);
  v[10] = std::numeric_limits<double>::quiet_NaN();
  v[100] = std::numeric_limits<double>::infinity();
  const TransformConfig cfg{.abs_error_bound = 1e-3};
  const auto back = decompress(compress(v, d, cfg));
  EXPECT_TRUE(std::isnan(back[10]));
  EXPECT_TRUE(std::isinf(back[100]));
  // Cells in the same blocks still meet the bound.
  expect_bounded(v, back, 1e-3);
}

TEST(Coder, DeterministicOutput) {
  const Dims3 d{16, 16, 16};
  const auto v = smooth_field(d, 8);
  const TransformConfig cfg{.abs_error_bound = 1e-4};
  EXPECT_EQ(compress(v, d, cfg), compress(v, d, cfg));
}

TEST(Coder, RejectsBadBound) {
  const Dims3 d{4, 4, 4};
  const std::vector<double> v(64, 1.0);
  EXPECT_THROW((void)compress(v, d, TransformConfig{.abs_error_bound = 0}),
               std::invalid_argument);
}

TEST(Coder, TruncatedStreamThrows) {
  const Dims3 d{16, 16, 16};
  const auto v = smooth_field(d, 10);
  auto c = compress(v, d, TransformConfig{.abs_error_bound = 1e-3});
  c.resize(c.size() / 3);
  EXPECT_THROW((void)decompress(c), std::exception);
}

class CoderBoundSweep : public ::testing::TestWithParam<double> {};

TEST_P(CoderBoundSweep, BoundHolds) {
  const Dims3 d{24, 24, 24};
  const auto v = smooth_field(d, 11);
  const TransformConfig cfg{.abs_error_bound = GetParam()};
  expect_bounded(v, decompress(compress(v, d, cfg)), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Bounds, CoderBoundSweep,
                         ::testing::Values(1e-6, 1e-4, 1e-2, 1.0));

}  // namespace
}  // namespace tac::zfplike
