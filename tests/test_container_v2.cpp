#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "amr/snapshot.hpp"
#include "common/crc32.hpp"
#include "core/adaptive.hpp"
#include "core/backend.hpp"
#include "core/baselines.hpp"
#include "core/tac.hpp"
#include "simnyx/generator.hpp"

/// Container format v2: payload index, per-payload CRC32 checksums,
/// random-access partial decompression and v1 backward compatibility.

namespace tac::core {
namespace {

constexpr Method kAllMethods[] = {Method::kTac, Method::kOneD, Method::kZMesh,
                                  Method::kUpsample3D};

amr::AmrDataset small_dataset(std::size_t n = 32,
                              std::vector<double> densities = {0.3, 0.7}) {
  simnyx::GeneratorConfig gc;
  gc.finest_dims = {n, n, n};
  gc.level_densities = std::move(densities);
  gc.region_size = 8;
  gc.seed = 2024;
  return simnyx::generate_baryon_density(gc);
}

TacConfig test_config() {
  TacConfig cfg;
  cfg.sz.mode = sz::ErrorBoundMode::kAbsolute;
  cfg.sz.error_bound = 1e6;
  return cfg;
}

std::vector<std::uint8_t> compress_with(Method m, const amr::AmrDataset& ds) {
  return backend_for(m).compress(ds, test_config()).bytes;
}

CommonHeader header_of(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  return read_common_header(r);
}

/// Rebuilds the v1 serialization of a v2 container: v1 is byte-identical
/// except for the version byte and the absent payload index.
std::vector<std::uint8_t> downgrade_to_v1(
    const std::vector<std::uint8_t>& v2) {
  const CommonHeader h = header_of(v2);
  std::vector<std::uint8_t> v1(v2.begin(),
                               v2.begin() + static_cast<long>(h.index_offset));
  v1.insert(v1.end(), v2.begin() + static_cast<long>(h.payload_offset),
            v2.end());
  v1[4] = 1;  // magic:4 bytes, then the format version byte
  return v1;
}

TEST(ContainerV2, HeaderCarriesPayloadIndex) {
  const auto ds = small_dataset();
  for (const Method m : kAllMethods) {
    const auto bytes = compress_with(m, ds);
    const CommonHeader h = header_of(bytes);
    EXPECT_EQ(h.version, kFormatVersion);
    const std::size_t expected_payloads =
        (m == Method::kTac || m == Method::kOneD) ? ds.num_levels() : 1u;
    ASSERT_EQ(h.index.entries.size(), expected_payloads) << to_string(m);

    // Entries tile the byte range [payload_offset, size) contiguously.
    std::uint64_t cursor = h.payload_offset;
    for (const PayloadEntry& e : h.index.entries) {
      EXPECT_EQ(e.offset, cursor) << to_string(m);
      cursor += e.length;
    }
    EXPECT_EQ(cursor, bytes.size()) << to_string(m);
    EXPECT_NO_THROW(verify_payloads(bytes, h.index)) << to_string(m);
  }
}

TEST(ContainerV2, DecompressLevelMatchesFullDecodeForEveryBackend) {
  const auto ds = small_dataset(32, {0.1, 0.3, 0.6});
  for (const Method m : kAllMethods) {
    const auto bytes = compress_with(m, ds);
    const auto full = decompress_any(bytes);
    for (std::size_t l = 0; l < ds.num_levels(); ++l) {
      const amr::AmrLevel lv = decompress_level(bytes, l);
      ASSERT_EQ(lv.dims().volume(), full.level(l).dims().volume())
          << to_string(m) << " level " << l;
      // Byte-identical, not approximately equal: partial decode must
      // reproduce exactly the slice a full decode yields.
      EXPECT_TRUE(std::memcmp(lv.data.span().data(),
                              full.level(l).data.span().data(),
                              lv.data.size() * sizeof(double)) == 0)
          << to_string(m) << " level " << l;
      EXPECT_TRUE(lv.mask == full.level(l).mask)
          << to_string(m) << " level " << l;
    }
  }
}

TEST(ContainerV2, DecompressLevelOutOfRangeThrows) {
  const auto ds = small_dataset();
  for (const Method m : kAllMethods) {
    const auto bytes = compress_with(m, ds);
    EXPECT_THROW((void)decompress_level(bytes, ds.num_levels()),
                 std::out_of_range)
        << to_string(m);
  }
}

TEST(ContainerV2, AnySingleByteCorruptionInPayloadIsChecksumError) {
  const auto ds = small_dataset();
  for (const Method m : kAllMethods) {
    const auto bytes = compress_with(m, ds);
    const CommonHeader h = header_of(bytes);
    for (std::size_t i = 0; i < h.index.entries.size(); ++i) {
      const PayloadEntry& e = h.index.entries[i];
      // Corrupt the first, middle and last byte of the payload.
      for (const std::uint64_t rel : {std::uint64_t{0}, e.length / 2,
                                      e.length - 1}) {
        auto corrupted = bytes;
        corrupted[static_cast<std::size_t>(e.offset + rel)] ^= 0x40;
        EXPECT_THROW((void)decompress_any(corrupted), ChecksumError)
            << to_string(m) << " payload " << i << " byte " << rel;
      }
    }
  }
}

TEST(ContainerV2, PartialDecodeCatchesItsOwnPayloadCorruption) {
  const auto ds = small_dataset();
  for (const Method m : {Method::kTac, Method::kOneD}) {
    const auto bytes = compress_with(m, ds);
    const CommonHeader h = header_of(bytes);
    ASSERT_EQ(h.index.entries.size(), ds.num_levels());
    for (std::size_t l = 0; l < ds.num_levels(); ++l) {
      auto corrupted = bytes;
      const PayloadEntry& e = h.index.entries[l];
      corrupted[static_cast<std::size_t>(e.offset + e.length / 2)] ^= 0x01;
      EXPECT_THROW((void)decompress_level(corrupted, l), ChecksumError)
          << to_string(m) << " level " << l;
      // The other levels' payloads are untouched: partial decode of a
      // clean level still succeeds on the corrupted container.
      for (std::size_t other = 0; other < ds.num_levels(); ++other) {
        if (other == l) continue;
        EXPECT_NO_THROW((void)decompress_level(corrupted, other))
            << to_string(m) << " corrupt " << l << " read " << other;
      }
    }
  }
}

TEST(ContainerV2, TruncationAtEveryIndexBoundaryThrows) {
  const auto ds = small_dataset();
  for (const Method m : kAllMethods) {
    const auto bytes = compress_with(m, ds);
    const CommonHeader h = header_of(bytes);
    std::vector<std::size_t> cuts = {h.index_offset, h.index_offset + 1,
                                     h.payload_offset};
    for (const PayloadEntry& e : h.index.entries) {
      cuts.push_back(static_cast<std::size_t>(e.offset));
      cuts.push_back(static_cast<std::size_t>(e.offset + e.length / 2));
      cuts.push_back(static_cast<std::size_t>(e.offset + e.length) - 1);
    }
    for (const std::size_t cut : cuts) {
      ASSERT_LT(cut, bytes.size());
      const std::vector<std::uint8_t> truncated(
          bytes.begin(), bytes.begin() + static_cast<long>(cut));
      EXPECT_THROW((void)decompress_any(truncated), std::exception)
          << to_string(m) << " cut at " << cut;
    }
  }
}

TEST(ContainerV2, V1ContainersStillDecode) {
  const auto ds = small_dataset(32, {0.1, 0.3, 0.6});
  for (const Method m : kAllMethods) {
    const auto v2 = compress_with(m, ds);
    const auto v1 = downgrade_to_v1(v2);
    ASSERT_LT(v1.size(), v2.size());
    EXPECT_EQ(peek_method(v1), m);

    const CommonHeader h = header_of(v1);
    EXPECT_EQ(h.version, 1);
    EXPECT_TRUE(h.index.entries.empty());
    EXPECT_EQ(h.index_offset, h.payload_offset);

    const auto from_v1 = decompress_any(v1);
    const auto from_v2 = decompress_any(v2);
    ASSERT_EQ(from_v1.num_levels(), from_v2.num_levels());
    for (std::size_t l = 0; l < from_v1.num_levels(); ++l)
      EXPECT_TRUE(std::memcmp(from_v1.level(l).data.span().data(),
                              from_v2.level(l).data.span().data(),
                              from_v1.level(l).data.size() *
                                  sizeof(double)) == 0)
          << to_string(m) << " level " << l;

    // Partial decompression falls back to a full decode on v1 input but
    // still returns the right level.
    for (std::size_t l = 0; l < from_v1.num_levels(); ++l) {
      const amr::AmrLevel lv = decompress_level(v1, l);
      EXPECT_TRUE(std::memcmp(lv.data.span().data(),
                              from_v2.level(l).data.span().data(),
                              lv.data.size() * sizeof(double)) == 0)
          << to_string(m) << " v1 level " << l;
    }
  }
}

TEST(ContainerV2, IndexOverheadIsSmall) {
  // Tight bound -> large payloads; the fixed-size index must stay under
  // the 1% budget the bench enforces on the tab02 workload.
  const auto ds = small_dataset(64, {0.23, 0.77});
  TacConfig cfg;
  cfg.sz.mode = sz::ErrorBoundMode::kRelative;
  cfg.sz.error_bound = 1e-6;
  const auto bytes = tac_compress(ds, cfg).bytes;
  const CommonHeader h = header_of(bytes);
  const std::size_t index_bytes = h.payload_offset - h.index_offset;
  EXPECT_LT(static_cast<double>(index_bytes),
            0.01 * static_cast<double>(bytes.size()))
      << index_bytes << " index bytes in a " << bytes.size()
      << "-byte container";
}

TEST(ContainerV2, IndexEntryRangeCorruptionIsStructuralError) {
  const auto ds = small_dataset();
  const auto bytes = compress_with(Method::kTac, ds);
  const CommonHeader h = header_of(bytes);
  // The first index entry's offset field lives right after the varint
  // count; stomp its length field with a huge value.
  auto corrupted = bytes;
  const std::size_t first_entry = h.index_offset + 1;  // count < 128: 1 byte
  const std::uint64_t huge = ~std::uint64_t{0};
  std::memcpy(corrupted.data() + first_entry + 8, &huge, sizeof(huge));
  EXPECT_THROW((void)decompress_any(corrupted), std::runtime_error);
}

// ---------------------------------------------------------------- snapshot

amr::Snapshot make_snapshot() {
  amr::Snapshot s;
  const auto base = small_dataset();
  for (const char* name : {"baryon_density", "temperature", "velocity_x"}) {
    std::vector<amr::AmrLevel> levels(base.levels());
    amr::AmrDataset ds(name, std::move(levels), base.refinement_ratio());
    // Distinct data per field so cross-field mix-ups are caught.
    const double scale = 1.0 + static_cast<double>(s.fields.size());
    for (std::size_t l = 0; l < ds.num_levels(); ++l)
      for (std::size_t i = 0; i < ds.level(l).data.size(); ++i)
        ds.level(l).data[i] *= scale;
    s.fields.push_back(std::move(ds));
  }
  return s;
}

TEST(SnapshotV2, FieldIndexListsNamesInOrder) {
  const auto s = make_snapshot();
  const auto bytes = compress_snapshot(s, test_config());
  const auto names = snapshot_field_names(bytes);
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "baryon_density");
  EXPECT_EQ(names[1], "temperature");
  EXPECT_EQ(names[2], "velocity_x");
}

TEST(SnapshotV2, DecompressFieldMatchesFullDecode) {
  const auto s = make_snapshot();
  const auto bytes = compress_snapshot(s, test_config());
  const auto full = decompress_snapshot(bytes);
  for (std::size_t f = 0; f < s.fields.size(); ++f) {
    const auto one =
        decompress_field(bytes, s.fields[f].field_name());
    ASSERT_EQ(one.num_levels(), full.fields[f].num_levels());
    for (std::size_t l = 0; l < one.num_levels(); ++l)
      EXPECT_TRUE(std::memcmp(one.level(l).data.span().data(),
                              full.fields[f].level(l).data.span().data(),
                              one.level(l).data.size() * sizeof(double)) ==
                  0)
          << "field " << f << " level " << l;
  }
  EXPECT_THROW((void)decompress_field(bytes, "no_such_field"),
               std::runtime_error);
}

TEST(SnapshotV2, FieldCorruptionIsChecksumErrorOnlyForThatField) {
  const auto s = make_snapshot();
  auto bytes = compress_snapshot(s, test_config());
  // Corrupt a byte in the middle of field 1's container slice.
  const auto clean = bytes;
  const auto span = snapshot_field_bytes(clean, "temperature");
  const std::size_t field_mid =
      static_cast<std::size_t>(span.data() - clean.data()) + span.size() / 2;
  bytes[field_mid] ^= 0x10;
  EXPECT_THROW((void)decompress_field(bytes, "temperature"), ChecksumError);
  EXPECT_THROW((void)decompress_snapshot(bytes), ChecksumError);
  // Sibling fields stay independently readable.
  EXPECT_NO_THROW((void)decompress_field(bytes, "baryon_density"));
  EXPECT_NO_THROW((void)decompress_field(bytes, "velocity_x"));
}

TEST(SnapshotV2, V1SnapshotsStillDecode) {
  const auto s = make_snapshot();
  const TacConfig cfg = test_config();
  // Hand-build the v1 snapshot layout: magic, version 1, count,
  // length-prefixed per-field container blobs (exactly what the v1 writer
  // emitted).
  ByteWriter w;
  w.put<std::uint32_t>(0x53434154);  // "TACS"
  w.put<std::uint8_t>(1);
  w.put_varint(s.fields.size());
  for (const auto& field : s.fields)
    w.put_blob(adaptive_compress(field, cfg).bytes);
  const auto v1 = w.take();

  const auto back = decompress_snapshot(v1);
  ASSERT_EQ(back.fields.size(), s.fields.size());
  const auto names = snapshot_field_names(v1);
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[1], "temperature");
  // Field lookup works on v1 via the header-scan path.
  const auto one = decompress_field(v1, "velocity_x");
  EXPECT_EQ(one.field_name(), "velocity_x");
  EXPECT_EQ(one.num_levels(), s.fields[2].num_levels());
}

}  // namespace
}  // namespace tac::core
