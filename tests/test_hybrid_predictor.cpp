#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "sz/regression.hpp"
#include "sz/sz.hpp"

namespace tac::sz {
namespace {

template <class T>
void expect_bounded(std::span<const T> orig, std::span<const T> recon,
                    double eb) {
  ASSERT_EQ(orig.size(), recon.size());
  for (std::size_t i = 0; i < orig.size(); ++i) {
    if (std::isfinite(static_cast<double>(orig[i]))) {
      EXPECT_LE(std::fabs(static_cast<double>(orig[i]) -
                          static_cast<double>(recon[i])),
                eb)
          << "at " << i;
    }
  }
}

TEST(PlaneFit, RecoversExactPlane) {
  const Dims3 d{6, 6, 6};
  std::vector<double> v(d.volume());
  for (std::size_t z = 0; z < 6; ++z)
    for (std::size_t y = 0; y < 6; ++y)
      for (std::size_t x = 0; x < 6; ++x)
        v[d.index(x, y, z)] = 4.0 + 2.0 * static_cast<double>(x) -
                              1.5 * static_cast<double>(y) +
                              0.25 * static_cast<double>(z);
  const Box3 tile{0, 0, 0, 6, 6, 6};
  const PlaneFit f = fit_plane(v.data(), d, tile);
  EXPECT_NEAR(f.bx, 2.0, 1e-5);
  EXPECT_NEAR(f.by, -1.5, 1e-5);
  EXPECT_NEAR(f.bz, 0.25, 1e-5);
  for (std::size_t z = 0; z < 6; ++z)
    for (std::size_t y = 0; y < 6; ++y)
      for (std::size_t x = 0; x < 6; ++x)
        EXPECT_NEAR(plane_predict(f, tile, x, y, z), v[d.index(x, y, z)],
                    1e-3);
}

TEST(PlaneFit, ClippedTileAndDegenerateAxes) {
  const Dims3 d{5, 3, 1};
  std::vector<double> v(d.volume(), 7.0);
  const Box3 tile{2, 0, 0, 5, 3, 1};  // 3x3x1 edge tile
  const PlaneFit f = fit_plane(v.data(), d, tile);
  EXPECT_NEAR(f.b0, 7.0, 1e-6);
  EXPECT_NEAR(f.bz, 0.0, 1e-6);  // single-layer axis cannot tilt
  EXPECT_NEAR(plane_predict(f, tile, 3, 1, 0), 7.0, 1e-5);
}

TEST(PlaneFit, NonFiniteTreatedAsZero)  {
  const Dims3 d{4, 4, 4};
  std::vector<double> v(d.volume(), 1.0);
  v[5] = std::numeric_limits<double>::quiet_NaN();
  const Box3 tile{0, 0, 0, 4, 4, 4};
  const PlaneFit f = fit_plane(v.data(), d, tile);
  EXPECT_TRUE(std::isfinite(f.b0));
}

std::vector<double> piecewise_planar(Dims3 d, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> slope(-3, 3);
  std::vector<double> v(d.volume());
  const double ax = slope(rng), ay = slope(rng), az = slope(rng);
  for (std::size_t z = 0; z < d.nz; ++z)
    for (std::size_t y = 0; y < d.ny; ++y)
      for (std::size_t x = 0; x < d.nx; ++x)
        v[d.index(x, y, z)] = 100.0 + ax * static_cast<double>(x) +
                              ay * static_cast<double>(y) +
                              az * static_cast<double>(z);
  return v;
}

TEST(Hybrid, RoundTripWithinBound) {
  const Dims3 d{32, 32, 32};
  std::mt19937 rng(1);
  std::uniform_real_distribution<double> noise(-1, 1);
  std::vector<double> v(d.volume());
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = std::sin(0.03 * static_cast<double>(i)) * 50 + noise(rng);
  const SzConfig cfg{.mode = ErrorBoundMode::kAbsolute,
                     .error_bound = 0.01,
                     .predictor = Predictor::kHybrid};
  const auto back = decompress<double>(compress<double>(v, d, cfg));
  expect_bounded<double>(v, back, 0.01);
}

TEST(Hybrid, BeatsLorenzoOnNoisyPlanarData) {
  // SZ2's win case: locally planar data with point noise. The Lorenzo
  // stencil sums seven noisy neighbours, so its residual is several times
  // the noise amplitude; a fitted plane averages the noise away and
  // predicts within ~1 amplitude, costing fewer quantization bins than
  // the 16-byte-per-tile coefficients cost back.
  const Dims3 d{48, 48, 48};
  std::mt19937 rng(17);
  std::uniform_real_distribution<double> noise(-1, 1);
  std::vector<double> v(d.volume());
  for (std::size_t z = 0; z < d.nz; ++z)
    for (std::size_t y = 0; y < d.ny; ++y)
      for (std::size_t x = 0; x < d.nx; ++x)
        v[d.index(x, y, z)] = 2.0 * static_cast<double>(x) -
                              1.0 * static_cast<double>(y) +
                              0.5 * static_cast<double>(z) + noise(rng);
  SzConfig lorenzo{.mode = ErrorBoundMode::kAbsolute, .error_bound = 0.25};
  SzConfig hybrid = lorenzo;
  hybrid.predictor = Predictor::kHybrid;
  const auto cl = compress<double>(v, d, lorenzo);
  const auto ch = compress<double>(v, d, hybrid);
  expect_bounded<double>(v, decompress<double>(ch), 0.25);
  EXPECT_LT(ch.size(), cl.size());
}

TEST(Hybrid, PlanarDataPicksRegressionAndCompressesHard) {
  const Dims3 d{30, 30, 30};
  const auto v = piecewise_planar(d, 3);
  const SzConfig cfg{.mode = ErrorBoundMode::kAbsolute,
                     .error_bound = 1e-3,
                     .predictor = Predictor::kHybrid};
  const auto c = compress<double>(v, d, cfg);
  const auto back = decompress<double>(c);
  expect_bounded<double>(v, back, 1e-3);
  // A plane is predicted exactly: nearly everything hits the zero bin.
  const double cr = static_cast<double>(v.size() * 8) /
                    static_cast<double>(c.size());
  EXPECT_GT(cr, 50.0);
}

TEST(Hybrid, BatchedBlocksRoundTrip) {
  const Dims3 block{8, 8, 8};
  std::vector<double> v;
  for (unsigned b = 0; b < 9; ++b) {
    const auto f = piecewise_planar(block, 10 + b);
    v.insert(v.end(), f.begin(), f.end());
  }
  const SzConfig cfg{.mode = ErrorBoundMode::kAbsolute,
                     .error_bound = 1e-2,
                     .predictor = Predictor::kHybrid,
                     .pred_block = 4};
  const auto back = decompress<double>(compress<double>(v, block, cfg, 9));
  expect_bounded<double>(v, back, 1e-2);
}

TEST(Hybrid, NonDivisibleTileSizes) {
  const Dims3 d{13, 7, 5};  // tiles clip on every axis
  const auto v = piecewise_planar(d, 5);
  const SzConfig cfg{.mode = ErrorBoundMode::kAbsolute,
                     .error_bound = 1e-2,
                     .predictor = Predictor::kHybrid};
  expect_bounded<double>(v, decompress<double>(compress<double>(v, d, cfg)),
                         1e-2);
}

TEST(Hybrid, FloatRoundTrip) {
  const Dims3 d{16, 16, 16};
  const auto vd = piecewise_planar(d, 6);
  std::vector<float> v(vd.begin(), vd.end());
  const SzConfig cfg{.mode = ErrorBoundMode::kAbsolute,
                     .error_bound = 1e-2f,
                     .predictor = Predictor::kHybrid};
  const auto back = decompress<float>(compress<float>(v, d, cfg));
  expect_bounded<float>(v, back, 1e-2);
}

TEST(Hybrid, DeterministicOutput) {
  const Dims3 d{16, 16, 16};
  const auto v = piecewise_planar(d, 7);
  const SzConfig cfg{.mode = ErrorBoundMode::kAbsolute,
                     .error_bound = 1e-3,
                     .predictor = Predictor::kHybrid};
  EXPECT_EQ(compress<double>(v, d, cfg), compress<double>(v, d, cfg));
}

TEST(Hybrid, RejectsTinyPredBlock) {
  const Dims3 d{8, 8, 8};
  const std::vector<double> v(d.volume(), 1.0);
  SzConfig cfg{.error_bound = 1e-3,
               .predictor = Predictor::kHybrid,
               .pred_block = 1};
  EXPECT_THROW((void)compress<double>(v, d, cfg), std::invalid_argument);
}

TEST(Hybrid, PwRelComposesWithHybrid) {
  const Dims3 d{16, 16, 16};
  std::mt19937 rng(8);
  std::normal_distribution<double> g(0, 1.5);
  std::vector<double> v(d.volume());
  for (auto& x : v) x = 1e8 * std::exp(g(rng));
  const SzConfig cfg{.mode = ErrorBoundMode::kPointwiseRelative,
                     .error_bound = 1e-3,
                     .predictor = Predictor::kHybrid};
  const auto back = decompress<double>(compress<double>(v, d, cfg));
  for (std::size_t i = 0; i < v.size(); ++i)
    EXPECT_LE(std::fabs(back[i] - v[i]), 1e-3 * std::fabs(v[i]) * 1.0001);
}

struct HybridSweepCase {
  Dims3 dims;
  std::size_t pred_block;
  double eb;
};

class HybridSweep : public ::testing::TestWithParam<HybridSweepCase> {};

TEST_P(HybridSweep, BoundHolds) {
  const auto& p = GetParam();
  std::mt19937 rng(99);
  std::uniform_real_distribution<double> noise(-1, 1);
  std::vector<double> v(p.dims.volume());
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = 10.0 * std::sin(0.02 * static_cast<double>(i)) + noise(rng);
  SzConfig cfg{.mode = ErrorBoundMode::kAbsolute,
               .error_bound = p.eb,
               .predictor = Predictor::kHybrid,
               .pred_block = p.pred_block};
  expect_bounded<double>(
      v, decompress<double>(compress<double>(v, p.dims, cfg)), p.eb);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HybridSweep,
    ::testing::Values(HybridSweepCase{{64, 1, 1}, 6, 1e-3},
                      HybridSweepCase{{16, 16, 1}, 4, 1e-2},
                      HybridSweepCase{{16, 16, 16}, 6, 1e-3},
                      HybridSweepCase{{9, 9, 9}, 6, 1e-1},
                      HybridSweepCase{{16, 16, 16}, 16, 1e-3}));

}  // namespace
}  // namespace tac::sz
