#include <gtest/gtest.h>

#include <cmath>

#include "analysis/metrics.hpp"
#include "core/adaptive.hpp"
#include "core/baselines.hpp"
#include "core/tac.hpp"
#include "simnyx/generator.hpp"

namespace tac::core {
namespace {

simnyx::GeneratorConfig small_config(std::vector<double> densities,
                                     std::size_t n = 32) {
  simnyx::GeneratorConfig cfg;
  cfg.finest_dims = {n, n, n};
  cfg.level_densities = std::move(densities);
  cfg.region_size = 8;
  cfg.seed = 1234;
  return cfg;
}

/// Every valid cell of every level within `eb` of the original.
void expect_amr_bounded(const amr::AmrDataset& orig,
                        const amr::AmrDataset& recon, double eb) {
  ASSERT_EQ(orig.num_levels(), recon.num_levels());
  for (std::size_t l = 0; l < orig.num_levels(); ++l) {
    const auto& ol = orig.level(l);
    const auto& rl = recon.level(l);
    double max_err = 0;
    for (std::size_t i = 0; i < ol.data.size(); ++i) {
      if (!ol.mask[i]) {
        EXPECT_EQ(rl.data[i], 0.0) << "padded cell leaked at level " << l;
        continue;
      }
      max_err = std::max(max_err, std::fabs(ol.data[i] - rl.data[i]));
    }
    EXPECT_LE(max_err, eb) << "level " << l;
  }
}

TEST(StrategySelect, PaperThresholds) {
  EXPECT_EQ(select_strategy(0.10, 0.5, 0.6), Strategy::kOpST);
  EXPECT_EQ(select_strategy(0.49, 0.5, 0.6), Strategy::kOpST);
  EXPECT_EQ(select_strategy(0.50, 0.5, 0.6), Strategy::kAKDTree);
  EXPECT_EQ(select_strategy(0.59, 0.5, 0.6), Strategy::kAKDTree);
  EXPECT_EQ(select_strategy(0.60, 0.5, 0.6), Strategy::kGSP);
  EXPECT_EQ(select_strategy(1.00, 0.5, 0.6), Strategy::kGSP);
}

TEST(Tac, RoundTripWithinBound) {
  const auto ds = simnyx::generate_baryon_density(small_config({0.23, 0.77}));
  const double eb = 1e6;
  TacConfig cfg;
  cfg.sz.mode = sz::ErrorBoundMode::kAbsolute;
  cfg.sz.error_bound = eb;
  const auto compressed = tac_compress(ds, cfg);
  const auto back = decompress_any(compressed.bytes);
  expect_amr_bounded(ds, back, eb);
  EXPECT_EQ(back.field_name(), ds.field_name());
}

TEST(Tac, StrategiesFollowDensityFilter) {
  const auto ds = simnyx::generate_baryon_density(small_config({0.23, 0.77}));
  TacConfig cfg;
  cfg.sz.error_bound = 1e6;
  const auto compressed = tac_compress(ds, cfg);
  ASSERT_EQ(compressed.report.levels.size(), 2u);
  // Fine level ~23% -> OpST; coarse ~77% -> GSP.
  EXPECT_EQ(compressed.report.levels[0].strategy, Strategy::kOpST);
  EXPECT_EQ(compressed.report.levels[1].strategy, Strategy::kGSP);
}

TEST(Tac, MediumDensityUsesAkdTree) {
  const auto ds = simnyx::generate_baryon_density(small_config({0.55, 0.45}));
  TacConfig cfg;
  cfg.sz.error_bound = 1e6;
  const auto compressed = tac_compress(ds, cfg);
  EXPECT_EQ(compressed.report.levels[0].strategy, Strategy::kAKDTree);
}

class TacStrategyTest : public ::testing::TestWithParam<Strategy> {};

TEST_P(TacStrategyTest, ForcedStrategyRoundTripsWithinBound) {
  const auto ds = simnyx::generate_baryon_density(small_config({0.4, 0.6}));
  const double eb = 1e6;
  TacConfig cfg;
  cfg.sz.error_bound = eb;
  cfg.force_strategy = GetParam();
  const auto compressed = tac_compress(ds, cfg);
  for (const auto& lr : compressed.report.levels)
    EXPECT_EQ(lr.strategy, GetParam());
  expect_amr_bounded(ds, decompress_any(compressed.bytes), eb);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, TacStrategyTest,
                         ::testing::Values(Strategy::kNaST, Strategy::kOpST,
                                           Strategy::kAKDTree, Strategy::kGSP,
                                           Strategy::kZF),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(Tac, RelativeBoundResolvesPerLevel) {
  const auto ds = simnyx::generate_baryon_density(small_config({0.3, 0.7}));
  TacConfig cfg;
  cfg.sz.mode = sz::ErrorBoundMode::kRelative;
  cfg.sz.error_bound = 1e-3;
  const auto compressed = tac_compress(ds, cfg);
  const auto back = decompress_any(compressed.bytes);
  for (std::size_t l = 0; l < ds.num_levels(); ++l) {
    const auto [lo, hi] = ds.level(l).valid_range();
    const double eb = 1e-3 * (hi - lo);
    EXPECT_NEAR(compressed.report.levels[l].abs_error_bound, eb,
                eb * 1e-9);
    const auto& ol = ds.level(l);
    const auto& rl = back.level(l);
    for (std::size_t i = 0; i < ol.data.size(); ++i) {
      if (ol.mask[i]) {
        EXPECT_LE(std::fabs(ol.data[i] - rl.data[i]), eb);
      }
    }
  }
}

TEST(Tac, PerLevelErrorBounds) {
  const auto ds = simnyx::generate_baryon_density(small_config({0.3, 0.7}));
  TacConfig cfg;
  cfg.level_error_bounds = {3e6, 1e6};  // fine 3:1 coarse
  const auto compressed = tac_compress(ds, cfg);
  const auto back = decompress_any(compressed.bytes);
  EXPECT_DOUBLE_EQ(compressed.report.levels[0].abs_error_bound, 3e6);
  EXPECT_DOUBLE_EQ(compressed.report.levels[1].abs_error_bound, 1e6);
  // Each level respects its own bound.
  for (std::size_t l = 0; l < 2; ++l) {
    const auto& ol = ds.level(l);
    const auto& rl = back.level(l);
    for (std::size_t i = 0; i < ol.data.size(); ++i) {
      if (ol.mask[i]) {
        EXPECT_LE(std::fabs(ol.data[i] - rl.data[i]),
                  cfg.level_error_bounds[l]);
      }
    }
  }
}

TEST(Tac, WrongBoundCountRejected) {
  const auto ds = simnyx::generate_baryon_density(small_config({0.3, 0.7}));
  TacConfig cfg;
  cfg.level_error_bounds = {1e6};  // dataset has two levels
  EXPECT_THROW((void)tac_compress(ds, cfg), std::invalid_argument);
}

TEST(Tac, ReportAccountsBytes) {
  const auto ds = simnyx::generate_baryon_density(small_config({0.3, 0.7}));
  TacConfig cfg;
  cfg.sz.error_bound = 1e6;
  const auto compressed = tac_compress(ds, cfg);
  EXPECT_EQ(compressed.report.compressed_bytes, compressed.bytes.size());
  EXPECT_EQ(compressed.report.original_bytes, ds.original_bytes());
  std::size_t level_bytes = 0;
  for (const auto& lr : compressed.report.levels)
    level_bytes += lr.compressed_bytes;
  EXPECT_LE(level_bytes, compressed.bytes.size());
  EXPECT_GT(analysis::compression_ratio(compressed.report.original_bytes,
                                        compressed.report.compressed_bytes),
            1.0);
}

TEST(Tac, CompressesFarBetterThanRaw) {
  const auto ds = simnyx::generate_baryon_density(
      small_config({0.23, 0.77}, 64));
  TacConfig cfg;
  cfg.sz.mode = sz::ErrorBoundMode::kRelative;
  cfg.sz.error_bound = 1e-3;
  const auto compressed = tac_compress(ds, cfg);
  const double cr = static_cast<double>(ds.original_bytes()) /
                    static_cast<double>(compressed.bytes.size());
  EXPECT_GT(cr, 5.0);
}

TEST(Tac, FourLevelDatasetRoundTrips) {
  const auto ds = simnyx::generate_baryon_density(
      small_config({0.01, 0.05, 0.2, 0.74}, 64));
  ASSERT_EQ(ds.validate(), "");
  TacConfig cfg;
  cfg.sz.error_bound = 1e6;
  const auto compressed = tac_compress(ds, cfg);
  expect_amr_bounded(ds, decompress_any(compressed.bytes), 1e6);
}

TEST(Tac, TruncatedContainerThrows) {
  const auto ds = simnyx::generate_baryon_density(small_config({0.3, 0.7}));
  TacConfig cfg;
  cfg.sz.error_bound = 1e6;
  auto compressed = tac_compress(ds, cfg);
  compressed.bytes.resize(compressed.bytes.size() / 2);
  EXPECT_THROW((void)decompress_any(compressed.bytes), std::exception);
}

TEST(Adaptive, SparseFinestSelectsTac) {
  const auto ds = simnyx::generate_baryon_density(small_config({0.23, 0.77}));
  TacConfig cfg;
  cfg.sz.error_bound = 1e6;
  EXPECT_EQ(adaptive_select(ds, cfg), Method::kTac);
  const auto compressed = adaptive_compress(ds, cfg);
  EXPECT_EQ(compressed.report.method, Method::kTac);
}

TEST(Adaptive, DenseFinestSelects3DBaseline) {
  const auto ds = simnyx::generate_baryon_density(small_config({0.64, 0.36}));
  TacConfig cfg;
  cfg.sz.error_bound = 1e6;
  EXPECT_EQ(adaptive_select(ds, cfg), Method::kUpsample3D);
  const auto compressed = adaptive_compress(ds, cfg);
  EXPECT_EQ(compressed.report.method, Method::kUpsample3D);
  expect_amr_bounded(ds, decompress_any(compressed.bytes), 1e6);
}

TEST(Adaptive, RatioBoundsLadder) {
  const auto bounds = ratio_error_bounds(9e6, 3.0, 3);
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_DOUBLE_EQ(bounds[0], 9e6);
  EXPECT_DOUBLE_EQ(bounds[1], 3e6);
  EXPECT_DOUBLE_EQ(bounds[2], 1e6);
  EXPECT_THROW((void)ratio_error_bounds(0.0, 2.0, 2), std::invalid_argument);
}

TEST(Container, MethodSniffing) {
  const auto ds = simnyx::generate_baryon_density(small_config({0.3, 0.7}));
  TacConfig cfg;
  cfg.sz.error_bound = 1e6;
  EXPECT_EQ(peek_method(tac_compress(ds, cfg).bytes), Method::kTac);
  EXPECT_EQ(peek_method(oned_compress(ds, cfg.sz).bytes), Method::kOneD);
  EXPECT_EQ(peek_method(zmesh_compress(ds, cfg.sz).bytes), Method::kZMesh);
  EXPECT_EQ(peek_method(upsample3d_compress(ds, cfg.sz).bytes),
            Method::kUpsample3D);
}

}  // namespace
}  // namespace tac::core
