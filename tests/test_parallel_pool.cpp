#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "common/parallel.hpp"

/// tac::parallel_for semantics that must hold on both the OpenMP path and
/// the shared-thread-pool path: full index coverage, nested loops, pinned
/// worker counts, exception propagation, and pool reuse across many calls.

namespace tac {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const std::size_t n : {std::size_t{1}, std::size_t{7},
                              std::size_t{64}, std::size_t{1000}}) {
    std::vector<std::atomic<int>> hits(n);
    parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); },
                 /*grain=*/1);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " i=" << i;
  }
}

TEST(ParallelFor, NestedLoopsComplete) {
  ParallelismGuard guard(4);
  constexpr std::size_t kOuter = 8, kInner = 64;
  std::vector<std::size_t> sums(kOuter, 0);
  parallel_for(
      0, kOuter,
      [&](std::size_t o) {
        std::vector<std::size_t> inner(kInner, 0);
        parallel_for(0, kInner, [&](std::size_t i) { inner[i] = i + o; },
                     /*grain=*/1);
        sums[o] = std::accumulate(inner.begin(), inner.end(), std::size_t{0});
      },
      /*grain=*/1);
  for (std::size_t o = 0; o < kOuter; ++o)
    EXPECT_EQ(sums[o], kInner * (kInner - 1) / 2 + o * kInner);
}

TEST(ParallelFor, ThreeDeepNestingDoesNotDeadlock) {
  ParallelismGuard guard(hardware_parallelism());
  std::atomic<std::size_t> total{0};
  parallel_for(
      0, 4,
      [&](std::size_t) {
        parallel_for(
            0, 4,
            [&](std::size_t) {
              parallel_for(0, 4, [&](std::size_t) { total.fetch_add(1); },
                           /*grain=*/1);
            },
            /*grain=*/1);
      },
      /*grain=*/1);
  EXPECT_EQ(total.load(), 64u);
}

TEST(ParallelFor, PinnedSerialRunsInlineOnCallingThread) {
  ParallelismGuard guard(1);
  const auto caller = std::this_thread::get_id();
  std::set<std::thread::id> ids;
  parallel_for(0, 32, [&](std::size_t) { ids.insert(std::this_thread::get_id()); },
               /*grain=*/1);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(*ids.begin(), caller);
}

TEST(ParallelFor, ExceptionPropagatesAndPoolSurvives) {
  EXPECT_THROW(
      parallel_for(
          0, 256,
          [](std::size_t i) {
            if (i == 17) throw std::runtime_error("boom");
          },
          /*grain=*/1),
      std::runtime_error);
  // The shared pool must stay usable after a throwing loop.
  std::atomic<std::size_t> count{0};
  parallel_for(0, 256, [&](std::size_t) { count.fetch_add(1); },
               /*grain=*/1);
  EXPECT_EQ(count.load(), 256u);
}

TEST(ParallelFor, ManySmallLoopsReuseThePool) {
  // The per-call std::thread version spawned ~worker-count threads per
  // loop; the pool version must stay cheap (and correct) across thousands
  // of short loops, as issued by nested level x group pipelines.
  std::size_t grand = 0;
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::size_t> out(16, 0);
    parallel_for(0, out.size(), [&](std::size_t i) { out[i] = i; },
                 /*grain=*/1);
    grand += std::accumulate(out.begin(), out.end(), std::size_t{0});
  }
  EXPECT_EQ(grand, 2000u * 120u);
}

TEST(ParallelFor, GrainKeepsShortLoopsInline) {
  const auto caller = std::this_thread::get_id();
  std::set<std::thread::id> ids;
  // 100 iterations under the default grain of 1024 -> runs inline.
  parallel_for(0, 100,
               [&](std::size_t) { ids.insert(std::this_thread::get_id()); });
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(*ids.begin(), caller);
}

}  // namespace
}  // namespace tac
