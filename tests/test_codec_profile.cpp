#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/simd.hpp"
#include "core/backend.hpp"
#include "core/tac.hpp"
#include "lossless/codec.hpp"
#include "simnyx/generator.hpp"
#include "sz/sz.hpp"

/// Codec profiles (lossless::CodecProfile): the per-payload profile byte
/// introduced by container format v3, the legacy vs fast lossless stream
/// families it selects, and the compatibility guarantees between them —
/// identical decoded values, typed errors on mismatch, v2 backward
/// compatibility for legacy-profile containers.

namespace tac::core {
namespace {

using lossless::CodecProfile;
using lossless::ProfileError;

/// Restores the process-wide default profile on scope exit so tests stay
/// order-independent (and pass under the TAC_CODEC_PROFILE=legacy CI leg).
class ScopedProfile {
 public:
  explicit ScopedProfile(CodecProfile p) : saved_(lossless::default_profile()) {
    lossless::set_default_profile(p);
  }
  ~ScopedProfile() { lossless::set_default_profile(saved_); }

 private:
  CodecProfile saved_;
};

amr::AmrDataset small_dataset(std::size_t n = 32,
                              std::vector<double> densities = {0.3, 0.7}) {
  simnyx::GeneratorConfig gc;
  gc.finest_dims = {n, n, n};
  gc.level_densities = std::move(densities);
  gc.region_size = 8;
  gc.seed = 2024;
  return simnyx::generate_baryon_density(gc);
}

TacConfig test_config() {
  TacConfig cfg;
  cfg.sz.mode = sz::ErrorBoundMode::kAbsolute;
  cfg.sz.error_bound = 1e6;
  return cfg;
}

CommonHeader header_of(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  return read_common_header(r);
}

std::vector<std::uint8_t> compress_with_profile(CodecProfile p,
                                                const amr::AmrDataset& ds) {
  ScopedProfile guard(p);
  return backend_for(Method::kTac).compress(ds, test_config()).bytes;
}

/// Byte offset of index entry `i`'s codec-profile byte inside a v4
/// container (varint entry count is one byte for every dataset here).
std::size_t profile_byte_offset(const CommonHeader& h, std::size_t i) {
  EXPECT_LT(h.index.entries.size(), 128u);
  return h.index_offset + 1 + i * kPayloadEntryV4Bytes + kPayloadEntryBytes;
}

/// A corpus that exercises every encoder regime: long runs (deep hash
/// chains), a stride-repetitive segment (offset reuse) and incompressible
/// noise (skip heuristic / stored fallback).
std::vector<std::uint8_t> mixed_corpus(std::size_t n) {
  std::vector<std::uint8_t> buf;
  buf.reserve(n);
  std::mt19937 rng(1234);
  while (buf.size() < n) {
    switch (rng() % 3u) {
      case 0: {  // run of one byte
        const auto b = static_cast<std::uint8_t>(rng() & 3u);
        for (std::size_t k = 16 + rng() % 200; k > 0 && buf.size() < n; --k)
          buf.push_back(b);
        break;
      }
      case 1:  // stride-repetitive
        for (std::size_t k = 0; k < 96 && buf.size() < n; ++k)
          buf.push_back(static_cast<std::uint8_t>(k % 7u + 60u));
        break;
      default:  // noise
        for (std::size_t k = 0; k < 64 && buf.size() < n; ++k)
          buf.push_back(static_cast<std::uint8_t>(rng()));
    }
  }
  buf.resize(n);
  return buf;
}

// Every input size 0..4097 must round-trip under both profiles, both
// through the lenient decoder and the strict (profile-checked) one.
TEST(CodecProfile, LosslessRoundTripsEverySizeUnderBothProfiles) {
  const auto corpus = mixed_corpus(4097);
  for (const CodecProfile p : {CodecProfile::kLegacy, CodecProfile::kFast}) {
    for (std::size_t n = 0; n <= corpus.size(); ++n) {
      const std::span<const std::uint8_t> input(corpus.data(), n);
      const auto packed = lossless::compress(input, p);
      const auto lenient = lossless::decompress(packed);
      ASSERT_TRUE(std::equal(input.begin(), input.end(), lenient.begin(),
                             lenient.end()))
          << lossless::to_string(p) << " size " << n;
      const auto strict = lossless::decompress(packed, p);
      ASSERT_TRUE(std::equal(input.begin(), input.end(), strict.begin(),
                             strict.end()))
          << lossless::to_string(p) << " strict size " << n;
    }
  }
}

TEST(CodecProfile, StrictDecodeRejectsTheOtherProfilesStream) {
  // Compressible input: both encoders beat stored, so the method byte is
  // profile-specific (a stored block would legitimately satisfy either).
  const std::vector<std::uint8_t> runs(8192, 0x55);
  const auto legacy = lossless::compress(runs, CodecProfile::kLegacy);
  const auto fast = lossless::compress(runs, CodecProfile::kFast);
  ASSERT_NE(legacy[0], fast[0]);  // distinct method bytes
  EXPECT_THROW((void)lossless::decompress(legacy, CodecProfile::kFast),
               ProfileError);
  EXPECT_THROW((void)lossless::decompress(fast, CodecProfile::kLegacy),
               ProfileError);
  try {
    (void)lossless::decompress(fast, CodecProfile::kLegacy);
    FAIL() << "strict decompress should have thrown";
  } catch (const ProfileError& e) {
    EXPECT_NE(std::string(e.what()).find("legacy"), std::string::npos)
        << e.what();
  }
}

// The fast profile reorders the Lorenzo scan and swaps the dictionary
// stage, but decoded values must stay bit-identical to the legacy path:
// same predictions, same quantization, same outliers.
TEST(CodecProfile, SzDecodedValuesBitIdenticalAcrossProfiles) {
  struct Case {
    Dims3 dims;
    unsigned seed;
  };
  for (const auto& [dims, seed] :
       {Case{Dims3{33, 17, 5}, 7u}, Case{Dims3{64, 64, 4}, 8u},
        Case{Dims3{4097, 1, 1}, 9u}}) {
    std::mt19937 rng(seed);
    std::normal_distribution<double> noise(0.0, 1.0);
    std::vector<double> v(dims.volume());
    for (std::size_t i = 0; i < v.size(); ++i)
      v[i] = std::sin(0.01 * static_cast<double>(i)) * 1e9 + noise(rng) * 1e5;
    // Non-finite values take the exact outlier path; -0.0 is finite and
    // quantizes lossily, but its reconstruction must still agree across
    // profiles bit-for-bit (the memcmp below covers all three).
    v[v.size() / 3] = std::numeric_limits<double>::quiet_NaN();
    v[v.size() / 2] = -0.0;
    v[v.size() - 1] = std::numeric_limits<double>::infinity();

    sz::SzConfig cfg;
    cfg.error_bound = 1e4;
    cfg.profile = CodecProfile::kLegacy;
    const auto legacy_stream = sz::compress<double>(v, dims, cfg);
    cfg.profile = CodecProfile::kFast;
    const auto fast_stream = sz::compress<double>(v, dims, cfg);

    const auto a = sz::decompress<double>(legacy_stream, CodecProfile::kLegacy);
    const auto b = sz::decompress<double>(fast_stream, CodecProfile::kFast);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
        << dims.nx << "x" << dims.ny << "x" << dims.nz;
    EXPECT_TRUE(std::isnan(b[v.size() / 3]));
    EXPECT_EQ(b[v.size() - 1], std::numeric_limits<double>::infinity());
  }
}

TEST(CodecProfile, ContainerIndexRecordsTheWritingProfile) {
  const auto ds = small_dataset();
  for (const CodecProfile p : {CodecProfile::kLegacy, CodecProfile::kFast}) {
    const auto bytes = compress_with_profile(p, ds);
    const CommonHeader h = header_of(bytes);
    EXPECT_EQ(h.version, kFormatVersion);
    ASSERT_FALSE(h.index.entries.empty());
    for (std::size_t i = 0; i < h.index.entries.size(); ++i) {
      const auto declared = payload_profile(h, i);
      ASSERT_TRUE(declared.has_value());
      EXPECT_EQ(*declared, p) << "payload " << i;
      EXPECT_EQ(bytes[profile_byte_offset(h, i)],
                static_cast<std::uint8_t>(p));
    }
    // Decoded values are profile-independent at the container level too.
    const auto back = decompress_any(bytes);
    EXPECT_EQ(back.num_levels(), ds.num_levels());
  }
  const auto legacy = decompress_any(compress_with_profile(
      CodecProfile::kLegacy, ds));
  const auto fast = decompress_any(compress_with_profile(
      CodecProfile::kFast, ds));
  for (std::size_t l = 0; l < legacy.num_levels(); ++l)
    EXPECT_EQ(std::memcmp(legacy.level(l).data.span().data(),
                          fast.level(l).data.span().data(),
                          legacy.level(l).data.size() * sizeof(double)),
              0)
        << "level " << l;
}

/// Rebuilds the v2 serialization of a v4 container: identical except for
/// the version byte and the two-bytes-narrower index entries — no profile
/// or selector byte — so every payload shifts back by twice the entry
/// count.
std::vector<std::uint8_t> downgrade_to_v2(const std::vector<std::uint8_t>& v3) {
  const CommonHeader h = header_of(v3);
  const std::uint64_t n = h.index.entries.size();
  EXPECT_LT(n, 128u);  // varint count stays one byte
  std::vector<std::uint8_t> v2(
      v3.begin(), v3.begin() + static_cast<long>(h.index_offset));
  v2[4] = 2;  // magic:4 bytes, then the format version byte
  v2.push_back(v3[h.index_offset]);  // entry count
  for (const PayloadEntry& e : h.index.entries) {
    const std::uint64_t off = e.offset - 2 * n;
    const std::uint64_t len = e.length;
    for (int b = 0; b < 8; ++b)
      v2.push_back(static_cast<std::uint8_t>(off >> (8 * b)));
    for (int b = 0; b < 8; ++b)
      v2.push_back(static_cast<std::uint8_t>(len >> (8 * b)));
    for (int b = 0; b < 4; ++b)
      v2.push_back(static_cast<std::uint8_t>(e.crc32 >> (8 * b)));
  }
  v2.insert(v2.end(), v3.begin() + static_cast<long>(h.payload_offset),
            v3.end());
  return v2;
}

// Containers written before the profile byte existed (v2 layout) must
// keep decoding through the lenient path. A legacy-profile v3 container
// is byte-identical to its v2 ancestor apart from the index widening, so
// the downgrade reconstructs exactly what the old writer emitted.
TEST(CodecProfile, LegacyProfileContainersDecodeIdenticallyAsV2) {
  const auto ds = small_dataset(32, {0.1, 0.3, 0.6});
  const auto v3 = compress_with_profile(CodecProfile::kLegacy, ds);
  const auto v2 = downgrade_to_v2(v3);
  ASSERT_EQ(v2.size(), v3.size() - 2 * header_of(v3).index.entries.size());

  const CommonHeader h2 = header_of(v2);
  EXPECT_EQ(h2.version, 2);
  EXPECT_FALSE(payload_profile(h2, 0).has_value());
  EXPECT_NO_THROW(verify_payloads(v2, h2.index));

  const auto from_v2 = decompress_any(v2);
  const auto from_v3 = decompress_any(v3);
  ASSERT_EQ(from_v2.num_levels(), from_v3.num_levels());
  for (std::size_t l = 0; l < from_v2.num_levels(); ++l)
    EXPECT_EQ(std::memcmp(from_v2.level(l).data.span().data(),
                          from_v3.level(l).data.span().data(),
                          from_v2.level(l).data.size() * sizeof(double)),
              0)
        << "level " << l;
}

TEST(CodecProfile, FlippedProfileByteIsATypedError) {
  const auto ds = small_dataset();
  const auto bytes = compress_with_profile(CodecProfile::kFast, ds);
  const CommonHeader h = header_of(bytes);

  // Declaring legacy over fast streams: the index parses (0 is a valid
  // profile) but the first payload's method byte contradicts it. Payload
  // CRCs still pass — the index is not covered by them — so this must be
  // caught by the profile check, not the checksums.
  auto mislabeled = bytes;
  for (std::size_t i = 0; i < h.index.entries.size(); ++i)
    mislabeled[profile_byte_offset(h, i)] =
        static_cast<std::uint8_t>(CodecProfile::kLegacy);
  EXPECT_NO_THROW(verify_payloads(mislabeled, header_of(mislabeled).index));
  EXPECT_THROW((void)decompress_any(mislabeled), ProfileError);

  // An out-of-range profile byte is rejected while reading the header,
  // with the payload called out.
  auto unknown = bytes;
  unknown[profile_byte_offset(h, 0)] = 9;
  try {
    (void)decompress_any(unknown);
    FAIL() << "decompress_any should have rejected the profile byte";
  } catch (const ProfileError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("profile"), std::string::npos) << msg;
    EXPECT_NE(msg.find('9'), std::string::npos) << msg;
  }
}

// The fast profile's wavefront scan and chained matcher must not leak
// scheduling into the bytes: any thread count, SIMD or scalar, one
// container.
TEST(CodecProfile, FastProfileOutputStableAcrossThreadsAndSimd) {
  ScopedProfile profile(CodecProfile::kFast);
  const auto ds = small_dataset(64, {0.1, 0.3, 0.6});
  const TacConfig cfg = test_config();

  std::vector<std::uint8_t> reference;
  {
    ParallelismGuard serial(1);
    reference = backend_for(Method::kTac).compress(ds, cfg).bytes;
  }
  for (const unsigned threads : {2u, 4u}) {
    ParallelismGuard guard(threads);
    EXPECT_EQ(backend_for(Method::kTac).compress(ds, cfg).bytes, reference)
        << threads << " threads";
  }
  {
    ParallelismGuard guard(2);
    simd::force_scalar(true);
    const auto scalar_bytes = backend_for(Method::kTac).compress(ds, cfg).bytes;
    simd::force_scalar(false);
    EXPECT_EQ(scalar_bytes, reference);
  }
}

}  // namespace
}  // namespace tac::core
