#include <gtest/gtest.h>

#include <cmath>

#include "simnyx/generator.hpp"
#include "simnyx/grf.hpp"

namespace tac::simnyx {
namespace {

TEST(Grf, ZeroMeanUnitVariance) {
  const auto f = gaussian_random_field({32, 32, 32}, {});
  double sum = 0, sum2 = 0;
  for (std::size_t i = 0; i < f.size(); ++i) {
    sum += f[i];
    sum2 += f[i] * f[i];
  }
  const double n = static_cast<double>(f.size());
  EXPECT_NEAR(sum / n, 0.0, 1e-10);
  EXPECT_NEAR(sum2 / n, 1.0, 1e-6);
}

TEST(Grf, DeterministicInSeed) {
  const GrfConfig cfg{.seed = 99};
  const auto a = gaussian_random_field({16, 16, 16}, cfg);
  const auto b = gaussian_random_field({16, 16, 16}, cfg);
  EXPECT_EQ(a, b);
}

TEST(Grf, DifferentSeedsDiffer) {
  const auto a = gaussian_random_field({16, 16, 16}, {.seed = 1});
  const auto b = gaussian_random_field({16, 16, 16}, {.seed = 2});
  EXPECT_NE(a, b);
}

TEST(Grf, SteeperSpectrumIsSmoother) {
  // Mean squared neighbour difference falls as the spectral index drops.
  const auto rough =
      gaussian_random_field({32, 32, 32}, {.spectral_index = -1.0, .seed = 5});
  const auto smooth =
      gaussian_random_field({32, 32, 32}, {.spectral_index = -3.5, .seed = 5});
  const auto roughness = [](const Array3D<double>& f) {
    const Dims3 d = f.dims();
    double acc = 0;
    for (std::size_t z = 0; z < d.nz; ++z)
      for (std::size_t y = 0; y < d.ny; ++y)
        for (std::size_t x = 1; x < d.nx; ++x) {
          const double e = f(x, y, z) - f(x - 1, y, z);
          acc += e * e;
        }
    return acc;
  };
  EXPECT_LT(roughness(smooth), roughness(rough));
}

TEST(Generator, TwoLevelStructureIsValidPartition) {
  GeneratorConfig cfg;
  cfg.finest_dims = {64, 64, 64};
  cfg.level_densities = {0.23, 0.77};
  const auto ds = generate_baryon_density(cfg);
  EXPECT_EQ(ds.validate(), "");
  EXPECT_EQ(ds.num_levels(), 2u);
  EXPECT_EQ(ds.finest_dims(), (Dims3{64, 64, 64}));
}

TEST(Generator, HitsDensityTargets) {
  GeneratorConfig cfg;
  cfg.finest_dims = {64, 64, 64};
  cfg.level_densities = {0.23, 0.77};
  const auto ds = generate_baryon_density(cfg);
  // Region granularity quantizes the density; 64/16 = 4 regions per axis
  // -> 64 regions, so resolution is ~1.6%.
  EXPECT_NEAR(ds.level(0).density(), 0.23, 0.02);
  EXPECT_NEAR(ds.level(1).density(), 0.77, 0.02);
}

TEST(Generator, FourLevelStructureIsValidPartition) {
  GeneratorConfig cfg;
  cfg.finest_dims = {64, 64, 64};
  cfg.level_densities = {0.01, 0.04, 0.2, 0.75};
  cfg.region_size = 8;
  const auto ds = generate_baryon_density(cfg);
  EXPECT_EQ(ds.validate(), "");
  EXPECT_EQ(ds.num_levels(), 4u);
}

TEST(Generator, DensityIsPositiveAndWideRange) {
  GeneratorConfig cfg;
  cfg.finest_dims = {32, 32, 32};
  cfg.level_densities = {0.3, 0.7};
  cfg.region_size = 8;
  const auto ds = generate_baryon_density(cfg);
  double lo = 1e300, hi = 0;
  for (std::size_t l = 0; l < ds.num_levels(); ++l) {
    const auto& lv = ds.level(l);
    for (std::size_t i = 0; i < lv.data.size(); ++i) {
      if (!lv.mask[i]) continue;
      EXPECT_GT(lv.data[i], 0.0);
      lo = std::min(lo, lv.data[i]);
      hi = std::max(hi, lv.data[i]);
    }
  }
  // Log-normal with sigma 2: several decades of dynamic range.
  EXPECT_GT(hi / lo, 100.0);
}

TEST(Generator, RefinedRegionsHaveHigherValues) {
  GeneratorConfig cfg;
  cfg.finest_dims = {64, 64, 64};
  cfg.level_densities = {0.2, 0.8};
  const auto ds = generate_baryon_density(cfg);
  const auto mean_of = [](const amr::AmrLevel& lv) {
    double sum = 0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < lv.data.size(); ++i)
      if (lv.mask[i]) {
        sum += lv.data[i];
        ++n;
      }
    return sum / static_cast<double>(n);
  };
  EXPECT_GT(mean_of(ds.level(0)), mean_of(ds.level(1)));
}

TEST(Generator, DeterministicInSeed) {
  GeneratorConfig cfg;
  cfg.finest_dims = {32, 32, 32};
  cfg.level_densities = {0.4, 0.6};
  cfg.region_size = 8;
  const auto a = generate_baryon_density(cfg);
  const auto b = generate_baryon_density(cfg);
  for (std::size_t l = 0; l < a.num_levels(); ++l) {
    EXPECT_EQ(a.level(l).data, b.level(l).data);
    EXPECT_EQ(a.level(l).mask, b.level(l).mask);
  }
}

TEST(Generator, RejectsBadRegionSize) {
  GeneratorConfig cfg;
  cfg.finest_dims = {64, 64, 64};
  cfg.level_densities = {0.1, 0.2, 0.7};  // 3 levels need region % 4 == 0
  cfg.region_size = 6;
  EXPECT_THROW((void)generate_baryon_density(cfg), std::invalid_argument);
}

TEST(Generator, RejectsOverfullDensities) {
  GeneratorConfig cfg;
  cfg.finest_dims = {32, 32, 32};
  cfg.level_densities = {1.5, 0.5};
  cfg.region_size = 8;
  EXPECT_THROW((void)generate_baryon_density(cfg), std::invalid_argument);
}

TEST(Generator, AllFieldsShareStructure) {
  GeneratorConfig cfg;
  cfg.finest_dims = {32, 32, 32};
  cfg.level_densities = {0.3, 0.7};
  cfg.region_size = 8;
  const auto fields = generate_fields(cfg);
  EXPECT_EQ(fields.baryon_density.validate(), "");
  for (std::size_t l = 0; l < fields.baryon_density.num_levels(); ++l) {
    EXPECT_EQ(fields.temperature.level(l).mask,
              fields.baryon_density.level(l).mask);
    EXPECT_EQ(fields.velocity_x.level(l).mask,
              fields.baryon_density.level(l).mask);
    EXPECT_EQ(fields.dark_matter_density.level(l).mask,
              fields.baryon_density.level(l).mask);
  }
  // Velocities are signed; densities are not.
  bool any_negative = false;
  const auto& vx = fields.velocity_x.level(0);
  for (std::size_t i = 0; i < vx.data.size(); ++i)
    if (vx.mask[i] && vx.data[i] < 0) any_negative = true;
  EXPECT_TRUE(any_negative);
}

TEST(Presets, SevenTable1Datasets) {
  const auto presets = table1_presets();
  ASSERT_EQ(presets.size(), 7u);
  EXPECT_EQ(presets[0].name, "Run1_Z10");
  EXPECT_EQ(presets[0].finest_dims, (Dims3{128, 128, 128}));
  EXPECT_EQ(presets[6].name, "Run2_T4");
  EXPECT_EQ(presets[6].level_densities.size(), 4u);
  for (const auto& p : presets) {
    double sum = 0;
    for (const double d : p.level_densities) sum += d;
    EXPECT_NEAR(sum, 1.0, 0.01) << p.name;
  }
}

TEST(Presets, GenerateRun2T2Preset) {
  const auto presets = table1_presets();
  const auto ds = generate_preset(presets[4]);  // Run2_T2, 64^3 scaled
  EXPECT_EQ(ds.validate(), "");
  EXPECT_EQ(ds.num_levels(), 2u);
  // Ultra-sparse finest level: floored at one region, still non-empty.
  EXPECT_GT(ds.level(0).valid_count(), 0u);
  EXPECT_GT(ds.level(1).density(), 0.9);
}

}  // namespace
}  // namespace tac::simnyx
