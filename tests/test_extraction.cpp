#include <gtest/gtest.h>

#include <random>

#include "core/block_grid.hpp"
#include "core/extraction.hpp"

namespace tac::core {
namespace {

Array3D<std::uint8_t> random_occupancy(Dims3 d, double density,
                                       unsigned seed) {
  std::mt19937 rng(seed);
  std::bernoulli_distribution occupied(density);
  Array3D<std::uint8_t> occ(d);
  for (std::size_t i = 0; i < occ.size(); ++i) occ[i] = occupied(rng) ? 1 : 0;
  return occ;
}

/// Brute-force reference for the OpST DP: largest full cube with far
/// corner at (x, y, z).
std::size_t brute_force_max_cube(const Array3D<std::uint8_t>& occ,
                                 std::size_t x, std::size_t y,
                                 std::size_t z) {
  if (!occ(x, y, z)) return 0;
  std::size_t best = 0;
  for (std::size_t s = 1; s <= std::min({x, y, z}) + 1; ++s) {
    bool full = true;
    for (std::size_t k = z + 1 - s; k <= z && full; ++k)
      for (std::size_t j = y + 1 - s; j <= y && full; ++j)
        for (std::size_t i = x + 1 - s; i <= x; ++i)
          if (!occ(i, j, k)) {
            full = false;
            break;
          }
    if (!full) break;
    best = s;
  }
  return best;
}

TEST(BlockGrid, ClipsEdgeBlocks) {
  const BlockGrid grid({10, 8, 8}, 4);
  EXPECT_EQ(grid.block_dims(), (Dims3{3, 2, 2}));
  const Box3 edge = grid.block_box(2, 0, 0);
  EXPECT_EQ(edge.x0, 8u);
  EXPECT_EQ(edge.x1, 10u);  // clipped from 12
}

TEST(BlockGrid, OccupancyDetectsAnyValidCell) {
  amr::AmrLevel lv({8, 8, 8});
  lv.mask(5, 1, 1) = 1;  // one valid cell in block (1,0,0)
  const BlockGrid grid(lv.dims(), 4);
  const auto occ = block_occupancy(lv, grid);
  EXPECT_EQ(occ(1, 0, 0), 1);
  EXPECT_EQ(occ(0, 0, 0), 0);
  EXPECT_DOUBLE_EQ(occupancy_density(occ), 1.0 / 8.0);
}

TEST(Nast, ListsExactlyOccupiedBlocks) {
  const auto occ = random_occupancy({6, 6, 6}, 0.3, 1);
  const auto subs = nast_extract(occ);
  EXPECT_TRUE(covers_exactly(occ, subs));
  for (const auto& sb : subs) {
    EXPECT_EQ(sb.sx, 1u);
    EXPECT_EQ(sb.sy, 1u);
    EXPECT_EQ(sb.sz, 1u);
  }
}

TEST(Opst, DpMatchesBruteForceOnFullGrid) {
  Array3D<std::uint8_t> occ({4, 4, 4}, 1);
  const auto subs = opst_extract(occ);
  // A fully occupied 4^3 grid extracts a single 4^3 cube.
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0], (SubBlock{0, 0, 0, 4, 4, 4}));
}

TEST(Opst, ExtractsLargestCubeFirst) {
  // An 8^3 grid fully occupied except one corner block: the far 4^3+ cube
  // must come out large, not as unit blocks.
  Array3D<std::uint8_t> occ({8, 8, 8}, 1);
  occ(0, 0, 0) = 0;
  const auto subs = opst_extract(occ);
  EXPECT_TRUE(covers_exactly(occ, subs));
  std::size_t largest = 0;
  for (const auto& sb : subs) largest = std::max(largest, sb.sx);
  EXPECT_GE(largest, 4u);
}

TEST(Opst, CoversRandomOccupancies) {
  for (unsigned seed = 0; seed < 5; ++seed) {
    for (const double density : {0.1, 0.5, 0.9}) {
      const auto occ = random_occupancy({10, 10, 10}, density, seed);
      const auto subs = opst_extract(occ);
      EXPECT_TRUE(covers_exactly(occ, subs))
          << "density " << density << " seed " << seed;
      for (const auto& sb : subs) {
        EXPECT_EQ(sb.sx, sb.sy);  // OpST extracts cubes
        EXPECT_EQ(sb.sy, sb.sz);
      }
    }
  }
}

TEST(Opst, ProducesFewerBlocksThanNast) {
  // Clustered occupancy: one solid 6^3 cluster in a 12^3 grid.
  Array3D<std::uint8_t> occ({12, 12, 12}, 0);
  for (std::size_t z = 2; z < 8; ++z)
    for (std::size_t y = 2; y < 8; ++y)
      for (std::size_t x = 2; x < 8; ++x) occ(x, y, z) = 1;
  const auto nast = nast_extract(occ);
  const auto opst = opst_extract(occ);
  EXPECT_TRUE(covers_exactly(occ, opst));
  EXPECT_EQ(nast.size(), 216u);
  EXPECT_LT(opst.size(), 40u);  // one 6^3 cube + fragments at worst
}

TEST(Opst, EmptyGridYieldsNothing) {
  Array3D<std::uint8_t> occ({5, 5, 5}, 0);
  EXPECT_TRUE(opst_extract(occ).empty());
}

TEST(Opst, DpInitializationMatchesBruteForce) {
  // Validate the DP recurrence itself against brute force on random grids
  // by extracting from a grid where every block is its own corner: compare
  // the first extraction (bottom-right-most occupied corner) cube size.
  for (unsigned seed = 10; seed < 14; ++seed) {
    const auto occ = random_occupancy({7, 7, 7}, 0.6, seed);
    const auto subs = opst_extract(occ);
    ASSERT_TRUE(covers_exactly(occ, subs));
    if (subs.empty()) continue;
    // First extracted sub-block corresponds to the last occupied block in
    // raster order; its size must equal the brute-force max cube there.
    const SubBlock& first = subs.front();
    const std::size_t x = first.bx + first.sx - 1;
    const std::size_t y = first.by + first.sy - 1;
    const std::size_t z = first.bz + first.sz - 1;
    EXPECT_EQ(first.sx, brute_force_max_cube(occ, x, y, z));
  }
}

TEST(Akd, FullGridIsOneLeaf) {
  Array3D<std::uint8_t> occ({8, 8, 8}, 1);
  const auto subs = akdtree_extract(occ);
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0], (SubBlock{0, 0, 0, 8, 8, 8}));
}

TEST(Akd, EmptyGridYieldsNothing) {
  Array3D<std::uint8_t> occ({8, 8, 8}, 0);
  EXPECT_TRUE(akdtree_extract(occ).empty());
}

TEST(Akd, HalfFullGridSplitsCleanly) {
  // Left half occupied: the maxDiff criterion should find the x split and
  // emit one big leaf.
  Array3D<std::uint8_t> occ({8, 8, 8}, 0);
  for (std::size_t z = 0; z < 8; ++z)
    for (std::size_t y = 0; y < 8; ++y)
      for (std::size_t x = 0; x < 4; ++x) occ(x, y, z) = 1;
  const auto subs = akdtree_extract(occ);
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0], (SubBlock{0, 0, 0, 4, 8, 8}));
}

TEST(Akd, CoversRandomOccupancies) {
  for (unsigned seed = 0; seed < 5; ++seed) {
    for (const double density : {0.05, 0.3, 0.7, 0.95}) {
      const auto occ = random_occupancy({16, 16, 16}, density, seed + 100);
      const auto subs = akdtree_extract(occ);
      EXPECT_TRUE(covers_exactly(occ, subs))
          << "density " << density << " seed " << seed;
    }
  }
}

TEST(Akd, HandlesNonPowerOfTwoAndAnisotropic) {
  const auto occ = random_occupancy({7, 13, 5}, 0.4, 3);
  const auto subs = akdtree_extract(occ);
  EXPECT_TRUE(covers_exactly(occ, subs));
}

TEST(Akd, AdaptiveBeatsNaiveOnSlabData) {
  // A full 8x8x2 slab inside an 8^3 grid: the maxDiff split peels the
  // empty half off immediately, and the cube->flat->slim shape cycle then
  // carves the slab into a handful of large leaves — far fewer than the
  // 128 unit blocks NaST would emit.
  Array3D<std::uint8_t> occ({8, 8, 8}, 0);
  for (std::size_t y = 0; y < 8; ++y)
    for (std::size_t x = 0; x < 8; ++x) {
      occ(x, y, 0) = 1;
      occ(x, y, 1) = 1;
    }
  const auto subs = akdtree_extract(occ);
  EXPECT_TRUE(covers_exactly(occ, subs));
  EXPECT_LE(subs.size(), 4u);
  EXPECT_EQ(nast_extract(occ).size(), 128u);
}

TEST(GatherScatter, RoundTripsLevelData) {
  amr::AmrLevel lv({16, 16, 16});
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> u(1, 2);
  // Valid cells in two clusters.
  for (std::size_t z = 0; z < 8; ++z)
    for (std::size_t y = 0; y < 8; ++y)
      for (std::size_t x = 0; x < 8; ++x) {
        lv.mask(x, y, z) = 1;
        lv.data(x, y, z) = u(rng);
        lv.mask(x + 8, y + 8, z + 8) = 1;
        lv.data(x + 8, y + 8, z + 8) = u(rng);
      }
  const BlockGrid grid(lv.dims(), 4);
  const auto occ = block_occupancy(lv, grid);
  const auto subs = opst_extract(occ);
  tac::ArenaScope scratch;
  const auto groups = gather_groups(lv, grid, subs, scratch);

  amr::AmrLevel out({16, 16, 16});
  out.mask = lv.mask;
  scatter_groups(out, grid, groups);
  EXPECT_EQ(out.data, lv.data);
}

TEST(GatherScatter, ClippedEdgeBlocksRoundTrip) {
  // 10^3 level with block size 4: edge blocks are clipped to 2 cells.
  amr::AmrLevel lv({10, 10, 10});
  std::mt19937 rng(6);
  std::uniform_real_distribution<double> u(1, 2);
  for (std::size_t i = 0; i < lv.mask.size(); ++i) {
    lv.mask[i] = 1;
    lv.data[i] = u(rng);
  }
  const BlockGrid grid(lv.dims(), 4);
  const auto occ = block_occupancy(lv, grid);
  using Extractor = std::vector<SubBlock> (*)(const Array3D<std::uint8_t>&);
  for (const Extractor extract :
       {Extractor{&nast_extract}, Extractor{&opst_extract},
        Extractor{&akdtree_extract}}) {
    const auto subs = (*extract)(occ);
    ASSERT_TRUE(covers_exactly(occ, subs));
    tac::ArenaScope scratch;
  const auto groups = gather_groups(lv, grid, subs, scratch);
    amr::AmrLevel out({10, 10, 10});
    out.mask = lv.mask;
    scatter_groups(out, grid, groups);
    EXPECT_EQ(out.data, lv.data);
  }
}

TEST(GatherScatter, GroupsMergeEqualExtents) {
  const auto occ = random_occupancy({8, 8, 8}, 0.4, 9);
  amr::AmrLevel lv({32, 32, 32});
  for (std::size_t i = 0; i < lv.mask.size(); ++i) lv.mask[i] = 1;
  const auto subs = nast_extract(occ);
  const BlockGrid grid(lv.dims(), 4);
  tac::ArenaScope scratch;
  const auto groups = gather_groups(lv, grid, subs, scratch);
  // NaST blocks are all 1x1x1 -> exactly one group holding all members.
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].members.size(), subs.size());
  EXPECT_EQ(groups[0].buffer.size(),
            subs.size() * groups[0].block_cell_dims.volume());
}

struct ExtractorCase {
  const char* name;
  std::vector<SubBlock> (*extract)(const Array3D<std::uint8_t>&);
};

class ExtractorPropertyTest : public ::testing::TestWithParam<
                                  std::tuple<ExtractorCase, double>> {};

TEST_P(ExtractorPropertyTest, CoverageHoldsAcrossDensities) {
  const auto& [extractor, density] = GetParam();
  for (unsigned seed = 0; seed < 3; ++seed) {
    const auto occ = random_occupancy({12, 12, 12}, density, seed * 7 + 1);
    const auto subs = extractor.extract(occ);
    EXPECT_TRUE(covers_exactly(occ, subs)) << extractor.name;
  }
}

std::string extractor_case_name(
    const ::testing::TestParamInfo<std::tuple<ExtractorCase, double>>& info) {
  return std::string(std::get<0>(info.param).name) + "_d" +
         std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
}

INSTANTIATE_TEST_SUITE_P(
    AllExtractors, ExtractorPropertyTest,
    ::testing::Combine(
        ::testing::Values(ExtractorCase{"nast", &nast_extract},
                          ExtractorCase{"opst", &opst_extract},
                          ExtractorCase{"akd", &akdtree_extract}),
        ::testing::Values(0.0, 0.02, 0.23, 0.5, 0.77, 0.99, 1.0)),
    extractor_case_name);

}  // namespace
}  // namespace tac::core
