#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "lossless/huffman.hpp"

namespace tac::lossless {
namespace {

std::vector<std::uint32_t> roundtrip(const std::vector<std::uint32_t>& syms) {
  const auto bytes = huffman_compress(syms);
  return huffman_decompress(bytes);
}

TEST(Huffman, EmptyInput) {
  EXPECT_TRUE(roundtrip({}).empty());
}

TEST(Huffman, SingleSymbolRepeated) {
  const std::vector<std::uint32_t> syms(1000, 42);
  EXPECT_EQ(roundtrip(syms), syms);
}

TEST(Huffman, SingleOccurrence) {
  const std::vector<std::uint32_t> syms = {7};
  EXPECT_EQ(roundtrip(syms), syms);
}

TEST(Huffman, TwoSymbols) {
  std::vector<std::uint32_t> syms;
  for (int i = 0; i < 100; ++i) syms.push_back(i % 2 ? 5u : 9u);
  EXPECT_EQ(roundtrip(syms), syms);
}

TEST(Huffman, SkewedDistributionCompresses) {
  // 99% one symbol: entropy ~0.08 bits/sym; Huffman floor is 1 bit/sym.
  std::mt19937 rng(1);
  std::vector<std::uint32_t> syms(100000);
  for (auto& s : syms) s = (rng() % 100 == 0) ? rng() % 64 : 32768u;
  const auto bytes = huffman_compress(syms);
  EXPECT_EQ(huffman_decompress(bytes), syms);
  EXPECT_LT(bytes.size(), syms.size() / 4);  // >= 8x vs 4-byte symbols
}

TEST(Huffman, LargeAlphabetRoundTrip) {
  std::mt19937 rng(2);
  std::vector<std::uint32_t> syms(50000);
  for (auto& s : syms) s = rng() % 65536;
  EXPECT_EQ(roundtrip(syms), syms);
}

TEST(Huffman, ExtremeSkewStillDecodes) {
  // Fibonacci-like frequencies make deep trees; the length limiter must
  // keep codes <= kMaxLen while staying decodable.
  std::vector<std::uint32_t> syms;
  std::uint64_t f1 = 1, f2 = 1;
  for (std::uint32_t s = 0; s < 40; ++s) {
    for (std::uint64_t i = 0; i < std::min<std::uint64_t>(f1, 5000); ++i)
      syms.push_back(s);
    const std::uint64_t nx = f1 + f2;
    f1 = f2;
    f2 = nx;
  }
  EXPECT_EQ(roundtrip(syms), syms);
}

TEST(Huffman, TableSerializationRoundTrip) {
  std::mt19937 rng(3);
  std::vector<std::uint32_t> syms(5000);
  for (auto& s : syms) s = rng() % 300;
  const HuffmanTable table = huffman_build(syms);
  const auto bytes = huffman_table_serialize(table);
  const HuffmanTable back = huffman_table_deserialize(bytes);
  EXPECT_EQ(back.symbols, table.symbols);
  EXPECT_EQ(back.lengths, table.lengths);
}

TEST(Huffman, EncodeRejectsUnknownSymbol) {
  const std::vector<std::uint32_t> syms = {1, 1, 2};
  const HuffmanTable table = huffman_build(syms);
  const std::vector<std::uint32_t> bad = {3};
  EXPECT_THROW((void)huffman_encode(table, bad), std::invalid_argument);
}

TEST(Huffman, KraftInequalityHolds) {
  std::mt19937 rng(4);
  std::vector<std::uint32_t> syms(20000);
  for (auto& s : syms) s = rng() % 1000;
  const HuffmanTable table = huffman_build(syms);
  long double kraft = 0;
  for (const auto len : table.lengths) kraft += std::pow(2.0L, -int(len));
  EXPECT_LE(kraft, 1.0L + 1e-12L);
  // Optimal prefix code is complete.
  EXPECT_NEAR(static_cast<double>(kraft), 1.0, 1e-9);
}

TEST(Huffman, CodeLengthsOrderedByFrequency) {
  // More frequent symbols never get longer codes.
  std::vector<std::uint32_t> syms;
  for (int i = 0; i < 1000; ++i) syms.push_back(0);
  for (int i = 0; i < 100; ++i) syms.push_back(1);
  for (int i = 0; i < 10; ++i) syms.push_back(2);
  const HuffmanTable table = huffman_build(syms);
  ASSERT_EQ(table.symbols.size(), 3u);
  EXPECT_LE(table.lengths[0], table.lengths[1]);
  EXPECT_LE(table.lengths[1], table.lengths[2]);
}

TEST(Huffman, NearEntropyOnUniform) {
  // 256 equally likely symbols -> exactly 8 bits/symbol.
  std::vector<std::uint32_t> syms;
  for (int rep = 0; rep < 64; ++rep)
    for (std::uint32_t s = 0; s < 256; ++s) syms.push_back(s);
  const HuffmanTable table = huffman_build(syms);
  for (const auto len : table.lengths) EXPECT_EQ(len, 8);
}

class HuffmanParamTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::uint32_t>> {
};

TEST_P(HuffmanParamTest, RoundTripSizeAlphabetSweep) {
  const auto [count, alphabet] = GetParam();
  std::mt19937 rng(static_cast<unsigned>(count + alphabet));
  std::vector<std::uint32_t> syms(count);
  for (auto& s : syms) s = rng() % alphabet;
  EXPECT_EQ(roundtrip(syms), syms);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HuffmanParamTest,
    ::testing::Values(std::pair<std::size_t, std::uint32_t>{1, 1},
                      std::pair<std::size_t, std::uint32_t>{2, 2},
                      std::pair<std::size_t, std::uint32_t>{100, 3},
                      std::pair<std::size_t, std::uint32_t>{1000, 17},
                      std::pair<std::size_t, std::uint32_t>{4096, 256},
                      std::pair<std::size_t, std::uint32_t>{10000, 65536},
                      std::pair<std::size_t, std::uint32_t>{65536, 65536}));

}  // namespace
}  // namespace tac::lossless
