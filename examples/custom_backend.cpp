/// \file custom_backend.cpp
/// \brief The docs/BACKENDS.md worked example: a minimal out-of-tree
/// compressor backend, registered at runtime and round-tripped through
/// every registry entry point (decompress_any, decompress_level).
///
/// The backend is a lossless "passthrough" — each level's valid cells
/// stored as raw doubles — chosen so the example stays about the
/// CompressorBackend/PayloadIndexBuilder protocol, not about coding
/// theory. The class between the snippet markers below is embedded
/// verbatim in docs/BACKENDS.md; scripts/check_docs.py fails CI when the
/// two copies drift apart.

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "amr/dataset.hpp"
#include "core/backend.hpp"
#include "core/container.hpp"
#include "core/tac.hpp"

namespace {

using namespace tac;

// [backends-guide:passthrough]
/// A lossless do-nothing backend: every level's valid cells stored as raw
/// little-endian doubles. Real backends replace the payload body; the
/// header/index protocol shown here is the part they all share.
class PassthroughBackend final : public core::CompressorBackend {
 public:
  /// Any tag without a registered backend works (5..254; 0..4 are the
  /// built-ins and 255 is the reserved kSelectorFixed sentinel). Pick one
  /// per backend and never reuse it — the tag is the on-disk identity.
  static constexpr auto kTag = static_cast<core::Method>(42);

  [[nodiscard]] core::Method method() const override { return kTag; }
  [[nodiscard]] const char* name() const override { return "passthrough"; }

  [[nodiscard]] core::CompressedAmr compress(
      const amr::AmrDataset& ds, const core::TacConfig&) const override {
    ByteWriter w;
    // One payload per level: index entry i then maps to level i, which is
    // what gives decompress_level O(level) random access.
    auto index = core::write_common_header(w, method(), ds, ds.num_levels());
    for (std::size_t l = 0; l < ds.num_levels(); ++l) {
      index.begin_payload();
      const std::vector<double> values = ds.level(l).gather_valid();
      w.put_varint(values.size());
      for (const double v : values) w.put(v);
      index.end_payload();  // patches {offset, length, crc32, profile, tag}
    }
    index.finish();  // throws if any reserved entry was left unsealed
    core::CompressedAmr out;
    out.bytes = w.take();
    out.report.method = method();
    out.report.original_bytes = ds.original_bytes();
    out.report.compressed_bytes = out.bytes.size();
    return out;
  }

  [[nodiscard]] amr::AmrDataset decompress(
      ByteReader& r, amr::AmrDataset skeleton,
      const core::CommonHeader&) const override {
    // `skeleton` arrives with dims + masks decoded from the common header
    // and data zeroed; `r` is positioned at this backend's first payload.
    for (std::size_t l = 0; l < skeleton.num_levels(); ++l)
      decode_level(r, skeleton.level(l));
    return skeleton;
  }

 private:
  static void decode_level(ByteReader& r, amr::AmrLevel& lv) {
    std::vector<double> values(static_cast<std::size_t>(r.get_varint()));
    for (double& v : values) v = r.get<double>();
    lv.scatter_valid(values);
  }
};
// [backends-guide:end]

/// A tiny two-level dataset: the finer level owns the x < 4 half of the
/// 8^3 domain, the coarser level the rest.
amr::AmrDataset make_dataset() {
  amr::AmrLevel fine({8, 8, 8});
  amr::AmrLevel coarse({4, 4, 4});
  for (std::size_t z = 0; z < 8; ++z)
    for (std::size_t y = 0; y < 8; ++y)
      for (std::size_t x = 0; x < 4; ++x) {
        fine.mask(x, y, z) = 1;
        fine.data(x, y, z) = static_cast<double>(x + 10 * y) - 3.5;
      }
  for (std::size_t z = 0; z < 4; ++z)
    for (std::size_t y = 0; y < 4; ++y)
      for (std::size_t x = 2; x < 4; ++x) {
        coarse.mask(x, y, z) = 1;
        coarse.data(x, y, z) = 0.25 * static_cast<double>(z) - 1.0;
      }
  return amr::AmrDataset("density", {std::move(fine), std::move(coarse)}, 2);
}

bool levels_identical(const amr::AmrLevel& a, const amr::AmrLevel& b) {
  return a.dims().nx == b.dims().nx && a.dims().ny == b.dims().ny &&
         a.dims().nz == b.dims().nz &&
         std::memcmp(a.data.span().data(), b.data.span().data(),
                     a.data.size() * sizeof(double)) == 0 &&
         std::memcmp(a.mask.span().data(), b.mask.span().data(),
                     a.mask.size()) == 0;
}

}  // namespace

int main() {
  core::register_backend(std::make_unique<PassthroughBackend>());

  const amr::AmrDataset ds = make_dataset();
  const core::TacConfig cfg;  // passthrough ignores the error bound

  // Compress through the registry — after registration the new tag is a
  // first-class citizen of every dispatch path.
  const core::CompressedAmr compressed =
      core::backend_for(PassthroughBackend::kTag).compress(ds, cfg);

  // decompress_any dispatches on the container's method tag; the
  // passthrough is lossless, so the round trip must be bit-exact.
  const amr::AmrDataset back = core::decompress_any(compressed.bytes);
  if (back.num_levels() != ds.num_levels()) {
    std::fprintf(stderr, "FAIL: level count changed in the round trip\n");
    return 1;
  }
  for (std::size_t l = 0; l < ds.num_levels(); ++l) {
    if (!levels_identical(ds.level(l), back.level(l))) {
      std::fprintf(stderr, "FAIL: level %zu not bit-identical\n", l);
      return 1;
    }
  }

  // Partial decompression works too: the base decompress_level fallback
  // is correct for any backend (per-level backends can override it with
  // an O(level) indexed read — see docs/BACKENDS.md).
  const amr::AmrLevel coarse = core::decompress_level(compressed.bytes, 1);
  if (!levels_identical(ds.level(1), coarse)) {
    std::fprintf(stderr, "FAIL: decompress_level(1) not bit-identical\n");
    return 1;
  }

  std::printf("passthrough backend (tag %u): %zu levels round-tripped "
              "losslessly, %zu -> %zu bytes\n",
              static_cast<unsigned>(PassthroughBackend::kTag),
              ds.num_levels(), compressed.report.original_bytes,
              compressed.report.compressed_bytes);
  return 0;
}
