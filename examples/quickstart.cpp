/// \file quickstart.cpp
/// \brief Minimal end-to-end use of the TAC public API.
///
/// Generates a small Nyx-like two-level AMR dataset, compresses it with
/// TAC under a relative error bound, decompresses, and verifies the error
/// bound on every stored cell.
///
///   ./quickstart

#include <cmath>
#include <cstdio>

#include "analysis/metrics.hpp"
#include "core/tac.hpp"
#include "simnyx/generator.hpp"

int main() {
  using namespace tac;

  // 1. An AMR dataset: 64^3 finest level covering 23% of the domain, the
  //    rest stored at 32^3. (Real applications would load their own
  //    snapshot into amr::AmrDataset.)
  simnyx::GeneratorConfig gen;
  gen.finest_dims = {64, 64, 64};
  gen.level_densities = {0.23, 0.77};
  gen.region_size = 8;
  const amr::AmrDataset ds = simnyx::generate_baryon_density(gen);
  std::printf("dataset: %zu levels, %zu stored values (%.1f MB)\n",
              ds.num_levels(), ds.total_valid(),
              static_cast<double>(ds.original_bytes()) / 1e6);

  // 2. Compress with TAC: per-level 3D compression behind the density
  //    filter (OpST / AKDTree / GSP), relative error bound 1e-4.
  core::TacConfig cfg;
  cfg.sz.mode = sz::ErrorBoundMode::kRelative;
  cfg.sz.error_bound = 1e-4;
  const core::CompressedAmr compressed = core::tac_compress(ds, cfg);

  std::printf("compressed: %.3f MB, CR = %.1f\n",
              static_cast<double>(compressed.bytes.size()) / 1e6,
              analysis::compression_ratio(ds.original_bytes(),
                                          compressed.bytes.size()));
  for (std::size_t l = 0; l < compressed.report.levels.size(); ++l) {
    const auto& lr = compressed.report.levels[l];
    std::printf("  level %zu: density %5.1f%% -> %s, abs_eb %.2e, %zu "
                "bytes\n",
                l, 100.0 * lr.block_density, core::to_string(lr.strategy),
                lr.abs_error_bound, lr.compressed_bytes);
  }

  // 3. Decompress and verify the error bound everywhere.
  const amr::AmrDataset back = core::decompress_any(compressed.bytes);
  double worst = 0;
  for (std::size_t l = 0; l < ds.num_levels(); ++l) {
    const auto& ol = ds.level(l);
    const auto& rl = back.level(l);
    const double eb = compressed.report.levels[l].abs_error_bound;
    for (std::size_t i = 0; i < ol.data.size(); ++i)
      if (ol.mask[i])
        worst = std::max(worst, std::fabs(ol.data[i] - rl.data[i]) / eb);
  }
  const auto stats = analysis::distortion_amr(ds, back);
  std::printf("verified: worst error = %.3f x bound, PSNR = %.1f dB\n",
              worst, stats.psnr);
  return worst <= 1.0 ? 0 : 1;
}
