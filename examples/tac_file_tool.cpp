/// \file tac_file_tool.cpp
/// \brief Command-line compressor for AMR snapshot files — the tool a
/// downstream user would wire into an I/O pipeline.
///
///   tac_file_tool gen <out.amr> [n=64]        generate a demo snapshot
///   tac_file_tool compress <in.amr> <out.tac> [rel_eb=1e-4]
///                 [--method=m | m] [--objective=ratio|throughput|balanced]
///   tac_file_tool decompress <in.tac> <out.amr>
///   tac_file_tool extract <in.tac> <out.amr> --level=k [--field=f]
///   tac_file_tool info <file> [--timing]      inspect any format
///   tac_file_tool stats <file>                decode + telemetry report
///
/// method: tac (default, adaptive), 1d, zmesh, 3d, auto (per-level
/// trial selection over the backend registry; --objective picks what the
/// trials optimize, default ratio)
///
/// `extract` uses the v2 payload index for random access: --level=k decodes
/// only level k's payload (TAC/1D containers), and --field=f picks one
/// field out of a compressed snapshot without touching the others. `info`
/// prints the payload index and verifies every checksum.
///
/// Any command also takes the global flag `--trace=<out.json>`: the run
/// executes under telemetry spans mode (see docs/TELEMETRY.md) and a
/// Chrome-tracing/Perfetto JSON trace is written on exit, rooted at a
/// `cli.<command>` span.
///
/// Exit codes: 0 success, 1 unexpected error, 2 usage error, 3 file I/O
/// error, 4 corrupt/undecodable container.
///
/// Run with no arguments for a self-contained demo in the current
/// directory.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "amr/amr_io.hpp"
#include "amr/snapshot.hpp"
#include "analysis/metrics.hpp"
#include "common/telemetry.hpp"
#include "common/timer.hpp"
#include "core/adaptive.hpp"
#include "core/backend.hpp"
#include "simnyx/generator.hpp"

namespace {

using namespace tac;

constexpr int kExitError = 1;
constexpr int kExitUsage = 2;
constexpr int kExitIo = 3;
constexpr int kExitCorrupt = 4;

/// File-level failures (open/read/write) — mapped to kExitIo, distinct
/// from corrupt-container errors raised by the decoders.
struct IoError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Undecodable input bytes — mapped to kExitCorrupt.
struct CorruptError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Runs one decode step over already-read file bytes. Inside a decode,
/// ANY library exception means the bytes are bad — the lossless layer
/// throws invalid_argument for impossible Huffman tables, sz throws
/// runtime_error — so everything maps to CorruptError (exit 4), never to
/// the usage exit reserved for bad command lines.
template <class F>
auto decode_step(F&& f) -> decltype(f()) {
  try {
    return f();
  } catch (const tac::core::ChecksumError&) {
    throw;
  } catch (const std::exception& e) {
    throw CorruptError(e.what());
  }
}

/// Streamed in fixed chunks instead of one slurp: bounded syscall sizes,
/// and short reads/writes surface as IoError instead of silently handing
/// a half-filled buffer to the decoders.
constexpr std::size_t kIoChunk = std::size_t{1} << 20;  // 1 MiB

std::vector<std::uint8_t> read_file(const std::string& path) {
  TAC_SPAN_NAMED(span, "cli.load");
  std::ifstream f(path, std::ios::binary);
  if (!f) throw IoError("cannot open " + path);
  std::vector<std::uint8_t> bytes;
  for (;;) {
    const std::size_t old = bytes.size();
    bytes.resize(old + kIoChunk);
    f.read(reinterpret_cast<char*>(bytes.data() + old),
           static_cast<std::streamsize>(kIoChunk));
    bytes.resize(old + static_cast<std::size_t>(f.gcount()));
    if (f.eof()) {
      span.set_bytes(bytes.size());
      return bytes;
    }
    if (!f) throw IoError("read failed: " + path);
  }
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  TAC_SPAN_BYTES("cli.write", bytes.size());
  std::ofstream f(path, std::ios::binary);
  if (!f) throw IoError("cannot open " + path);
  for (std::size_t pos = 0; pos < bytes.size(); pos += kIoChunk) {
    const std::size_t n = std::min(kIoChunk, bytes.size() - pos);
    f.write(reinterpret_cast<const char*>(bytes.data() + pos),
            static_cast<std::streamsize>(n));
    if (!f) throw IoError("write failed: " + path);
  }
  f.flush();
  if (!f) throw IoError("write failed: " + path);
}

int cmd_gen(const std::string& out, std::size_t n) {
  simnyx::GeneratorConfig gen;
  gen.finest_dims = {n, n, n};
  gen.level_densities = {0.23, 0.77};
  gen.region_size = 8;
  const auto ds = [&] {
    TAC_SPAN("cli.generate");
    return simnyx::generate_baryon_density(gen);
  }();
  {
    TAC_SPAN("cli.write");
    amr::save_dataset(out, ds);
  }
  std::printf("wrote %s: %zu levels, %zu values\n", out.c_str(),
              ds.num_levels(), ds.total_valid());
  return 0;
}

int cmd_compress(const std::string& in, const std::string& out,
                 double rel_eb, const std::string& method,
                 const std::string& objective) {
  const auto ds = [&] {
    TAC_SPAN("cli.load");
    return amr::load_dataset(in);
  }();
  core::TacConfig cfg;
  cfg.sz.mode = sz::ErrorBoundMode::kRelative;
  cfg.sz.error_bound = rel_eb;
  if (objective == "ratio") {
    cfg.selector.objective = core::SelectorObjective::kRatio;
  } else if (objective == "throughput") {
    cfg.selector.objective = core::SelectorObjective::kThroughput;
  } else if (objective == "balanced") {
    cfg.selector.objective = core::SelectorObjective::kBalanced;
  } else if (!objective.empty()) {
    std::fprintf(stderr,
                 "unknown objective '%s' (ratio, throughput, balanced)\n",
                 objective.c_str());
    return kExitUsage;
  }

  core::CompressedAmr compressed;
  if (method == "tac") {
    compressed = core::adaptive_compress(ds, cfg);
  } else if (method == "1d") {
    compressed = core::backend_for(core::Method::kOneD).compress(ds, cfg);
  } else if (method == "zmesh") {
    compressed = core::backend_for(core::Method::kZMesh).compress(ds, cfg);
  } else if (method == "3d") {
    compressed =
        core::backend_for(core::Method::kUpsample3D).compress(ds, cfg);
  } else if (method == "auto") {
    compressed = core::backend_for(core::Method::kAuto).compress(ds, cfg);
  } else {
    std::fprintf(stderr, "unknown method '%s'\n", method.c_str());
    return kExitUsage;
  }
  write_file(out, compressed.bytes);
  std::printf("%s -> %s: %s, CR %.1f, %.1f MB/s compress\n", in.c_str(),
              out.c_str(), core::to_string(compressed.report.method),
              analysis::compression_ratio(ds.original_bytes(),
                                          compressed.bytes.size()),
              throughput_mbs(ds.original_bytes(),
                             compressed.report.seconds));
  if (compressed.report.method == core::Method::kAuto) {
    std::printf("  per-level winners:");
    for (std::size_t l = 0; l < compressed.report.levels.size(); ++l)
      std::printf(" %zu:%s", l,
                  core::to_string(compressed.report.levels[l].method));
    std::printf("\n");
  }
  return 0;
}

int cmd_decompress(const std::string& in, const std::string& out) {
  const auto bytes = read_file(in);
  const auto ds = decode_step([&] { return core::decompress_any(bytes); });
  {
    TAC_SPAN("cli.write");
    amr::save_dataset(out, ds);
  }
  std::printf("%s -> %s: field '%s', %zu levels\n", in.c_str(), out.c_str(),
              ds.field_name().c_str(), ds.num_levels());
  return 0;
}

int cmd_extract(const std::string& in, const std::string& out, long level,
                const std::string& field) {
  const auto bytes = read_file(in);

  std::span<const std::uint8_t> container(bytes);
  if (!field.empty()) {
    if (!core::is_compressed_snapshot(bytes)) {
      std::fprintf(stderr,
                   "--field requires a compressed snapshot input "
                   "(%s is a single-field container)\n",
                   in.c_str());
      return kExitUsage;
    }
    // One parse serves both the misspelled-field usage message and the
    // slice lookup.
    const auto fields =
        decode_step([&] { return core::snapshot_fields(bytes); });
    const auto it =
        std::find_if(fields.begin(), fields.end(),
                     [&](const auto& f) { return f.name == field; });
    if (it == fields.end()) {
      std::fprintf(stderr, "no field '%s' in %s (fields:", field.c_str(),
                   in.c_str());
      for (const auto& f : fields)
        std::fprintf(stderr, " %s", f.name.c_str());
      std::fprintf(stderr, ")\n");
      return kExitUsage;
    }
    if (!it->checksum_ok)
      throw core::ChecksumError("snapshot container: field \"" + field +
                                "\" checksum mismatch");
    container = it->bytes;
  } else if (core::is_compressed_snapshot(bytes)) {
    std::fprintf(stderr,
                 "%s is a multi-field snapshot; pick one with --field=<name> "
                 "(fields:",
                 in.c_str());
    for (const auto& f :
         decode_step([&] { return core::snapshot_fields(bytes); }))
      std::fprintf(stderr, " %s", f.name.c_str());
    std::fprintf(stderr, ")\n");
    return kExitUsage;
  }

  if (level < 0) {
    // Field-only extraction: decode the whole selected container.
    const auto ds =
        decode_step([&] { return core::decompress_any(container); });
    {
      TAC_SPAN("cli.write");
      amr::save_dataset(out, ds);
    }
    std::printf("%s -> %s: field '%s', %zu levels\n", in.c_str(), out.c_str(),
                ds.field_name().c_str(), ds.num_levels());
    return 0;
  }

  // Level extraction: the payload index makes this O(level), not
  // O(dataset), for TAC/1D containers. Parse the header once and hand it
  // to the backend directly (the decompress_level convenience wrapper
  // would parse — and unpack every level mask — a second time).
  const core::CommonHeader h = decode_step([&] {
    ByteReader header_reader(container);
    return core::read_common_header(header_reader);
  });
  if (static_cast<std::size_t>(level) >= h.skeleton.num_levels()) {
    std::fprintf(stderr, "no level %ld in %s (container has %zu levels)\n",
                 level, in.c_str(), h.skeleton.num_levels());
    return kExitUsage;
  }
  amr::AmrLevel lv = decode_step([&] {
    return core::backend_for(h.method).decompress_level(
        container, h, static_cast<std::size_t>(level));
  });
  const auto dims = lv.dims();
  const std::size_t valid = lv.valid_count();
  amr::AmrDataset single(h.skeleton.field_name(), {std::move(lv)},
                         h.skeleton.refinement_ratio());
  {
    TAC_SPAN("cli.write");
    amr::save_dataset(out, single);
  }
  std::printf("%s -> %s: field '%s' level %ld of %zu, %zux%zux%zu, "
              "%zu valid cells\n",
              in.c_str(), out.c_str(), single.field_name().c_str(), level,
              h.skeleton.num_levels(), dims.nx, dims.ny, dims.nz, valid);
  return 0;
}

/// --timing: decode each payload through the v2 index and report where
/// decompression time goes. One payload maps to one level for TAC/1D
/// containers, so this is the per-level random-access cost a reader pays;
/// single-payload methods (zmesh/3D) time the full decode. Timing comes
/// from the telemetry stage spans the library already carries: the
/// decodes run under spans mode and the merged stage tree is printed, so
/// the breakdown matches `--trace` / `stats` instead of a parallel set of
/// ad-hoc timers.
void print_payload_timing(const std::vector<std::uint8_t>& bytes,
                          const core::CommonHeader& h) {
  const telemetry::Mode saved = telemetry::set_mode(telemetry::Mode::kSpans);
  telemetry::reset_spans();
  telemetry::reset_stages();
  const std::span<const std::uint8_t> container(bytes);
  {
    TAC_SPAN_NAMED(root, "info.timing");
    root.set_bytes(bytes.size());
    if (h.index.entries.size() == h.skeleton.num_levels()) {
      for (std::size_t l = 0; l < h.skeleton.num_levels(); ++l) {
        TAC_SPAN("info.payload_decode");
        (void)decode_step([&] {
          return core::backend_for(h.method).decompress_level(container, h, l);
        });
      }
    } else {
      TAC_SPAN("info.full_decode");
      (void)decode_step([&] { return core::decompress_any(container); });
    }
  }
  telemetry::print_stage_tree(std::cout);
  telemetry::set_mode(saved);
}

int print_container_info(const std::string& path,
                         const std::vector<std::uint8_t>& bytes,
                         bool timing) {
  const core::CommonHeader h = decode_step([&] {
    ByteReader r(bytes);
    return core::read_common_header(r);
  });
  std::printf("%s: compressed container v%u, method %s, field '%s', "
              "%zu levels, %zu bytes\n",
              path.c_str(), h.version, core::to_string(h.method),
              h.skeleton.field_name().c_str(), h.skeleton.num_levels(),
              bytes.size());
  if (h.index.entries.empty()) {
    std::printf("  no payload index (v1 container; no random access, "
                "no checksums)\n");
    return 0;
  }
  bool all_ok = true;
  for (std::size_t i = 0; i < h.index.entries.size(); ++i) {
    const auto& e = h.index.entries[i];
    const char* status = "OK";
    try {
      core::verify_payload(bytes, h.index, i);
    } catch (const std::exception&) {
      status = "FAIL";
      all_ok = false;
    }
    // Pre-v3 containers carry no per-payload profile byte and pre-v4
    // containers no selector byte; show "-" so the columns stay aligned
    // across format versions.
    const auto profile = core::payload_profile(h, i);
    const auto method = core::payload_method(h, i);
    std::printf("  payload %zu: offset %llu, length %llu, crc32 %08x, "
                "profile %s, method %s  %s\n",
                i, static_cast<unsigned long long>(e.offset),
                static_cast<unsigned long long>(e.length), e.crc32,
                profile ? lossless::to_string(*profile) : "-",
                method ? core::to_string(*method) : "-", status);
  }
  const std::size_t index_bytes = h.payload_offset - h.index_offset;
  std::printf("  index: %zu bytes (%.3f%% of container), checksums %s\n",
              index_bytes,
              100.0 * static_cast<double>(index_bytes) /
                  static_cast<double>(bytes.size()),
              all_ok ? "all OK" : "FAILED");
  if (all_ok && timing) print_payload_timing(bytes, h);
  return all_ok ? 0 : kExitCorrupt;
}

int print_snapshot_info(const std::string& path,
                        const std::vector<std::uint8_t>& bytes) {
  const auto fields = decode_step([&] { return core::snapshot_fields(bytes); });
  std::printf("%s: compressed snapshot, %zu fields, %zu bytes\n",
              path.c_str(), fields.size(), bytes.size());
  bool all_ok = true;
  for (const auto& f : fields) {
    if (f.checksum_ok) {
      const char* method = "?";
      try {
        method = core::to_string(core::peek_method(f.bytes));
      } catch (const std::exception&) {
        // A passing checksum with an unreadable header can only mean the
        // snapshot was written with a newer method set; still listable.
      }
      std::printf("  field '%s': %zu bytes, method %s, checksum OK\n",
                  f.name.c_str(), f.bytes.size(), method);
    } else {
      std::printf("  field '%s': %zu bytes, checksum FAIL\n", f.name.c_str(),
                  f.bytes.size());
      all_ok = false;
    }
  }
  return all_ok ? 0 : kExitCorrupt;
}

int cmd_info(const std::string& path, bool timing) {
  const auto bytes = read_file(path);
  if (core::is_compressed_snapshot(bytes)) {
    if (timing)
      std::fprintf(stderr,
                   "--timing applies to single-field containers; extract a "
                   "field first\n");
    return print_snapshot_info(path, bytes);
  }
  // Only the magic decides the route: once it matches, any parse error
  // (truncation, bad version, bad tag) must surface as this container's
  // error, not a misleading AMR-format one.
  if (core::is_container(bytes))
    return print_container_info(path, bytes, timing);
  if (timing) {
    std::fprintf(stderr, "--timing requires a compressed container\n");
    return kExitUsage;
  }
  const auto ds = decode_step([&] { return amr::dataset_from_bytes(bytes); });
  std::printf("%s: AMR snapshot, field '%s', ratio %d, %zu levels\n",
              path.c_str(), ds.field_name().c_str(), ds.refinement_ratio(),
              ds.num_levels());
  for (std::size_t l = 0; l < ds.num_levels(); ++l)
    std::printf("  level %zu: %zux%zux%zu, density %.2f%%\n", l,
                ds.level(l).dims().nx, ds.level(l).dims().ny,
                ds.level(l).dims().nz, 100.0 * ds.level(l).density());
  return 0;
}

/// stats: decode the file once with telemetry enabled and print the
/// per-stage time tree plus the counter registry — the same data the
/// Chrome-trace exporter emits, rendered for a terminal. Accepts a
/// compressed container or a compressed snapshot.
int cmd_stats(const std::string& path) {
  const auto bytes = read_file(path);
  if (!core::is_container(bytes) && !core::is_compressed_snapshot(bytes)) {
    std::fprintf(stderr,
                 "%s is not a compressed container or snapshot "
                 "(stats decodes TAC output files)\n",
                 path.c_str());
    return kExitUsage;
  }
  const telemetry::Mode saved = telemetry::set_mode(telemetry::Mode::kSpans);
  telemetry::reset_all();
  std::size_t fields = 1;
  {
    TAC_SPAN_NAMED(root, "stats.decode");
    root.set_bytes(bytes.size());
    if (core::is_compressed_snapshot(bytes)) {
      const auto s =
          decode_step([&] { return core::decompress_snapshot(bytes); });
      fields = s.fields.size();
    } else {
      (void)decode_step([&] { return core::decompress_any(bytes); });
    }
  }
  std::printf("%s: %zu bytes, %zu field%s decoded\n", path.c_str(),
              bytes.size(), fields, fields == 1 ? "" : "s");
  telemetry::print_stage_tree(std::cout);
  telemetry::print_counters(std::cout);
  telemetry::set_mode(saved);
  return 0;
}

int demo() {
  std::printf("no arguments: running the self-contained demo\n");
  if (const int rc = cmd_gen("demo.amr", 64)) return rc;
  if (const int rc = cmd_compress("demo.amr", "demo.tac", 1e-4, "tac", ""))
    return rc;
  if (const int rc = cmd_info("demo.tac", /*timing=*/false)) return rc;
  if (const int rc = cmd_decompress("demo.tac", "demo_out.amr")) return rc;
  if (const int rc = cmd_extract("demo.tac", "demo_l0.amr", 0, "")) return rc;
  // Verify the round trip respects the bound.
  const auto orig = amr::load_dataset("demo.amr");
  const auto back = amr::load_dataset("demo_out.amr");
  const auto stats = analysis::distortion_amr(orig, back);
  std::printf("round trip PSNR: %.1f dB, max error %.3e\n", stats.psnr,
              stats.max_abs_error);
  std::remove("demo.amr");
  std::remove("demo.tac");
  std::remove("demo_out.amr");
  std::remove("demo_l0.amr");
  return 0;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s gen <out.amr> [n] | compress <in> <out> "
               "[rel_eb] [--method=tac|1d|zmesh|3d|auto] "
               "[--objective=ratio|throughput|balanced] | "
               "decompress <in> <out> | "
               "extract <in.tac> <out.amr> --level=k [--field=f] | "
               "info <file> [--timing] | "
               "stats <file>\n"
               "global flags: --trace=<out.json> (Chrome-tracing span "
               "export; see docs/TELEMETRY.md)\n",
               argv0);
  return kExitUsage;
}

/// Numeric CLI arguments parse before any command runs, so a malformed
/// number is a usage error while library-thrown invalid_argument /
/// out_of_range (bad grid extent, level past the container, ...) keep
/// their descriptive messages.
bool parse_num(const char* s, std::size_t& out) {
  // Digits only: stoul would silently wrap "-2" to a huge value.
  if (*s == '\0') return false;
  for (const char* p = s; *p; ++p)
    if (*p < '0' || *p > '9') return false;
  try {
    std::size_t idx = 0;
    out = std::stoul(s, &idx);
    return idx == std::strlen(s);
  } catch (const std::exception&) {
    return false;
  }
}

bool parse_num(const char* s, double& out) {
  try {
    std::size_t idx = 0;
    out = std::stod(s, &idx);
    return idx == std::strlen(s);
  } catch (const std::exception&) {
    return false;
  }
}

/// Command dispatch over the argv left after global flags are stripped.
/// Factored out of main() so the --trace root span can bracket exactly
/// one command run.
int dispatch(int argc, char** argv) {
  if (argc < 2) return demo();
  const std::string cmd = argv[1];
  if (cmd == "gen" && argc >= 3) {
    std::size_t n = 64;
    if (argc >= 4 && !parse_num(argv[3], n)) return usage(argv[0]);
    return cmd_gen(argv[2], n);
  }
  if (cmd == "compress" && argc >= 4) {
    double rel_eb = 1e-4;
    std::string method = "tac";
    std::string objective;
    bool saw_eb = false, saw_method = false;
    for (int i = 4; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--method=", 0) == 0) {
        method = arg.substr(9);
      } else if (arg.rfind("--objective=", 0) == 0) {
        objective = arg.substr(12);
      } else if (!saw_eb && parse_num(argv[i], rel_eb)) {
        saw_eb = true;  // positional [rel_eb]
      } else if (!saw_method) {
        method = arg;  // positional [method]
        saw_method = true;
      } else {
        return usage(argv[0]);
      }
    }
    return cmd_compress(argv[2], argv[3], rel_eb, method, objective);
  }
  if (cmd == "decompress" && argc >= 4)
    return cmd_decompress(argv[2], argv[3]);
  if (cmd == "extract" && argc >= 4) {
    long level = -1;
    std::string field;
    for (int i = 4; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--level=", 0) == 0) {
        std::size_t k = 0;
        if (!parse_num(arg.c_str() + 8, k)) return usage(argv[0]);
        level = static_cast<long>(k);
      } else if (arg.rfind("--field=", 0) == 0) {
        field = arg.substr(8);
      } else {
        return usage(argv[0]);
      }
    }
    if (level < 0 && field.empty()) return usage(argv[0]);
    return cmd_extract(argv[2], argv[3], level, field);
  }
  if (cmd == "info" && argc >= 3) {
    bool timing = false;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--timing") == 0)
        timing = true;
      else
        return usage(argv[0]);
    }
    return cmd_info(argv[2], timing);
  }
  if (cmd == "stats" && argc == 3) return cmd_stats(argv[2]);
  return usage(argv[0]);
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the global --trace flag before command dispatch so every
  // subcommand accepts it in any position.
  std::string trace_path;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0)
      trace_path = argv[i] + 8;
    else if (std::strcmp(argv[i], "--trace") == 0)
      trace_path.clear();  // missing =path: caught below
    else
      args.push_back(argv[i]);
  }
  if (argc > static_cast<int>(args.size()) && trace_path.empty()) {
    std::fprintf(stderr, "--trace needs a path: --trace=<out.json>\n");
    return kExitUsage;
  }
  // The root span name must outlive the export below (the ring stores
  // the pointer), so it lives in main's scope, not the block's.
  const std::string root_name =
      std::string("cli.") + (args.size() > 1 ? args[1] : "demo");
  try {
    if (!trace_path.empty())
      tac::telemetry::set_mode(tac::telemetry::Mode::kSpans);
    int rc;
    {
      TAC_SPAN_NAMED(root, root_name.c_str());
      rc = dispatch(static_cast<int>(args.size()), args.data());
    }
    if (!trace_path.empty()) {
      if (!tac::telemetry::write_chrome_trace_file(trace_path)) {
        std::fprintf(stderr, "cannot write trace to %s\n",
                     trace_path.c_str());
        return kExitIo;
      }
      std::fprintf(stderr, "trace written to %s\n", trace_path.c_str());
    }
    return rc;
  } catch (const IoError& e) {
    std::fprintf(stderr, "I/O error: %s\n", e.what());
    return kExitIo;
  } catch (const tac::core::ChecksumError& e) {
    std::fprintf(stderr, "corrupt container: %s\n", e.what());
    return kExitCorrupt;
  } catch (const CorruptError& e) {
    std::fprintf(stderr, "corrupt container: %s\n", e.what());
    return kExitCorrupt;
  } catch (const std::invalid_argument& e) {
    // Library-rejected user input (bad grid extent, empty dataset, ...):
    // keep the descriptive message, classify as a usage error.
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitUsage;
  } catch (const std::out_of_range& e) {
    // e.g. --level past the container's level count.
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitUsage;
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "corrupt container: %s\n", e.what());
    return kExitCorrupt;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitError;
  }
}
