/// \file tac_file_tool.cpp
/// \brief Command-line compressor for AMR snapshot files — the tool a
/// downstream user would wire into an I/O pipeline.
///
///   tac_file_tool gen <out.amr> [n=64]        generate a demo snapshot
///   tac_file_tool compress <in.amr> <out.tac> [rel_eb=1e-4] [method]
///   tac_file_tool decompress <in.tac> <out.amr>
///   tac_file_tool info <file>                 inspect either format
///
/// method: tac (default, adaptive), 1d, zmesh, 3d
/// Run with no arguments for a self-contained demo in the current
/// directory.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "amr/amr_io.hpp"
#include "analysis/metrics.hpp"
#include "common/timer.hpp"
#include "core/adaptive.hpp"
#include "core/backend.hpp"
#include "simnyx/generator.hpp"

namespace {

using namespace tac;

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) throw std::runtime_error("cannot open " + path);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(f.tellg()));
  f.seekg(0);
  f.read(reinterpret_cast<char*>(bytes.data()),
         static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open " + path);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
}

int cmd_gen(const std::string& out, std::size_t n) {
  simnyx::GeneratorConfig gen;
  gen.finest_dims = {n, n, n};
  gen.level_densities = {0.23, 0.77};
  gen.region_size = 8;
  const auto ds = simnyx::generate_baryon_density(gen);
  amr::save_dataset(out, ds);
  std::printf("wrote %s: %zu levels, %zu values\n", out.c_str(),
              ds.num_levels(), ds.total_valid());
  return 0;
}

int cmd_compress(const std::string& in, const std::string& out,
                 double rel_eb, const std::string& method) {
  const auto ds = amr::load_dataset(in);
  core::TacConfig cfg;
  cfg.sz.mode = sz::ErrorBoundMode::kRelative;
  cfg.sz.error_bound = rel_eb;

  core::CompressedAmr compressed;
  if (method == "tac") {
    compressed = core::adaptive_compress(ds, cfg);
  } else if (method == "1d") {
    compressed = core::backend_for(core::Method::kOneD).compress(ds, cfg);
  } else if (method == "zmesh") {
    compressed = core::backend_for(core::Method::kZMesh).compress(ds, cfg);
  } else if (method == "3d") {
    compressed =
        core::backend_for(core::Method::kUpsample3D).compress(ds, cfg);
  } else {
    std::fprintf(stderr, "unknown method '%s'\n", method.c_str());
    return 2;
  }
  write_file(out, compressed.bytes);
  std::printf("%s -> %s: %s, CR %.1f, %.1f MB/s compress\n", in.c_str(),
              out.c_str(), core::to_string(compressed.report.method),
              analysis::compression_ratio(ds.original_bytes(),
                                          compressed.bytes.size()),
              throughput_mbs(ds.original_bytes(),
                             compressed.report.seconds));
  return 0;
}

int cmd_decompress(const std::string& in, const std::string& out) {
  const auto bytes = read_file(in);
  const auto ds = core::decompress_any(bytes);
  amr::save_dataset(out, ds);
  std::printf("%s -> %s: field '%s', %zu levels\n", in.c_str(), out.c_str(),
              ds.field_name().c_str(), ds.num_levels());
  return 0;
}

int cmd_info(const std::string& path) {
  const auto bytes = read_file(path);
  try {
    const auto method = core::peek_method(bytes);
    std::printf("%s: compressed container, method %s, %zu bytes\n",
                path.c_str(), core::to_string(method), bytes.size());
    return 0;
  } catch (const std::exception&) {
    // Not a container; try the snapshot format.
  }
  const auto ds = amr::dataset_from_bytes(bytes);
  std::printf("%s: AMR snapshot, field '%s', ratio %d, %zu levels\n",
              path.c_str(), ds.field_name().c_str(), ds.refinement_ratio(),
              ds.num_levels());
  for (std::size_t l = 0; l < ds.num_levels(); ++l)
    std::printf("  level %zu: %zux%zux%zu, density %.2f%%\n", l,
                ds.level(l).dims().nx, ds.level(l).dims().ny,
                ds.level(l).dims().nz, 100.0 * ds.level(l).density());
  return 0;
}

int demo() {
  std::printf("no arguments: running the self-contained demo\n");
  if (const int rc = cmd_gen("demo.amr", 64)) return rc;
  if (const int rc = cmd_compress("demo.amr", "demo.tac", 1e-4, "tac"))
    return rc;
  if (const int rc = cmd_info("demo.tac")) return rc;
  if (const int rc = cmd_decompress("demo.tac", "demo_out.amr")) return rc;
  // Verify the round trip respects the bound.
  const auto orig = amr::load_dataset("demo.amr");
  const auto back = amr::load_dataset("demo_out.amr");
  const auto stats = analysis::distortion_amr(orig, back);
  std::printf("round trip PSNR: %.1f dB, max error %.3e\n", stats.psnr,
              stats.max_abs_error);
  std::remove("demo.amr");
  std::remove("demo.tac");
  std::remove("demo_out.amr");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) return demo();
    const std::string cmd = argv[1];
    if (cmd == "gen" && argc >= 3)
      return cmd_gen(argv[2],
                     argc >= 4 ? static_cast<std::size_t>(std::stoul(argv[3]))
                               : 64);
    if (cmd == "compress" && argc >= 4)
      return cmd_compress(argv[2], argv[3],
                          argc >= 5 ? std::stod(argv[4]) : 1e-4,
                          argc >= 6 ? argv[5] : "tac");
    if (cmd == "decompress" && argc >= 4)
      return cmd_decompress(argv[2], argv[3]);
    if (cmd == "info" && argc >= 3) return cmd_info(argv[2]);
    std::fprintf(stderr,
                 "usage: %s gen <out.amr> [n] | compress <in> <out> "
                 "[rel_eb] [tac|1d|zmesh|3d] | decompress <in> <out> | "
                 "info <file>\n",
                 argv[0]);
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
