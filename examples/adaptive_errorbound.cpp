/// \file adaptive_errorbound.cpp
/// \brief Tuning per-level error bounds (paper §4.5).
///
/// Level-wise compression lets TAC spend its error budget unevenly: the
/// paper derives fine:coarse ratios of 3:1 for power-spectrum quality and
/// 2:1 for halo-finder quality. This example sweeps the ratio on a
/// Z2-like dataset at a fixed fine-level bound and shows how bit-rate
/// splits across levels and what the post-analysis error does.
///
///   ./adaptive_errorbound

#include <cstdio>

#include "amr/uniform.hpp"
#include "analysis/metrics.hpp"
#include "analysis/power_spectrum.hpp"
#include "core/adaptive.hpp"
#include "simnyx/generator.hpp"

int main() {
  using namespace tac;

  simnyx::GeneratorConfig gen;
  gen.finest_dims = {64, 64, 64};
  gen.level_densities = {0.63, 0.37};
  gen.region_size = 8;
  const auto ds = simnyx::generate_baryon_density(gen);
  const auto uniform_truth = amr::compose_uniform(ds);
  const auto ps_truth = analysis::power_spectrum(uniform_truth);

  const double fine_eb = 1e8;
  std::printf("fine-level abs error bound fixed at %.1e; sweeping the "
              "fine:coarse ratio\n\n", fine_eb);
  std::printf("%-8s %12s %12s %10s %8s %22s\n", "ratio", "fine bytes",
              "coarse bytes", "bitrate", "CR", "max P(k) err k<10 (%)");

  for (const double ratio : {1.0, 2.0, 3.0, 4.0, 8.0}) {
    core::TacConfig cfg;
    cfg.level_error_bounds =
        core::ratio_error_bounds(fine_eb, ratio, ds.num_levels());
    const auto compressed = core::tac_compress(ds, cfg);
    const auto recon = core::decompress_any(compressed.bytes);
    const auto ps =
        analysis::power_spectrum(amr::compose_uniform(recon));
    std::printf("%-8.0f %12zu %12zu %10.3f %8.1f %22.4f\n", ratio,
                compressed.report.levels[0].compressed_bytes,
                compressed.report.levels[1].compressed_bytes,
                analysis::bit_rate(ds.total_valid(),
                                   compressed.bytes.size()),
                analysis::compression_ratio(ds.original_bytes(),
                                            compressed.bytes.size()),
                100.0 * analysis::max_relative_error(ps_truth, ps, 10.0));
  }

  std::printf("\nreading the table: larger ratios shrink the coarse-level "
              "bound, buying post-analysis quality with coarse-level bits; "
              "the paper settles on 3:1 (power spectrum) and 2:1 (halo "
              "finder) after the same rate-distortion balancing.\n");
  return 0;
}
