/// \file cosmology_pipeline.cpp
/// \brief Full Nyx-style in-situ compression pipeline.
///
/// Generates all six cosmology fields on a shared refinement structure,
/// compresses each with the method the adaptive selector picks (TAC or the
/// 3D baseline, per the finest level's density), then runs the two
/// application-specific analyses — matter power spectrum and halo finder —
/// on the decompressed baryon density and reports the post-analysis
/// quality, mirroring §4.5 of the paper.
///
///   ./cosmology_pipeline

#include <cstdio>
#include <vector>

#include "amr/uniform.hpp"
#include "analysis/halo_finder.hpp"
#include "analysis/metrics.hpp"
#include "analysis/power_spectrum.hpp"
#include "core/adaptive.hpp"
#include "simnyx/generator.hpp"

int main() {
  using namespace tac;

  simnyx::GeneratorConfig gen;
  gen.finest_dims = {64, 64, 64};
  gen.level_densities = {0.3, 0.7};
  gen.region_size = 8;
  std::printf("generating six Nyx-like fields on a shared %zu^3 grid...\n",
              gen.finest_dims.nx);
  const simnyx::NyxFieldSet fields = simnyx::generate_fields(gen);

  core::TacConfig cfg;
  cfg.sz.mode = sz::ErrorBoundMode::kRelative;
  cfg.sz.error_bound = 1e-4;

  struct FieldRun {
    const char* name;
    const amr::AmrDataset* ds;
  };
  const std::vector<FieldRun> runs = {
      {"baryon_density", &fields.baryon_density},
      {"dark_matter_density", &fields.dark_matter_density},
      {"temperature", &fields.temperature},
      {"velocity_x", &fields.velocity_x},
      {"velocity_y", &fields.velocity_y},
      {"velocity_z", &fields.velocity_z},
  };

  std::printf("\n%-22s %-8s %8s %10s\n", "field", "method", "CR",
              "PSNR(dB)");
  std::vector<std::uint8_t> baryon_bytes;
  for (const auto& run : runs) {
    const auto compressed = core::adaptive_compress(*run.ds, cfg);
    const auto back = core::decompress_any(compressed.bytes);
    const auto stats = analysis::distortion_amr(*run.ds, back);
    std::printf("%-22s %-8s %8.1f %10.2f\n", run.name,
                core::to_string(compressed.report.method),
                analysis::compression_ratio(run.ds->original_bytes(),
                                            compressed.bytes.size()),
                stats.psnr);
    if (run.ds == &fields.baryon_density) baryon_bytes = compressed.bytes;
  }

  // Post-analysis on the decompressed baryon density.
  const auto recon = core::decompress_any(baryon_bytes);
  const auto uniform_truth = amr::compose_uniform(fields.baryon_density);
  const auto uniform_recon = amr::compose_uniform(recon);

  const auto ps_truth = analysis::power_spectrum(uniform_truth);
  const auto ps_recon = analysis::power_spectrum(uniform_recon);
  const double ps_err =
      analysis::max_relative_error(ps_truth, ps_recon, 10.0);
  std::printf("\npower spectrum: max relative P(k) error for k<10 = "
              "%.4f%% (acceptance: < 1%%) -> %s\n",
              100.0 * ps_err, ps_err < 0.01 ? "PASS" : "FAIL");

  const auto halos_truth = analysis::find_halos(uniform_truth);
  const auto halos_recon = analysis::find_halos(uniform_recon);
  const auto cmp = analysis::compare_largest_halo(halos_truth, halos_recon);
  std::printf("halo finder: %zu halos -> %zu halos; biggest halo mass diff "
              "%.2e, cell diff %.0f\n",
              cmp.halos_truth, cmp.halos_other, cmp.rel_mass_diff,
              cmp.cell_count_diff);
  return 0;
}
