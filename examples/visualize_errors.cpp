/// \file visualize_errors.cpp
/// \brief Whole-snapshot compression plus error-map rendering.
///
/// Compresses a multi-field Nyx-like snapshot in one container, then
/// renders the paper's style of visual diagnostics (Figures 7/12): a
/// log-scaled slice of the baryon density and the per-cell compression
/// error heat map of the same slice, as PGM images in the current
/// directory.
///
///   ./visualize_errors [out_prefix]

#include <cstdio>
#include <string>

#include "amr/snapshot.hpp"
#include "amr/uniform.hpp"
#include "analysis/metrics.hpp"
#include "analysis/slice_image.hpp"
#include "core/tac.hpp"
#include "simnyx/generator.hpp"

int main(int argc, char** argv) {
  using namespace tac;
  const std::string prefix = argc > 1 ? argv[1] : "snapshot";

  simnyx::GeneratorConfig gen;
  gen.finest_dims = {64, 64, 64};
  gen.level_densities = {0.23, 0.77};
  gen.region_size = 8;
  const auto fields = simnyx::generate_fields(gen);

  amr::Snapshot snapshot;
  snapshot.fields = {fields.baryon_density, fields.dark_matter_density,
                     fields.temperature, fields.velocity_x,
                     fields.velocity_y, fields.velocity_z};
  const std::string structure_check = snapshot.validate_shared_structure();
  std::printf("snapshot: %zu fields, shared structure: %s\n",
              snapshot.fields.size(),
              structure_check.empty() ? "ok" : structure_check.c_str());

  core::TacConfig cfg;
  cfg.sz.mode = sz::ErrorBoundMode::kRelative;
  cfg.sz.error_bound = 1e-3;
  const auto bytes = core::compress_snapshot(snapshot, cfg);
  std::size_t original = 0;
  for (const auto& f : snapshot.fields) original += f.original_bytes();
  std::printf("compressed snapshot: %.2f MB -> %.2f MB (CR %.1f)\n",
              static_cast<double>(original) / 1e6,
              static_cast<double>(bytes.size()) / 1e6,
              analysis::compression_ratio(original, bytes.size()));

  const auto back = core::decompress_snapshot(bytes);
  const auto& orig_density = snapshot.fields.front();
  const auto& recon_density = back.fields.front();
  const auto u_orig = amr::compose_uniform(orig_density);
  const auto u_recon = amr::compose_uniform(recon_density);
  const auto stats = analysis::distortion(u_orig.span(), u_recon.span());
  std::printf("baryon density: PSNR %.2f dB, max err %.3e\n", stats.psnr,
              stats.max_abs_error);

  const std::size_t z = u_orig.dims().nz / 2;
  const std::string field_png = prefix + "_density_slice.pgm";
  const std::string error_png = prefix + "_error_slice.pgm";
  analysis::write_slice_pgm(field_png, u_orig, {.z = z, .log_scale = true});
  analysis::write_error_slice_pgm(error_png, u_orig, u_recon,
                                  {.z = z, .log_scale = true});
  std::printf("wrote %s and %s (z-slice %zu; brighter = larger value / "
              "error)\n",
              field_png.c_str(), error_png.c_str(), z);
  return 0;
}
