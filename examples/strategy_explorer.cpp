/// \file strategy_explorer.cpp
/// \brief Watching the density filter across a simulated run.
///
/// As an AMR cosmology run evolves (z10 -> z2 in the paper's run 1), the
/// finest level's density grows and TAC's choices shift: OpST at early
/// times, AKDTree in the middle, GSP / the 3D-baseline fallback late.
/// This example replays that evolution on synthetic timesteps and prints
/// what the filter decides and what it costs.
///
///   ./strategy_explorer

#include <cstdio>

#include "analysis/metrics.hpp"
#include "core/adaptive.hpp"
#include "simnyx/generator.hpp"

int main() {
  using namespace tac;

  struct Timestep {
    const char* name;
    double finest_density;
  };
  // Densities following the paper's Table 1 evolution, padded with two
  // intermediate points to show every regime of the filter.
  const Timestep steps[] = {
      {"z10-like", 0.23}, {"z7-like", 0.40},  {"z6-like", 0.55},
      {"z5-like", 0.58},  {"z3-like", 0.64},  {"z2-like", 0.63},
  };

  core::TacConfig cfg;
  cfg.sz.mode = sz::ErrorBoundMode::kRelative;
  cfg.sz.error_bound = 1e-4;

  std::printf("%-10s %9s | %-9s %-9s | %-7s %8s %10s\n", "timestep",
              "density", "fine", "coarse", "method", "CR", "PSNR(dB)");
  for (const auto& step : steps) {
    simnyx::GeneratorConfig gen;
    gen.finest_dims = {64, 64, 64};
    gen.level_densities = {step.finest_density, 1.0 - step.finest_density};
    gen.region_size = 8;
    const auto ds = simnyx::generate_baryon_density(gen);

    // What would TAC pick per level, and does the second-stage selector
    // (§4.4) hand the dense-finest datasets to the 3D baseline?
    const auto method = core::adaptive_select(ds, cfg);
    const auto compressed = core::adaptive_compress(ds, cfg);
    const auto back = core::decompress_any(compressed.bytes);
    const auto stats = analysis::distortion_amr(ds, back);

    const char* fine_strategy = "-";
    const char* coarse_strategy = "-";
    if (method == core::Method::kTac) {
      fine_strategy = core::to_string(compressed.report.levels[0].strategy);
      coarse_strategy =
          core::to_string(compressed.report.levels[1].strategy);
    }
    std::printf("%-10s %8.0f%% | %-9s %-9s | %-7s %8.1f %10.2f\n",
                step.name, 100.0 * step.finest_density, fine_strategy,
                coarse_strategy, core::to_string(method),
                analysis::compression_ratio(ds.original_bytes(),
                                            compressed.bytes.size()),
                stats.psnr);
  }
  std::printf("\n(fine/coarse columns show the per-level strategy when TAC "
              "is chosen; the 3D method kicks in once the finest level "
              "reaches T2 = 60%%.)\n");
  return 0;
}
