#!/usr/bin/env python3
"""Validate a Chrome-tracing JSON file produced by `tac_file_tool --trace=`.

Usage:
  check_trace.py <trace.json>        validate an existing trace file
  check_trace.py --generate <tool>   drive <tool> (gen + compress under
                                     --trace=) in a temp dir, then validate
                                     the trace it wrote

Checks, in order:

1. Top-level schema: `traceEvents` is a non-empty list and `otherData`
   carries a positive `wall_ns`.
2. Per-event schema: every event is a complete `"ph": "X"` duration
   event with a non-empty name, numeric non-negative `ts`/`dur`,
   integral `pid`/`tid`, and an `args.depth` nesting level (plus an
   optional non-negative `args.bytes`).
3. Nesting: on each thread, a span at depth d+1 lies inside an
   enclosing span at depth d, and the direct children of any span sum
   to at most its own duration (small tolerance for the exporter's
   microsecond rounding).
4. Timing closure: the trace's span extent matches `otherData.wall_ns`
   within 10%, and for a CLI root span (`cli.*`, the bracket the file
   tool opens around the whole run) the direct children must account
   for at least 90% of the root's time — the acceptance bar for "the
   per-stage times sum to the wall time".

Exit 0 when the trace holds together, 1 with a per-failure report
otherwise. Stdlib only.
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

# Exporter rounds ts/dur to 1ns (3 decimals in microseconds); allow a
# couple of ulps per event when summing children against a parent.
ROUND_EPS_US = 0.002
# Direct children of a CLI root span must cover this fraction of it.
CLOSURE_MIN = 0.90
# Span extent vs otherData.wall_ns agreement.
WALL_TOLERANCE = 0.10
# Skip the closure check on roots shorter than this: on a micro-run,
# fixed per-process costs (arg parsing, printf) legitimately dominate.
CLOSURE_MIN_ROOT_US = 1000.0

errors = []


def fail(msg: str) -> None:
    errors.append(msg)


def check_schema(trace: dict) -> list:
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing, not a list, or empty")
        return []
    other = trace.get("otherData")
    if not isinstance(other, dict) or not isinstance(
            other.get("wall_ns"), int) or other["wall_ns"] <= 0:
        fail("otherData.wall_ns missing or not a positive integer")
    ok = []
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(e, dict):
            fail(f"{where}: not an object")
            continue
        bad = False
        if not isinstance(e.get("name"), str) or not e["name"]:
            fail(f"{where}: missing or empty name")
            bad = True
        if e.get("ph") != "X":
            fail(f"{where} ({e.get('name', '?')}): ph is {e.get('ph')!r}, "
                 "expected complete event \"X\"")
            bad = True
        for key in ("ts", "dur"):
            v = e.get(key)
            if not isinstance(v, (int, float)) or isinstance(v, bool) \
                    or v < 0:
                fail(f"{where} ({e.get('name', '?')}): {key} is {v!r}, "
                     "expected a non-negative number")
                bad = True
        for key in ("pid", "tid"):
            if not isinstance(e.get(key), int) or isinstance(e.get(key), bool):
                fail(f"{where} ({e.get('name', '?')}): {key} is "
                     f"{e.get(key)!r}, expected an integer")
                bad = True
        args = e.get("args")
        if not isinstance(args, dict) or not isinstance(
                args.get("depth"), int) or args["depth"] < 0:
            fail(f"{where} ({e.get('name', '?')}): args.depth missing or "
                 "not a non-negative integer")
            bad = True
        elif "bytes" in args and (not isinstance(args["bytes"], int)
                                  or args["bytes"] < 0):
            fail(f"{where} ({e.get('name', '?')}): args.bytes is "
                 f"{args['bytes']!r}, expected a non-negative integer")
            bad = True
        if not bad:
            ok.append(e)
    return ok


def direct_children(parent, same_tid):
    """Events one level deeper that start inside the parent."""
    lo, hi = parent["ts"], parent["ts"] + parent["dur"]
    d = parent["args"]["depth"]
    return [c for c in same_tid
            if c["args"]["depth"] == d + 1
            and lo - ROUND_EPS_US <= c["ts"] <= hi + ROUND_EPS_US]


def check_nesting(events: list) -> None:
    by_tid = {}
    for e in events:
        by_tid.setdefault(e["tid"], []).append(e)
    for tid, evs in sorted(by_tid.items()):
        evs.sort(key=lambda e: (e["ts"], e["args"]["depth"]))
        for parent in evs:
            kids = direct_children(parent, evs)
            eps = ROUND_EPS_US * (len(kids) + 1)
            for c in kids:
                if c["ts"] + c["dur"] > parent["ts"] + parent["dur"] + eps:
                    fail(f"tid {tid}: child span {c['name']!r} "
                         f"(ends {c['ts'] + c['dur']:.3f}us) escapes parent "
                         f"{parent['name']!r} "
                         f"(ends {parent['ts'] + parent['dur']:.3f}us)")
            kid_sum = sum(c["dur"] for c in kids)
            if kid_sum > parent["dur"] + eps:
                fail(f"tid {tid}: children of {parent['name']!r} sum to "
                     f"{kid_sum:.3f}us > its own {parent['dur']:.3f}us")


def check_closure(trace: dict, events: list) -> None:
    extent_us = max(e["ts"] + e["dur"] for e in events) \
        - min(e["ts"] for e in events)
    wall_ns = trace.get("otherData", {}).get("wall_ns")
    if isinstance(wall_ns, int) and wall_ns > 0:
        ratio = extent_us * 1e3 / wall_ns
        if abs(ratio - 1.0) > WALL_TOLERANCE:
            fail(f"span extent {extent_us * 1e3:.0f}ns disagrees with "
                 f"otherData.wall_ns {wall_ns} ({ratio:.3f}x, "
                 f"tolerance {WALL_TOLERANCE:.0%})")

    roots = [e for e in events
             if e["args"]["depth"] == 0 and e["name"].startswith("cli.")]
    if len(roots) > 1:
        fail(f"{len(roots)} cli.* root spans, expected at most one")
        return
    for root in roots:
        if root["dur"] < CLOSURE_MIN_ROOT_US:
            print(f"  note: root {root['name']} too short "
                  f"({root['dur']:.0f}us) for the closure check; skipped")
            continue
        same_tid = [e for e in events if e["tid"] == root["tid"]]
        kid_sum = sum(c["dur"] for c in direct_children(root, same_tid))
        if kid_sum < CLOSURE_MIN * root["dur"]:
            fail(f"direct children of {root['name']} cover only "
                 f"{kid_sum / root['dur']:.1%} of its {root['dur']:.0f}us "
                 f"(floor {CLOSURE_MIN:.0%}) — an uninstrumented stage is "
                 "eating wall time")


def validate(path: Path) -> int:
    try:
        trace = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"check_trace: cannot parse {path}: {exc}", file=sys.stderr)
        return 1
    events = check_schema(trace)
    if events:
        check_nesting(events)
        check_closure(trace, events)
    if errors:
        print(f"check_trace: {path}: {len(errors)} problem(s)",
              file=sys.stderr)
        for e in errors:
            print(f"  - {e}", file=sys.stderr)
        return 1
    names = sorted({e["name"] for e in events})
    print(f"check_trace: {path} OK — {len(events)} events, "
          f"{len(names)} distinct spans ({', '.join(names[:8])}"
          f"{', ...' if len(names) > 8 else ''})")
    return 0


def generate_and_validate(tool: str) -> int:
    # The subprocesses run inside a temp dir; a relative tool path like
    # ./build/tac_file_tool must resolve against the caller's cwd.
    if Path(tool).exists():
        tool = str(Path(tool).resolve())
    with tempfile.TemporaryDirectory(prefix="tac_trace.") as work:
        work = Path(work)
        for cmd in ([tool, "gen", "in.amr", "64"],
                    [tool, "compress", "in.amr", "out.tac", "1e-4",
                     "--method=auto", "--trace=trace.json"]):
            r = subprocess.run(cmd, cwd=work, stdout=subprocess.DEVNULL,
                               stderr=subprocess.PIPE, text=True)
            if r.returncode != 0:
                print(f"check_trace: {' '.join(cmd[1:])} exited "
                      f"{r.returncode}:\n{r.stderr}", file=sys.stderr)
                return 1
        trace = work / "trace.json"
        if not trace.exists():
            print("check_trace: --trace=trace.json wrote nothing",
                  file=sys.stderr)
            return 1
        return validate(trace)


def main() -> int:
    if len(sys.argv) == 3 and sys.argv[1] == "--generate":
        return generate_and_validate(sys.argv[2])
    if len(sys.argv) == 2 and not sys.argv[1].startswith("-"):
        return validate(Path(sys.argv[1]))
    print(__doc__)
    return 2


if __name__ == "__main__":
    sys.exit(main())
