#!/usr/bin/env python3
"""Docs consistency gate.

Three checks, each of which has actually drifted (or would silently
drift) in real projects:

1. The constants table in docs/FORMAT.md matches the authoritative
   values in src/core/container.hpp (entry sizes, format versions, the
   reserved selector byte).
2. The worked-example snippet embedded in docs/BACKENDS.md is
   byte-identical to the marked region of examples/custom_backend.cpp —
   the file that CI compiles and runs — so the guide can never show
   code that no longer builds.
3. Every intra-repo markdown link in README.md, ROADMAP.md and docs/
   resolves: the target file exists and, when a #fragment is given, the
   target heading exists.
4. The span/counter catalogue in docs/TELEMETRY.md matches the
   instrumentation macros actually present in src/ and examples/: every
   name used in code is documented, and every documented name exists in
   code (so the catalogue can neither lag nor accumulate ghosts).

Exit 0 when everything holds, 1 with a per-failure report otherwise.
Stdlib only; run from anywhere (paths resolve relative to the repo
root, one directory above this script).
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

CONTAINER_HPP = ROOT / "src" / "core" / "container.hpp"
FORMAT_MD = ROOT / "docs" / "FORMAT.md"
BACKENDS_MD = ROOT / "docs" / "BACKENDS.md"
TELEMETRY_MD = ROOT / "docs" / "TELEMETRY.md"
EXAMPLE_CPP = ROOT / "examples" / "custom_backend.cpp"
LINK_SCAN = ["README.md", "ROADMAP.md", "docs/FORMAT.md", "docs/BACKENDS.md",
             "docs/TELEMETRY.md"]

# The documented constants the header must agree on.
CHECKED_CONSTANTS = [
    "kFormatVersion",
    "kMinFormatVersion",
    "kPayloadEntryBytes",
    "kPayloadEntryV3Bytes",
    "kPayloadEntryV4Bytes",
    "kSelectorFixed",
]

errors = []


def fail(msg: str) -> None:
    errors.append(msg)


# ------------------------------------------------------------------ check 1
def header_constants() -> dict:
    """Parses `inline constexpr <type> kName = <expr>;` definitions,
    resolving expressions of the form `<literal>` or `<name> + <literal>`
    (the only shapes container.hpp uses)."""
    text = CONTAINER_HPP.read_text(encoding="utf-8")
    defs = re.findall(
        r"inline constexpr [\w:]+\s+(k\w+)\s*=\s*([^;]+);", text)
    values = {}
    for name, expr in defs:
        expr = expr.strip()
        m = re.fullmatch(r"(k\w+)\s*\+\s*(\d+)", expr)
        if m:
            base, add = m.group(1), int(m.group(2))
            if base not in values:
                fail(f"container.hpp: {name} refers to {base} "
                     "before it is defined")
                continue
            values[name] = values[base] + add
            continue
        try:
            values[name] = int(expr, 0)
        except ValueError:
            pass  # non-integer constexpr (not one we check)
    return values


def doc_constants() -> dict:
    """Parses the `| \\`kName\\` | value |` rows of FORMAT.md's
    constants table."""
    text = FORMAT_MD.read_text(encoding="utf-8")
    rows = re.findall(r"^\|\s*`(k\w+)`\s*\|\s*([0-9][0-9a-fA-Fx]*)\s*\|",
                      text, flags=re.MULTILINE)
    return {name: int(value, 0) for name, value in rows}


def check_constants() -> None:
    actual = header_constants()
    documented = doc_constants()
    for name in CHECKED_CONSTANTS:
        if name not in actual:
            fail(f"container.hpp: constant {name} not found (renamed? "
                 "update CHECKED_CONSTANTS and docs/FORMAT.md together)")
        elif name not in documented:
            fail(f"docs/FORMAT.md: constants table is missing {name}")
        elif actual[name] != documented[name]:
            fail(f"docs/FORMAT.md documents {name} = {documented[name]} "
                 f"but container.hpp defines {actual[name]}")


# ------------------------------------------------------------------ check 2
def check_snippet() -> None:
    cpp = EXAMPLE_CPP.read_text(encoding="utf-8").splitlines()
    try:
        begin = cpp.index("// [backends-guide:passthrough]")
        end = cpp.index("// [backends-guide:end]")
    except ValueError:
        fail("examples/custom_backend.cpp: snippet markers "
             "[backends-guide:passthrough] / [backends-guide:end] not found")
        return
    from_cpp = "\n".join(cpp[begin + 1:end])

    md = BACKENDS_MD.read_text(encoding="utf-8")
    m = re.search(
        r"<!-- snippet: passthrough -->\n```cpp\n(.*?)\n```\n<!-- snippet-end -->",
        md, flags=re.DOTALL)
    if not m:
        fail("docs/BACKENDS.md: fenced block between "
             "<!-- snippet: passthrough --> and <!-- snippet-end --> "
             "not found")
        return
    from_md = m.group(1)

    if from_cpp != from_md:
        cpp_lines, md_lines = from_cpp.splitlines(), from_md.splitlines()
        detail = f"{len(cpp_lines)} vs {len(md_lines)} lines"
        for i, (a, b) in enumerate(zip(cpp_lines, md_lines)):
            if a != b:
                detail = (f"first difference at snippet line {i + 1}:\n"
                          f"  cpp: {a}\n  doc: {b}")
                break
        fail("docs/BACKENDS.md passthrough snippet differs from the marked "
             f"region of examples/custom_backend.cpp ({detail})")


# ------------------------------------------------------------------ check 3
def slug(heading: str) -> str:
    """GitHub-style heading anchor: lowercase, drop everything but word
    characters / spaces / hyphens, spaces to hyphens."""
    s = heading.strip().lower()
    s = re.sub(r"[^\w\- ]", "", s)
    return s.replace(" ", "-")


def anchors_of(path: Path) -> set:
    text = path.read_text(encoding="utf-8")
    out = set()
    in_fence = False
    for line in text.splitlines():
        if line.startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence and (m := re.match(r"#{1,6}\s+(.*)", line)):
            out.add(slug(m.group(1)))
    return out


def check_links() -> None:
    link_re = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
    for rel in LINK_SCAN:
        src = ROOT / rel
        if not src.exists():
            fail(f"{rel}: file listed for link checking does not exist")
            continue
        for target in link_re.findall(src.read_text(encoding="utf-8")):
            if re.match(r"[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, …
                continue
            path_part, _, fragment = target.partition("#")
            dest = (src.parent / path_part).resolve() if path_part else src
            if not dest.exists():
                fail(f"{rel}: broken link -> {target} "
                     f"(no such file {path_part})")
                continue
            if fragment and dest.suffix == ".md":
                if slug(fragment) not in anchors_of(dest):
                    fail(f"{rel}: broken anchor -> {target} "
                         f"(no heading #{fragment} in {path_part or rel})")


# ------------------------------------------------------------------ check 4
# One alternative per instrumentation shape: plain/byte-attributed spans,
# named span locals, counters, and the registry-internal counter() calls.
TELEMETRY_MACRO_RE = re.compile(
    r'TAC_SPAN(?:_BYTES)?\(\s*"([^"]+)"'
    r'|TAC_SPAN_NAMED\(\s*\w+\s*,\s*"([^"]+)"'
    r'|TAC_COUNTER_(?:ADD|MAX)\(\s*"([^"]+)"'
    r'|\bcounter\(\s*"([^"]+)"\s*\)')


def telemetry_names_in_code() -> set:
    names = set()
    sources = sorted((ROOT / "src").rglob("*.cpp"))
    sources += sorted((ROOT / "src").rglob("*.hpp"))
    sources += sorted((ROOT / "examples").glob("*.cpp"))
    for path in sources:
        # The subsystem header documents the macros with placeholder
        # names ("layer.op"); skip it so examples in comments don't count
        # as instrumentation sites.
        if path == ROOT / "src" / "common" / "telemetry.hpp":
            continue
        for match in TELEMETRY_MACRO_RE.finditer(
                path.read_text(encoding="utf-8")):
            names.add(next(g for g in match.groups() if g is not None))
    return names


def telemetry_names_in_doc() -> set:
    text = TELEMETRY_MD.read_text(encoding="utf-8")
    m = re.search(r"<!-- telemetry-catalogue -->(.*?)"
                  r"<!-- telemetry-catalogue-end -->", text, flags=re.DOTALL)
    if m is None:
        fail("docs/TELEMETRY.md: catalogue markers "
             "<!-- telemetry-catalogue --> / "
             "<!-- telemetry-catalogue-end --> not found")
        return set()
    # Backticked dotted names only: `cli.<command>` and prose tokens do
    # not match, so dynamic span names are documented without being
    # treated as literals.
    return set(re.findall(r"`([a-z0-9_]+(?:\.[a-z0-9_]+)+)`", m.group(1)))


def check_telemetry_catalogue() -> None:
    in_code = telemetry_names_in_code()
    in_doc = telemetry_names_in_doc()
    if not in_doc:
        return
    for name in sorted(in_code - in_doc):
        fail(f"docs/TELEMETRY.md: catalogue is missing `{name}` "
             "(used by an instrumentation macro in src/ or examples/)")
    for name in sorted(in_doc - in_code):
        fail(f"docs/TELEMETRY.md: catalogue lists `{name}` but no "
             "instrumentation macro in src/ or examples/ uses it")


def main() -> int:
    for path in (CONTAINER_HPP, FORMAT_MD, BACKENDS_MD, TELEMETRY_MD,
                 EXAMPLE_CPP):
        if not path.exists():
            fail(f"missing required file {path.relative_to(ROOT)}")
    if not errors:
        check_constants()
        check_snippet()
        check_links()
        check_telemetry_catalogue()
    if errors:
        print(f"check_docs: {len(errors)} problem(s)", file=sys.stderr)
        for e in errors:
            print(f"  - {e}", file=sys.stderr)
        return 1
    print("check_docs: constants, guide snippet and doc links all consistent")
    return 0


if __name__ == "__main__":
    sys.exit(main())
