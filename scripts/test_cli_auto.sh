#!/bin/sh
# CLI round-trip for the auto selector: a mixed-method v4 container must
# survive compress -> info -> decompress -> per-level extract through
# tac_file_tool, and a damaged selector byte must exit with code 4.
#
# Usage: test_cli_auto.sh <path-to-tac_file_tool>
set -eu

TOOL=${1:?usage: test_cli_auto.sh <tac_file_tool>}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/tac_cli_auto.XXXXXX")
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

fail() { echo "FAIL: $*" >&2; exit 1; }

"$TOOL" gen in.amr 64 >/dev/null || fail "gen"
"$TOOL" compress in.amr out.tac 1e-4 --method=auto --objective=ratio \
  >compress.log || fail "compress --method=auto"
grep -q "per-level winners" compress.log || fail "no winners line"

"$TOOL" info out.tac >info.log || fail "info"
grep -q "method auto" info.log || fail "info: header method not auto"
grep -Eq "payload 0: .*method (TAC|1D|zMesh|3D)" info.log ||
  fail "info: no per-payload method column"

"$TOOL" decompress out.tac back.amr >/dev/null || fail "decompress"
"$TOOL" extract out.tac l0.amr --level=0 >/dev/null || fail "extract level 0"
"$TOOL" extract out.tac l1.amr --level=1 >/dev/null || fail "extract level 1"

# Flip payload 0's selector byte to an unregistered tag: the tool must
# refuse with the corrupt-container exit code (4) and say "selector".
# The index (varint count, 1 byte here, + n 22-byte entries) ends exactly
# where payload 0 begins; the selector is the last byte of entry 0.
off=$(grep -o "payload 0: offset [0-9]*" info.log | grep -o "[0-9]*$")
n=$(grep -c "payload [0-9]*: offset" info.log)
sel=$((off - n * 22 + 21))
python3 -c "
d = bytearray(open('out.tac', 'rb').read())
assert d[4] == 4, f'expected format v4, got {d[4]}'
d[$sel] = 250
open('out.tac', 'wb').write(bytes(d))
"
set +e
"$TOOL" decompress out.tac bad.amr >/dev/null 2>err.log
rc=$?
set -e
[ "$rc" -eq 4 ] || fail "damaged selector byte: expected exit 4, got $rc"
grep -q "selector" err.log || fail "damaged selector byte: untyped error"

echo "cli auto round-trip OK ($n payloads)"
