#!/usr/bin/env python3
"""Compare a fresh BENCH_tab02.json against the committed baseline.

Usage: compare_bench.py <baseline.json> <current.json> [tolerance]

Fails (exit 1) if the current aggregate_measure_seconds is more than
`tolerance` (default 10%) above the baseline. Timed sections exclude
data generation, so the aggregate tracks compressor work only. A faster
run never fails; print the ratio either way so the CI log shows the
trajectory.
"""

import json
import sys


def main() -> int:
    if len(sys.argv) < 3:
        print(__doc__)
        return 2
    tolerance = float(sys.argv[3]) if len(sys.argv) > 3 else 0.10
    with open(sys.argv[1]) as f:
        base = json.load(f)
    with open(sys.argv[2]) as f:
        cur = json.load(f)

    base_s = base["aggregate_measure_seconds"]
    cur_s = cur["aggregate_measure_seconds"]
    ratio = cur_s / base_s
    print(f"baseline {base_s:.3f}s, current {cur_s:.3f}s, "
          f"ratio {ratio:.3f} (tolerance +{tolerance:.0%})")

    if ratio > 1.0 + tolerance:
        print("FAIL: aggregate regressed beyond tolerance")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
