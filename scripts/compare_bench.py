#!/usr/bin/env python3
"""Compare a fresh BENCH_tab02.json against the committed baseline.

Usage: compare_bench.py <baseline.json> <current.json> [tolerance]

Fails (exit 1) if the current aggregate_measure_seconds is more than
`tolerance` (default 10%) above the baseline. Timed sections exclude
data generation, so the aggregate tracks compressor work only. A faster
run never fails; the ratio is printed either way so the CI log shows
the trajectory.

Rows are matched by their (dataset, abs_eb, method) key, so the two
files may disagree on row count or carry extra JSON keys (new presets,
new per-row fields) without breaking the comparison. Rows present on
only one side are listed but never gate. Matched rows are printed
worst-regression-first with their time delta; only the aggregate gates.

The top-level "stages" key (per-method telemetry stage breakdown, see
docs/TELEMETRY.md) is deliberately ignored: stage names come and go
with instrumentation changes, which must never read as a perf delta.
"""

import json
import sys


def row_key(row):
    return (row.get("dataset", "?"), row.get("abs_eb", 0.0),
            row.get("method", "?"))


def fmt_key(key):
    dataset, eb, method = key
    return f"({dataset}, eb={eb:g}, {method})"


def main() -> int:
    if len(sys.argv) < 3:
        print(__doc__)
        return 2
    tolerance = float(sys.argv[3]) if len(sys.argv) > 3 else 0.10
    with open(sys.argv[1]) as f:
        base = json.load(f)
    with open(sys.argv[2]) as f:
        cur = json.load(f)

    base_rows = {row_key(r): r for r in base.get("rows", [])}
    cur_rows = {row_key(r): r for r in cur.get("rows", [])}

    added = sorted(set(cur_rows) - set(base_rows))
    removed = sorted(set(base_rows) - set(cur_rows))
    for k in added:
        print(f"  new row (not compared): {fmt_key(k)} "
              f"{cur_rows[k].get('seconds', 0.0):.4f}s")
    for k in removed:
        print(f"  dropped row (not compared): {fmt_key(k)}")

    # Worst regression first so the offending cell tops the CI log.
    matched = []
    for k in sorted(set(base_rows) & set(cur_rows)):
        bs = base_rows[k].get("seconds")
        cs = cur_rows[k].get("seconds")
        if not bs or cs is None:
            continue
        matched.append((cs / bs, bs, cs, k))
    matched.sort(reverse=True)
    for ratio, bs, cs, k in matched:
        tag = "slower" if ratio > 1.0 else "faster"
        print(f"  {fmt_key(k)}: {bs:.4f}s -> {cs:.4f}s "
              f"({ratio:.3f}x, {abs(cs - bs) * 1e3:.1f}ms {tag})")

    base_s = base["aggregate_measure_seconds"]
    cur_s = cur["aggregate_measure_seconds"]
    ratio = cur_s / base_s
    print(f"baseline {base_s:.3f}s, current {cur_s:.3f}s, "
          f"ratio {ratio:.3f} (tolerance +{tolerance:.0%})")

    if ratio > 1.0 + tolerance:
        print("FAIL: aggregate regressed beyond tolerance")
        if matched and matched[0][0] > 1.0:
            print(f"worst cell: {fmt_key(matched[0][3])} "
                  f"at {matched[0][0]:.3f}x")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
